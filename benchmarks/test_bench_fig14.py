"""Benchmark: regenerate Figure 14 (CPI vs factories and distill time)."""

from conftest import run_once

from repro.experiments import fig14


def test_bench_fig14(benchmark):
    table = run_once(benchmark, fig14.run, True)
    print()
    print(table.to_text())
    print()
    print(fig14.run_distill_sweep(True).to_text())
    # Paper shape: our CPI improves more than Line SAM's with 4 factories.
    for model in {row["model"] for row in table.rows}:
        ours = sorted((r for r in table.rows
                       if r["model"] == model and r["scheme"] == "ours"),
                      key=lambda r: r["factories"])
        line = sorted((r for r in table.rows
                       if r["model"] == model and "lsqca" in str(r["scheme"])),
                      key=lambda r: r["factories"])
        assert ours[0]["cpi"] / ours[-1]["cpi"] >= line[0]["cpi"] / line[-1]["cpi"] * 0.9
