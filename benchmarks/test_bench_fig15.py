"""Benchmark: regenerate Figure 15 (comparison with DASCOT)."""

from conftest import run_once

from repro.experiments import fig15


def test_bench_fig15(benchmark):
    table = run_once(benchmark, fig15.run, True)
    print()
    print(table.to_text())
    for model in {row["model"] for row in table.rows}:
        assert fig15.dascot_ratio_at_one_factory(table, model) > 1.0
