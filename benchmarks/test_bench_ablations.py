"""Benchmark: ablations of the compiler's design choices."""

from conftest import run_once

from repro.experiments import ablations


def test_bench_ablations(benchmark):
    table = run_once(benchmark, ablations.run, True)
    print()
    print(table.to_text())
    # The full compiler is never worse than the no-elimination variant.
    for model in {row["model"] for row in table.rows}:
        rows = {r["variant"]: r for r in table.rows if r["model"] == model}
        assert rows["full"]["exec_time_d"] <= (
            rows["no-move-elimination"]["exec_time_d"] + 1e-6
        )
