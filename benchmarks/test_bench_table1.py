"""Benchmark: regenerate Table I (benchmark gate counts)."""

from conftest import run_once

from repro.experiments import table1


def test_bench_table1(benchmark):
    table = run_once(benchmark, table1.run, True)
    print()
    print(table.to_text())
    assert table.column("matches_paper") == ["yes"] * 6
