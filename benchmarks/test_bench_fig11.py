"""Benchmark: regenerate Figure 11 (time vs qubits across sizes)."""

from conftest import run_once

from repro.experiments import fig11


def test_bench_fig11(benchmark):
    table = run_once(benchmark, fig11.run, True)
    print()
    print(table.to_text())
    # Paper shape: our smallest layout always beats the blocks on qubits.
    for size in {row["size"] for row in table.rows}:
        ours = [r["qubits"] for r in table.rows
                if r["size"] == size and str(r["scheme"]).startswith("ours")]
        blocks = [r["qubits"] for r in table.rows
                  if r["size"] == size and "litinski" in str(r["scheme"])]
        assert min(ours) < min(blocks)
