"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` module regenerates one of the paper's tables or
figures (in fast mode by default so the whole harness runs in minutes) and
benchmarks the end-to-end generation.  The rendered tables are printed so a
``pytest benchmarks/ --benchmark-only -s`` run doubles as a report.
"""

import pytest

from repro.experiments import clear_cache


@pytest.fixture(autouse=True)
def fresh_cache():
    """Clear the memoised compilations so each benchmark measures real work."""
    clear_cache()
    yield
    clear_cache()


def run_once(benchmark, fn, *args):
    """Benchmark one expensive generation exactly once (no warmup rounds)."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)
