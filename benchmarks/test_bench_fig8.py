"""Benchmark: regenerate Figure 8 (execution time vs lower bound)."""

from conftest import run_once

from repro.experiments import fig8


def test_bench_fig8(benchmark):
    table = run_once(benchmark, fig8.run, True)
    print()
    print(table.to_text())
    # Paper shape: every benchmark sits within ~1.5x of the Eq. 2 bound.
    for row in table.rows:
        if row["lower_bound_d"]:
            assert row["exec_vs_bound"] < 2.0
