"""Benchmark: regenerate Figure 12 (time vs qubits over the full r sweep)."""

from conftest import run_once

from repro.experiments import fig12


def test_bench_fig12(benchmark):
    table = run_once(benchmark, fig12.run, True)
    print()
    print(table.to_text())
    ours = [r for r in table.rows if str(r["scheme"]).startswith("ours")]
    assert ours, "sweep produced no rows"
