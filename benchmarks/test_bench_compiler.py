"""Micro-benchmarks of the compiler stages themselves."""

import pytest

from repro.arch.layout import build_layout
from repro.compiler.pipeline import compile_circuit
from repro.ir.dag import DagCircuit
from repro.synthesis.ppr import transpile_to_ppr
from repro.workloads import heisenberg_2d, ising_2d


def test_bench_compile_ising_4x4(benchmark):
    result = benchmark(lambda: compile_circuit(ising_2d(4), routing_paths=4))
    assert result.execution_time > 0


def test_bench_compile_heisenberg_4x4(benchmark):
    result = benchmark(
        lambda: compile_circuit(heisenberg_2d(4), routing_paths=6)
    )
    assert result.execution_time > 0


def test_bench_layout_construction(benchmark):
    layout = benchmark(lambda: build_layout(100, 10))
    assert layout.total_qubits == 225


def test_bench_dag_construction(benchmark):
    circuit = heisenberg_2d(10)
    dag = benchmark(lambda: DagCircuit(circuit))
    assert len(dag) == len(circuit)


def test_bench_ppr_transpile(benchmark):
    circuit = ising_2d(10)
    program = benchmark(lambda: transpile_to_ppr(circuit))
    assert program.t_rotation_count == circuit.count("rz")
