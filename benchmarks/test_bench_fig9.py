"""Benchmark: regenerate Figure 9 (spacetime vs factories, per r)."""

from conftest import run_once

from repro.experiments import fig9


def test_bench_fig9(benchmark):
    table = run_once(benchmark, fig9.run, True)
    print()
    print(table.to_text())
    best = fig9.optimal_factories(table)
    # Paper shape: the optimal factory count never decreases as r grows.
    for model in {row["model"] for row in table.rows}:
        per_r = sorted(
            (r, best[(model, r)]) for (m, r) in best if m == model
        )
        firsts, lasts = per_r[0][1], per_r[-1][1]
        assert lasts >= firsts
