"""Benchmark: regenerate Figure 13 (comparison with LSQCA Line SAM)."""

import math

from conftest import run_once

from repro.experiments import fig13


def test_bench_fig13(benchmark):
    table = run_once(benchmark, fig13.run, True)
    print()
    print(table.to_text())
    # Paper shape: geomean spacetime ratio (Line SAM / ours) > 1.
    log_sum, count = 0.0, 0
    for name in {row["benchmark"] for row in table.rows}:
        ours = next(r for r in table.rows
                    if r["benchmark"] == name and str(r["scheme"]).startswith("ours"))
        line = next(r for r in table.rows
                    if r["benchmark"] == name and "lsqca" in str(r["scheme"]))
        log_sum += math.log(line["spacetime_volume"] / ours["spacetime_volume"])
        count += 1
    assert math.exp(log_sum / count) > 1.0
