"""Benchmark: regenerate the abstract's headline claims."""

from conftest import run_once

from repro.experiments import headline


def test_bench_headline(benchmark):
    table = run_once(benchmark, headline.run, True)
    print()
    print(table.to_text())
    assert len(table.rows) == 4
