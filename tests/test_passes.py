"""Tests for the front-end optimisation passes."""

import math

import pytest

from repro.ir.circuit import Circuit
from repro.ir.passes import (
    cancel_inverse_pairs,
    drop_trivial_rotations,
    fuse_z_rotations,
    optimize,
)


class TestCancelInversePairs:
    def test_adjacent_hh_cancels(self):
        qc = Circuit(1).h(0).h(0)
        assert len(cancel_inverse_pairs(qc)) == 0

    def test_s_sdg_cancels(self):
        qc = Circuit(1).s(0).sdg(0)
        assert len(cancel_inverse_pairs(qc)) == 0

    def test_cx_cx_cancels(self):
        qc = Circuit(2).cx(0, 1).cx(0, 1)
        assert len(cancel_inverse_pairs(qc)) == 0

    def test_reversed_cx_does_not_cancel(self):
        qc = Circuit(2).cx(0, 1).cx(1, 0)
        assert len(cancel_inverse_pairs(qc)) == 2

    def test_intervening_gate_blocks(self):
        qc = Circuit(1).h(0).t(0).h(0)
        assert len(cancel_inverse_pairs(qc)) == 3

    def test_intervening_gate_on_one_wire_blocks_cx(self):
        qc = Circuit(2).cx(0, 1).h(0).cx(0, 1)
        assert len(cancel_inverse_pairs(qc)) == 3

    def test_unaffected_gates_survive(self):
        qc = Circuit(2).h(0).h(0).cx(0, 1)
        out = cancel_inverse_pairs(qc)
        assert [gate.name for gate in out] == ["cx"]


class TestFuseZRotations:
    def test_t_t_becomes_s(self):
        qc = Circuit(1).t(0).t(0)
        out = fuse_z_rotations(qc)
        assert [gate.name for gate in out] == ["s"]

    def test_s_s_becomes_z(self):
        qc = Circuit(1).s(0).s(0)
        out = fuse_z_rotations(qc)
        assert [gate.name for gate in out] == ["z"]

    def test_t_tdg_vanishes(self):
        qc = Circuit(1).t(0).tdg(0)
        assert len(fuse_z_rotations(qc)) == 0

    def test_rz_angles_add(self):
        qc = Circuit(1).rz(0.3, 0).rz(0.4, 0)
        out = fuse_z_rotations(qc)
        assert len(out) == 1
        assert out[0].param == pytest.approx(0.7)

    def test_fusion_stops_at_entangler(self):
        qc = Circuit(2).t(0).cx(0, 1).t(0)
        out = fuse_z_rotations(qc)
        assert out.count("t") == 2

    def test_h_flushes_pending(self):
        qc = Circuit(1).t(0).h(0).t(0)
        out = fuse_z_rotations(qc)
        assert [gate.name for gate in out] == ["t", "h", "t"]


class TestDropTrivial:
    def test_two_pi_rotation_dropped(self):
        qc = Circuit(1).rz(2 * math.pi, 0)
        assert len(drop_trivial_rotations(qc)) == 0

    def test_zero_rotation_dropped(self):
        qc = Circuit(1).rz(0.0, 0).h(0)
        assert [gate.name for gate in drop_trivial_rotations(qc)] == ["h"]


class TestPipeline:
    def test_optimize_reduces_redundant_circuit(self):
        qc = Circuit(2)
        qc.h(0).h(0)            # cancels
        qc.t(1).t(1)            # fuses to S
        qc.rz(0.0, 0)           # trivial
        qc.cx(0, 1)
        out = optimize(qc)
        assert out.count("h") == 0
        assert out.count("s") == 1
        assert out.count("cx") == 1

    def test_optimize_preserves_t_count_semantics(self):
        qc = Circuit(1).t(0).h(0).tdg(0)
        out = optimize(qc)
        # nothing fusible across the H
        assert out.t_count() == 2

    def test_optimized_circuit_still_compiles(self):
        from repro import compile_circuit
        from repro.workloads import ising_2d

        original = ising_2d(2)
        optimized = optimize(original)
        result = compile_circuit(optimized, routing_paths=4)
        assert result.execution_time > 0
