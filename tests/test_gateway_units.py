"""Unit tests for the gateway's wire layer and identity layer.

Everything here runs without a server: the HTTP/1.1 parser is driven by
feeding bytes straight into an ``asyncio.StreamReader``, the WebSocket
codec round-trips frames in memory, and the token bucket runs on a fake
clock — no sockets, no sleeps.
"""

import asyncio

import pytest

from repro.gateway import Keyring, TokenBucket
from repro.gateway.http11 import (
    HttpError,
    MAX_BODY_BYTES,
    WS_CLOSE,
    WS_TEXT,
    encode_ws_frame,
    error_body,
    read_request,
    read_ws_frame,
    render_response,
    websocket_accept,
    websocket_handshake,
)
from repro.gateway.http11 import Request


def parse(data: bytes, **kwargs):
    """Run ``read_request`` over a canned byte stream."""

    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(_run())


class TestHttpParser:
    def test_round_trip(self):
        request = parse(
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Content-Length: 9\r\n"
            b"\r\n"
            b'{"a": 1}\n'
        )
        assert request.method == "POST"
        assert request.path == "/v1/jobs"
        assert request.header("host") == "x"
        assert request.json() == {"a": 1}
        assert request.keep_alive

    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    def test_connection_close(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as err:
            parse(b"NONSENSE\r\n\r\n")
        assert err.value.status == 400
        assert err.value.code == "bad-request"

    def test_unsupported_version(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET / SPDY/9\r\n\r\n")
        assert err.value.code == "bad-request"

    def test_header_without_colon(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/1.1\r\nnocolonhere\r\n\r\n")
        assert err.value.code == "bad-request"

    def test_invalid_content_length(self):
        for value in (b"banana", b"-5"):
            with pytest.raises(HttpError) as err:
                parse(
                    b"POST / HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n"
                )
            assert err.value.code == "bad-request"

    def test_oversized_body_rejected_by_declared_length(self):
        declared = MAX_BODY_BYTES + 1
        with pytest.raises(HttpError) as err:
            parse(
                f"POST / HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n".encode()
            )
        assert err.value.status == 413
        assert err.value.code == "payload-too-large"

    def test_oversized_header_block(self):
        headers = b"".join(
            b"X-Pad-%d: %s\r\n" % (i, b"y" * 1000) for i in range(40)
        )
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
        assert err.value.status == 431
        assert err.value.code == "headers-too-large"

    def test_slow_loris_times_out_with_408(self):
        # a dribbling client: the head never completes within the timeout
        async def _run():
            reader = asyncio.StreamReader()
            reader.feed_data(b"GET / HT")  # ...and then silence
            return await read_request(reader, header_timeout=0.05)

        with pytest.raises(HttpError) as err:
            asyncio.run(_run())
        assert err.value.status == 408
        assert err.value.code == "request-timeout"

    def test_body_json_must_be_object(self):
        request = parse(
            b"POST / HTTP/1.1\r\nContent-Length: 7\r\n\r\n[1,2,3]"
        )
        with pytest.raises(HttpError) as err:
            request.json()
        assert err.value.code == "bad-request"

    def test_render_response_shape(self):
        raw = render_response(200, {"ok": True}, keep_alive=False)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Connection: close" in head
        assert b'"ok": true' in body
        assert error_body("x", "y")["error"]["code"] == "x"


class TestWebSocket:
    def test_accept_matches_rfc6455_vector(self):
        # the worked example from RFC 6455 section 1.3
        assert (
            websocket_accept("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    def test_handshake_requires_key(self):
        request = Request(
            method="GET",
            path="/v1/ws",
            headers={"upgrade": "websocket"},
        )
        with pytest.raises(HttpError):
            websocket_handshake(request)

    @pytest.mark.parametrize("size", [0, 5, 126, 70000])
    def test_frame_round_trip_unmasked(self, size):
        payload = bytes(range(256)) * (size // 256 + 1)
        payload = payload[:size]

        async def _run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_ws_frame(payload, WS_TEXT))
            return await read_ws_frame(reader)

        opcode, decoded = asyncio.run(_run())
        assert opcode == WS_TEXT
        assert decoded == payload

    def test_frame_round_trip_masked(self):
        payload = b"masked payload"

        async def _run():
            reader = asyncio.StreamReader()
            reader.feed_data(
                encode_ws_frame(payload, WS_TEXT, mask=b"\x01\x02\x03\x04")
            )
            return await read_ws_frame(reader)

        opcode, decoded = asyncio.run(_run())
        assert opcode == WS_TEXT
        assert decoded == payload

    def test_eof_mid_frame_raises_connection_error(self):
        async def _run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_ws_frame(b"abcdef", WS_CLOSE)[:3])
            reader.feed_eof()
            return await read_ws_frame(reader)

        with pytest.raises(ConnectionError):
            asyncio.run(_run())


class TestKeyring:
    def test_load_and_lookup(self, tmp_path):
        path = tmp_path / "keys.txt"
        path.write_text(
            "# comment line\n"
            "\n"
            "alice: key-alice \n"
            "bob:key-bob\n"
        )
        ring = Keyring.load(path)
        assert len(ring) == 2
        assert ring.tenant_for("key-alice") == "alice"
        assert ring.tenant_for("key-bob") == "bob"
        assert ring.tenant_for("key-mallory") is None
        assert ring.tenant_for(None) is None
        assert ring.tenant_for("") is None

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "keys.txt"
        path.write_text("justakeynotenant\n")
        with pytest.raises(ValueError):
            Keyring.load(path)

    def test_empty_keyring_rejected(self):
        with pytest.raises(ValueError):
            Keyring({})


class TestTokenBucket:
    def test_burst_then_refill_on_fake_clock(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=lambda: now[0])
        # the full burst is available immediately...
        assert [bucket.acquire("t")[0] for _ in range(3)] == [True] * 3
        # ...then the bucket is dry, and Retry-After is exactly the time
        # to the next token at 2 tokens/second
        allowed, retry_after = bucket.acquire("t")
        assert not allowed
        assert retry_after == pytest.approx(0.5)
        # half the wait: still dry, half the Retry-After
        now[0] += 0.25
        allowed, retry_after = bucket.acquire("t")
        assert not allowed
        assert retry_after == pytest.approx(0.25)
        # a full second refills two tokens
        now[0] += 1.0
        assert bucket.acquire("t")[0]
        assert bucket.acquire("t")[0]
        assert not bucket.acquire("t")[0]

    def test_buckets_are_per_tenant(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=lambda: now[0])
        assert bucket.acquire("greedy")[0]
        assert not bucket.acquire("greedy")[0]
        # a different tenant's bucket is untouched
        assert bucket.acquire("polite")[0]

    def test_refill_caps_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=lambda: now[0])
        now[0] += 60.0
        assert bucket.tokens("t") == pytest.approx(2.0)
