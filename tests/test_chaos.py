"""Tests for the seeded chaos harness (repro.faultinject).

A small campaign runs for real in tier-1 (the scenarios are tiny 2x2
compiles, seconds overall); determinism of the scenario stream and the
planner's shapes are checked without a server.
"""

from repro.faultinject import (
    CHAOS_MODES,
    ScriptedWorkerFaults,
    plan_scenario,
    run_chaos,
)
from repro.faultinject.plan import CHAOS_WORKLOADS
from repro.sweep.supervisor import FAULT_HANG, FAULT_KILL


class TestPlanner:
    def test_scenarios_are_seed_deterministic(self):
        first = [plan_scenario(3, i) for i in range(40)]
        second = [plan_scenario(3, i) for i in range(40)]
        assert first == second

    def test_different_seeds_differ(self):
        a = [plan_scenario(0, i).mode for i in range(40)]
        b = [plan_scenario(1, i).mode for i in range(40)]
        assert a != b

    def test_scenarios_are_prefix_stable(self):
        # scenario i does not depend on how many scenarios the campaign has
        assert plan_scenario(0, 7) == plan_scenario(0, 7)
        assert plan_scenario(0, 0).index == 0

    def test_every_mode_appears(self):
        modes = {plan_scenario(0, i).mode for i in range(300)}
        assert modes == {name for name, _ in CHAOS_MODES}

    def test_scenario_shapes(self):
        for i in range(100):
            scenario = plan_scenario(5, i)
            assert scenario.workload in CHAOS_WORKLOADS
            assert 3 <= scenario.config["routing_paths"] <= 6
            assert 1 <= scenario.config["num_factories"] <= 2
            if scenario.mode == "worker-kill":
                assert scenario.worker_script[0] == (FAULT_KILL,)
            elif scenario.mode == "worker-hang":
                assert scenario.worker_script[0][0] == FAULT_HANG
            elif scenario.mode == "disk-write-error":
                assert scenario.fail_writes >= 1
            elif scenario.mode == "disk-read-error":
                assert scenario.fail_reads >= 1
            elif scenario.mode == "truncate-entry":
                assert scenario.truncate_writes == 1
            elif scenario.mode == "peer-reset":
                assert scenario.peer_resets >= 1
            elif scenario.mode == "peer-torn":
                assert scenario.peer_corrupts == 1
            else:
                assert scenario.mode in (
                    "clean",
                    "conn-reset",
                    "abandon",
                    "gateway-disconnect",
                    "shard-down",
                )


class TestWorkerFaultScript:
    def test_script_fires_by_dispatch_index(self):
        hook = ScriptedWorkerFaults()
        hook.arm({1: (FAULT_KILL,)})
        assert hook(10, 1) is None  # dispatch 0: clean
        assert hook(10, 2) == (FAULT_KILL,)  # dispatch 1: scripted
        assert hook(10, 3) is None  # script entry consumed
        assert hook.fired == 1

    def test_disarm_clears_pending_faults(self):
        hook = ScriptedWorkerFaults()
        hook.arm({0: (FAULT_KILL,)})
        hook.disarm()
        assert hook(0, 1) is None
        assert hook.fired == 0

    def test_rearm_resets_dispatch_counter(self):
        hook = ScriptedWorkerFaults()
        hook.arm({0: (FAULT_KILL,)})
        assert hook(0, 1) == (FAULT_KILL,)
        hook.arm({0: (FAULT_HANG, 1.0)})
        assert hook(1, 1) == (FAULT_HANG, 1.0)


class TestCampaign:
    def test_small_campaign_holds_invariants(self, tmp_path):
        report = run_chaos(
            seed=0,
            scenarios=25,
            jobs=2,
            cache_dir=str(tmp_path / "cache"),
            bench_baseline="BENCH_routing.json",
        )
        assert report.violations == []
        assert report.bench_mismatches == []
        assert report.ok
        # the campaign exercised real faults, not just clean requests
        assert report.faults_fired["worker"] >= 1
        assert sum(report.outcomes.values()) >= 25
        assert report.server_stats is not None
        assert report.server_stats["pool"]["restarts"] >= 1
        # summary renders and carries the verdict
        assert "all invariants held" in report.summary()

    def test_gateway_episodes_hold_invariants(self, tmp_path):
        # seed 3's prefix fires gateway-disconnect at #0 and shard-down
        # at #4, so a short campaign exercises both gateway modes
        report = run_chaos(
            seed=3,
            scenarios=8,
            jobs=2,
            cache_dir=str(tmp_path / "cache"),
            bench_baseline=None,
        )
        assert report.violations == []
        assert report.ok
        assert report.outcomes.get("gateway-disconnect", 0) >= 1
        assert report.outcomes.get("shard-down", 0) >= 1
        # every gateway episode resolved to a served, parity-checked job
        assert report.outcomes.get("gateway-ok", 0) >= 2
