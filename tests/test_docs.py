"""The documentation must stay healthy: links resolve, examples execute.

Runs the same checks as CI's docs job (``scripts/check_docs.py``) inside
tier-1, plus negative cases proving the checker actually catches broken
links, broken anchors and failing doctest blocks.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs", module)
    spec.loader.exec_module(module)
    return module


check_docs = _load_checker()


class TestRepoDocs:
    def test_architecture_doc_exists_and_is_linked_from_readme(self):
        assert (REPO_ROOT / "docs" / "architecture.md").is_file()
        assert "docs/architecture.md" in (REPO_ROOT / "README.md").read_text()

    def test_readme_documents_the_service_flags(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for flag in ("--jobs", "--cache-dir", "--validate", "--baseline",
                     "--max-pending", "repro serve"):
            assert flag in readme, f"README must document {flag}"

    def test_all_docs_pass_link_and_doctest_checks(self):
        problems = check_docs.run_checks(REPO_ROOT)
        assert problems == []


class TestCheckerCatchesProblems:
    def test_broken_link_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [missing](./nope.md) for details\n")
        problems = check_docs.check_links(doc)
        assert len(problems) == 1 and "broken link" in problems[0]

    def test_broken_anchor_detected(self, tmp_path):
        (tmp_path / "other.md").write_text("# Real Heading\n")
        doc = tmp_path / "doc.md"
        doc.write_text("see [x](other.md#real-heading) and [y](other.md#fake)\n")
        problems = check_docs.check_links(doc)
        assert len(problems) == 1 and "broken anchor" in problems[0]

    def test_external_links_skipped(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("[x](https://example.com/nope) [y](mailto:a@b.c)\n")
        assert check_docs.check_links(doc) == []

    def test_failing_doctest_block_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```pycon\n>>> 1 + 1\n3\n```\n")
        problems = check_docs.check_doctests(doc)
        assert len(problems) == 1 and "doctest" in problems[0]

    def test_passing_doctest_block_and_plain_blocks(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text(
            "```pycon\n>>> 1 + 1\n2\n```\n"
            "```python\nraise RuntimeError('not executed')\n```\n"
            "```bash\nexit 1\n```\n"
        )
        assert check_docs.check_doctests(doc) == []

    def test_anchor_slugging_matches_github(self):
        assert check_docs.github_anchor("Run it as a service") == "run-it-as-a-service"
        assert check_docs.github_anchor("The `sweep` engine (x/y)") == "the-sweep-engine-xy"
