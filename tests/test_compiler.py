"""End-to-end compiler tests."""

import pytest

from repro.compiler.config import CompilerConfig
from repro.compiler.pipeline import FaultTolerantCompiler, compile_circuit
from repro.ir.circuit import Circuit
from repro.synthesis.clifford_t import SynthesisModel
from repro.workloads import ising_1d, ising_2d


class TestConfig:
    def test_defaults(self):
        config = CompilerConfig()
        assert config.routing_paths == 4
        assert config.num_factories == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CompilerConfig(routing_paths=0)
        with pytest.raises(ValueError):
            CompilerConfig(num_factories=0)
        with pytest.raises(ValueError):
            CompilerConfig(mapping="magic")

    def test_with_updates(self):
        config = CompilerConfig().with_(num_factories=3)
        assert config.num_factories == 3
        assert config.routing_paths == 4

    def test_factory_config_inherits_distill(self):
        config = CompilerConfig()
        assert config.factory_config().distill_time == 11.0


class TestCompile:
    def test_returns_metrics(self):
        result = compile_circuit(ising_2d(2), routing_paths=4)
        assert result.execution_time > 0
        assert result.compute_qubits == 16  # 2x2 data block, r=4 ring
        assert result.t_states == ising_2d(2).count("rz")
        assert result.lower_bound == pytest.approx(result.t_states * 11.0)

    def test_unit_cost_time_optional(self):
        result = compile_circuit(ising_2d(2), routing_paths=4)
        assert result.unit_cost_time is None
        result = compile_circuit(
            ising_2d(2), routing_paths=4, compute_unit_cost_time=True
        )
        assert result.unit_cost_time is not None
        assert result.unit_cost_time <= result.execution_time + 1e-9

    def test_spacetime_accounting(self):
        result = compile_circuit(ising_2d(2), routing_paths=4, num_factories=2)
        assert result.total_qubits == result.compute_qubits + 2 * result.factory_area
        assert result.spacetime_volume(True) > result.spacetime_volume(False)

    def test_cpi_positive(self):
        result = compile_circuit(ising_2d(2))
        assert result.cpi > 0

    def test_elimination_report_present(self):
        result = compile_circuit(ising_2d(2))
        assert result.elimination is not None

    def test_elimination_can_be_disabled(self):
        result = compile_circuit(ising_2d(2), eliminate_redundant_moves=False)
        assert result.elimination is None

    def test_summary_text(self):
        text = compile_circuit(ising_2d(2)).summary()
        assert "execution time" in text
        assert "lower bound" in text.lower() or "bound" in text

    def test_determinism(self):
        a = compile_circuit(ising_2d(2), routing_paths=4)
        b = compile_circuit(ising_2d(2), routing_paths=4)
        assert a.execution_time == b.execution_time

    def test_synthesis_model_scales_t_states(self):
        config = CompilerConfig(synthesis=SynthesisModel.fixed(3))
        result = FaultTolerantCompiler(config).compile(ising_2d(2))
        assert result.t_states == 3 * ising_2d(2).count("rz")

    def test_1d_circuit_compiles(self):
        result = compile_circuit(ising_1d(6), routing_paths=4)
        assert result.execution_time >= result.lower_bound

    def test_prebuilt_layout_reused(self):
        compiler = FaultTolerantCompiler(CompilerConfig(routing_paths=4))
        circuit = ising_2d(2)
        layout = compiler.build_layout(circuit)
        result = compiler.compile(circuit, layout=layout)
        assert result.layout is layout


class TestScaling:
    def test_more_routing_paths_more_qubits(self):
        small = compile_circuit(ising_2d(2), routing_paths=3)
        large = compile_circuit(ising_2d(2), routing_paths=6)
        assert large.compute_qubits > small.compute_qubits

    def test_lower_bound_scales_inverse_factories(self):
        one = compile_circuit(ising_2d(2), num_factories=1)
        two = compile_circuit(ising_2d(2), num_factories=2)
        assert two.lower_bound == pytest.approx(one.lower_bound / 2)

    def test_clifford_only_circuit_has_zero_bound(self):
        qc = Circuit(4).h(0).cx(0, 1).s(2)
        result = compile_circuit(qc, routing_paths=4)
        assert result.lower_bound == 0.0
        assert result.time_vs_lower_bound == 1.0
