"""Differential parity: the gateway versus direct compilation.

The gateway's contract is that it changes *where* a compile runs, never
*what* it produces: for every request the job id must be byte-identical
to the content-addressed :func:`repro.sweep.job_key` a local compile
would use, and the result fingerprint must match a direct
:class:`FaultTolerantCompiler` run field-for-field.  The corpus comes
from the fuzz scenario stream (filtered to configs expressible through
the wire protocol's ``CONFIG_FIELDS``), and the property is checked on
every serving path: cold, warm-hit, coalesced, resubmitted after a full
cluster restart, and across both shards.
"""

import threading

import pytest

from repro.ir import qasm
from repro.compiler.pipeline import FaultTolerantCompiler
from repro.fuzz.generators import config_to_dict, generate_scenario
from repro.gateway import GatewayClient, GatewayCluster
from repro.service import protocol
from repro.sweep import job_key

SEED = 7
CORPUS_SIZE = 6


def build_corpus():
    """Fuzz scenarios whose config the gateway wire protocol can express.

    A scenario with a non-default distillation time needs an
    ``instruction_set`` override, which is not one of the protocol's
    ``CONFIG_FIELDS`` — those scenarios are the fuzzer's business, not
    the gateway's, so the corpus filters them out.  Small circuits keep
    the double compile (direct + backend) cheap.
    """
    corpus = []
    index = 0
    while len(corpus) < CORPUS_SIZE:
        scenario = generate_scenario(SEED, index)
        index += 1
        if config_to_dict(scenario.config)["distill_time"] != 11.0:
            continue
        if scenario.circuit.num_qubits > 6:
            continue
        corpus.append(scenario)
    return corpus


CORPUS = build_corpus()


def wire_form(scenario):
    """The (qasm, config-overrides) pair a client would send."""
    source = qasm.dumps(scenario.circuit)
    overrides = {
        field: getattr(scenario.config, field)
        for field in protocol.CONFIG_FIELDS
    }
    return source, overrides


def direct_compile(scenario):
    """The local-compilation side of the differential: same QASM text the
    gateway receives, parsed the same way, compiled in this process."""
    source, _ = wire_form(scenario)
    circuit = qasm.loads(source)
    result = FaultTolerantCompiler(scenario.config).compile(circuit)
    return job_key(circuit, scenario.config), result.fingerprint()


DIRECT = {scenario.index: direct_compile(scenario) for scenario in CORPUS}


def shard_dispatches(client):
    """Per-shard dispatched counts, by shard index."""
    stats = client.stats()
    return {shard["shard"]: shard["dispatched"] for shard in stats["shards"]}


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("gateway-parity")
    with GatewayCluster(shards=2, jobs=1, cache_dir=cache_dir) as fleet:
        yield fleet


@pytest.fixture(scope="module")
def client(cluster):
    with GatewayClient(*cluster.address) as gateway_client:
        yield gateway_client


class TestParity:
    def test_cold_path_matches_direct(self, client):
        for scenario in CORPUS:
            source, overrides = wire_form(scenario)
            expected_key, expected_fingerprint = DIRECT[scenario.index]
            payload = client.compile(qasm_source=source, **overrides)
            assert payload["status"] == "done", payload
            # the job id IS the sweep layer's content-addressed key
            assert payload["id"] == expected_key
            assert payload["result"]["key"] == expected_key
            assert payload["result"]["fingerprint"] == expected_fingerprint

    def test_warm_hit_matches_direct_with_zero_dispatches(self, client):
        before = shard_dispatches(client)
        for scenario in CORPUS:
            source, overrides = wire_form(scenario)
            expected_key, expected_fingerprint = DIRECT[scenario.index]
            payload = client.submit(qasm_source=source, **overrides)
            # served terminal straight from the job store, no polling
            assert payload["status"] == "done"
            assert payload["id"] == expected_key
            assert payload["result"]["fingerprint"] == expected_fingerprint
        assert shard_dispatches(client) == before

    def test_cross_shard_routing_is_key_hash(self, client):
        """Each corpus key landed on exactly the shard its hash names."""
        expected = {0: 0, 1: 0}
        for scenario in CORPUS:
            key, _ = DIRECT[scenario.index]
            expected[int(key[:16], 16) % 2] += 1
        assert shard_dispatches(client) == expected

    def test_coalesced_burst_matches_direct(self, cluster, client):
        """A herd on one fresh key: one dispatch, identical results."""
        scenario = CORPUS[0]
        source, overrides = wire_form(scenario)
        # a config not in the corpus, so the key is cold
        overrides = dict(overrides, num_factories=overrides["num_factories"] + 1)
        circuit = qasm.loads(source)
        from repro.compiler.config import CompilerConfig

        config = CompilerConfig(**overrides)
        expected_key = job_key(circuit, config)
        expected_fingerprint = (
            FaultTolerantCompiler(config).compile(circuit).fingerprint()
        )

        before = shard_dispatches(client)
        results, errors = [], []

        def submit_and_wait():
            try:
                with GatewayClient(*cluster.address) as herd_client:
                    results.append(
                        herd_client.compile(qasm_source=source, **overrides)
                    )
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        herd = [threading.Thread(target=submit_and_wait) for _ in range(8)]
        for thread in herd:
            thread.start()
        for thread in herd:
            thread.join(timeout=60)
        assert not errors
        assert len(results) == 8
        for payload in results:
            assert payload["status"] == "done"
            assert payload["id"] == expected_key
            assert payload["result"]["fingerprint"] == expected_fingerprint
        # the whole herd cost exactly one dispatch across the fleet
        after = shard_dispatches(client)
        assert sum(after.values()) == sum(before.values()) + 1


class TestRestartParity:
    def test_resubmission_after_restart_is_free_and_identical(self, tmp_path):
        scenario = CORPUS[1]
        source, overrides = wire_form(scenario)
        expected_key, expected_fingerprint = DIRECT[scenario.index]
        cache_dir = tmp_path / "fleet-state"

        with GatewayCluster(shards=2, jobs=1, cache_dir=cache_dir) as fleet:
            with GatewayClient(*fleet.address) as gateway_client:
                first = gateway_client.compile(qasm_source=source, **overrides)
        assert first["status"] == "done"
        assert first["id"] == expected_key

        # same state directory, brand-new cluster: the SQLite job store
        # answers the resubmission terminal, with zero dispatches
        with GatewayCluster(shards=2, jobs=1, cache_dir=cache_dir) as fleet:
            with GatewayClient(*fleet.address) as gateway_client:
                again = gateway_client.submit(qasm_source=source, **overrides)
                dispatches = shard_dispatches(gateway_client)
        assert again["status"] == "done"
        assert again["id"] == expected_key
        assert again["result"]["fingerprint"] == expected_fingerprint
        assert sum(dispatches.values()) == 0
