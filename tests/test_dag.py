"""Unit tests for repro.ir.dag."""

import pytest

from repro.ir.circuit import Circuit, bell_pair
from repro.ir.dag import DagCircuit, ReadyFrontier


def ladder() -> Circuit:
    return Circuit(3).h(0).cx(0, 1).cx(1, 2).t(2)


class TestDagStructure:
    def test_node_count(self):
        assert len(DagCircuit(ladder())) == 4

    def test_dependencies_follow_wires(self):
        dag = DagCircuit(ladder())
        assert dag.node(1).predecessors == {0}
        assert dag.node(2).predecessors == {1}
        assert dag.node(3).predecessors == {2}

    def test_independent_gates_are_roots(self):
        dag = DagCircuit(Circuit(2).h(0).h(1))
        assert len(dag.roots()) == 2

    def test_layers(self):
        dag = DagCircuit(ladder())
        assert [node.layer for node in dag.nodes] == [0, 1, 2, 3]

    def test_depth(self):
        assert DagCircuit(ladder()).depth() == 4
        assert DagCircuit(Circuit(4).h(0).h(1)).depth() == 1

    def test_layers_grouping(self):
        layers = DagCircuit(bell_pair()).layers()
        assert len(layers) == 2
        assert layers[0][0].gate.name == "h"


class TestTopologicalOrder:
    def test_respects_dependencies(self):
        dag = DagCircuit(ladder())
        order = [node.index for node in dag.topological_order()]
        for node in dag.nodes:
            for pred in node.predecessors:
                assert order.index(pred) < order.index(node.index)

    def test_prefers_circuit_order(self):
        dag = DagCircuit(Circuit(3).h(2).h(0).h(1))
        assert [n.index for n in dag.topological_order()] == [0, 1, 2]


class TestNextGateOnQubit:
    def test_finds_direct_successor(self):
        dag = DagCircuit(ladder())
        nxt = dag.next_gate_on_qubit(1, 1)
        assert nxt is not None and nxt.index == 2

    def test_none_when_last_use(self):
        dag = DagCircuit(ladder())
        assert dag.next_gate_on_qubit(3, 2) is None

    def test_skips_other_wires(self):
        qc = Circuit(3).cx(0, 1).h(1).cx(0, 2)
        dag = DagCircuit(qc)
        nxt = dag.next_gate_on_qubit(0, 0)
        assert nxt is not None and nxt.index == 2


class TestCriticalPath:
    def test_weighted_depth(self):
        dag = DagCircuit(ladder())
        weights = {"h": 3.0, "cx": 2.0, "t": 2.5}
        assert dag.critical_path_timesteps(weights) == pytest.approx(9.5)

    def test_unknown_gate_costs_one(self):
        dag = DagCircuit(Circuit(1).h(0))
        assert dag.critical_path_timesteps({}) == pytest.approx(1.0)


class TestReadyFrontier:
    def test_initial_frontier_is_roots(self):
        dag = DagCircuit(ladder())
        frontier = ReadyFrontier(dag)
        assert [n.index for n in frontier.ready_nodes()] == [0]

    def test_completion_unlocks_successors(self):
        dag = DagCircuit(ladder())
        frontier = ReadyFrontier(dag)
        newly = frontier.complete(0)
        assert [n.index for n in newly] == [1]

    def test_double_complete_rejected(self):
        frontier = ReadyFrontier(DagCircuit(ladder()))
        frontier.complete(0)
        with pytest.raises(ValueError):
            frontier.complete(0)

    def test_not_ready_rejected(self):
        frontier = ReadyFrontier(DagCircuit(ladder()))
        with pytest.raises(ValueError):
            frontier.complete(3)

    def test_drains_to_exhaustion(self):
        dag = DagCircuit(ladder())
        frontier = ReadyFrontier(dag)
        seen = []
        while not frontier.exhausted:
            node = frontier.ready_nodes()[0]
            seen.append(node.index)
            frontier.complete(node.index)
        assert seen == [0, 1, 2, 3]


class TestBarrier:
    def test_barrier_orders_independent_gates(self):
        # without the barrier, h(0) and h(1) are independent roots
        free = DagCircuit(Circuit(2).h(0).h(1))
        assert len(free.roots()) == 2
        # the barrier serialises them: h(1) must wait for h(0)
        dag = DagCircuit(Circuit(2).h(0).barrier(0, 1).h(1))
        assert len(dag) == 2  # barriers are not nodes
        assert dag.node(1).predecessors == {0}
        assert dag.node(0).successors == {1}
        assert dag.depth() == 2

    def test_empty_barrier_spans_whole_register(self):
        dag = DagCircuit(Circuit(3).h(0).barrier().h(2))
        assert dag.node(1).predecessors == {0}

    def test_barrier_only_orders_its_own_qubits(self):
        qc = Circuit(3).h(0).barrier(0, 1).h(1).h(2)
        dag = DagCircuit(qc)
        assert dag.node(1).predecessors == {0}  # h(1) behind the barrier
        assert dag.node(2).predecessors == set()  # q2 untouched

    def test_consecutive_barriers_chain(self):
        qc = Circuit(3).h(0).barrier(0, 1).barrier(1, 2).h(2)
        dag = DagCircuit(qc)
        # h(2) sits behind the second barrier, which inherited the first
        # barrier's frontier through the shared qubit 1.
        assert dag.node(1).predecessors == {0}

    def test_barrier_in_scheduled_circuit_orders_execution(self):
        from repro.compiler.pipeline import compile_circuit

        qc = Circuit(2, name="barrier_demo").h(0).barrier(0, 1).h(1)
        schedule = compile_circuit(qc, routing_paths=3).schedule
        gates = [op for op in schedule if op.kind == "gate" and op.name == "h"]
        assert len(gates) == 2
        first = next(op for op in gates if op.qubits == (0,))
        second = next(op for op in gates if op.qubits == (1,))
        assert second.start >= first.end

    def test_barrier_free_circuits_unchanged(self):
        plain = DagCircuit(ladder())
        assert [sorted(n.predecessors) for n in plain.nodes] == [[], [0], [1], [2]]


class TestLazyHeapFrontier:
    def test_pop_best_needs_priority(self):
        frontier = ReadyFrontier(DagCircuit(ladder()))
        with pytest.raises(RuntimeError):
            frontier.pop_best()

    def test_pop_best_matches_full_scan(self):
        # Simulated scheduling: priorities are "earliest start by qubit
        # availability" and only ever grow, exactly like the scheduler.
        import random

        rng = random.Random(11)
        for trial in range(30):
            num_qubits = rng.randint(2, 6)
            qc = Circuit(num_qubits)
            for _ in range(rng.randint(5, 40)):
                if num_qubits >= 2 and rng.random() < 0.4:
                    a, b = rng.sample(range(num_qubits), 2)
                    qc.cx(a, b)
                else:
                    qc.h(rng.randrange(num_qubits))
            dag = DagCircuit(qc)

            def run(pick):
                free = {q: 0.0 for q in range(num_qubits)}

                def est(node):
                    return max((free[q] for q in node.qubits), default=0.0)

                frontier = ReadyFrontier(dag, priority=est)
                order = []
                bump = random.Random(trial)  # same bumps for both runs
                while not frontier.exhausted:
                    node = pick(frontier, est)
                    order.append(node.index)
                    end = est(node) + bump.choice([1.0, 2.0, 3.0])
                    for q in node.qubits:
                        free[q] = max(free[q], end)
                    frontier.complete(node.index)
                return order

            heap_order = run(lambda f, est: f.pop_best())
            scan_order = run(
                lambda f, est: min(f.ready_nodes(), key=lambda n: (est(n), n.index))
            )
            assert heap_order == scan_order
