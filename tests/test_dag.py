"""Unit tests for repro.ir.dag."""

import pytest

from repro.ir.circuit import Circuit, bell_pair
from repro.ir.dag import DagCircuit, ReadyFrontier


def ladder() -> Circuit:
    return Circuit(3).h(0).cx(0, 1).cx(1, 2).t(2)


class TestDagStructure:
    def test_node_count(self):
        assert len(DagCircuit(ladder())) == 4

    def test_dependencies_follow_wires(self):
        dag = DagCircuit(ladder())
        assert dag.node(1).predecessors == {0}
        assert dag.node(2).predecessors == {1}
        assert dag.node(3).predecessors == {2}

    def test_independent_gates_are_roots(self):
        dag = DagCircuit(Circuit(2).h(0).h(1))
        assert len(dag.roots()) == 2

    def test_layers(self):
        dag = DagCircuit(ladder())
        assert [node.layer for node in dag.nodes] == [0, 1, 2, 3]

    def test_depth(self):
        assert DagCircuit(ladder()).depth() == 4
        assert DagCircuit(Circuit(4).h(0).h(1)).depth() == 1

    def test_layers_grouping(self):
        layers = DagCircuit(bell_pair()).layers()
        assert len(layers) == 2
        assert layers[0][0].gate.name == "h"


class TestTopologicalOrder:
    def test_respects_dependencies(self):
        dag = DagCircuit(ladder())
        order = [node.index for node in dag.topological_order()]
        for node in dag.nodes:
            for pred in node.predecessors:
                assert order.index(pred) < order.index(node.index)

    def test_prefers_circuit_order(self):
        dag = DagCircuit(Circuit(3).h(2).h(0).h(1))
        assert [n.index for n in dag.topological_order()] == [0, 1, 2]


class TestNextGateOnQubit:
    def test_finds_direct_successor(self):
        dag = DagCircuit(ladder())
        nxt = dag.next_gate_on_qubit(1, 1)
        assert nxt is not None and nxt.index == 2

    def test_none_when_last_use(self):
        dag = DagCircuit(ladder())
        assert dag.next_gate_on_qubit(3, 2) is None

    def test_skips_other_wires(self):
        qc = Circuit(3).cx(0, 1).h(1).cx(0, 2)
        dag = DagCircuit(qc)
        nxt = dag.next_gate_on_qubit(0, 0)
        assert nxt is not None and nxt.index == 2


class TestCriticalPath:
    def test_weighted_depth(self):
        dag = DagCircuit(ladder())
        weights = {"h": 3.0, "cx": 2.0, "t": 2.5}
        assert dag.critical_path_timesteps(weights) == pytest.approx(9.5)

    def test_unknown_gate_costs_one(self):
        dag = DagCircuit(Circuit(1).h(0))
        assert dag.critical_path_timesteps({}) == pytest.approx(1.0)


class TestReadyFrontier:
    def test_initial_frontier_is_roots(self):
        dag = DagCircuit(ladder())
        frontier = ReadyFrontier(dag)
        assert [n.index for n in frontier.ready_nodes()] == [0]

    def test_completion_unlocks_successors(self):
        dag = DagCircuit(ladder())
        frontier = ReadyFrontier(dag)
        newly = frontier.complete(0)
        assert [n.index for n in newly] == [1]

    def test_double_complete_rejected(self):
        frontier = ReadyFrontier(DagCircuit(ladder()))
        frontier.complete(0)
        with pytest.raises(ValueError):
            frontier.complete(0)

    def test_not_ready_rejected(self):
        frontier = ReadyFrontier(DagCircuit(ladder()))
        with pytest.raises(ValueError):
            frontier.complete(3)

    def test_drains_to_exhaustion(self):
        dag = DagCircuit(ladder())
        frontier = ReadyFrontier(dag)
        seen = []
        while not frontier.exhausted:
            node = frontier.ready_nodes()[0]
            seen.append(node.index)
            frontier.complete(node.index)
        assert seen == [0, 1, 2, 3]
