"""Tests for redundant-move elimination and schedule resimulation."""

import pytest

from repro.scheduling.events import Schedule, ScheduledOp
from repro.scheduling.redundant_moves import (
    eliminate_redundant_moves,
    find_redundant_pairs,
)
from repro.scheduling.resim import optimize_schedule, resimulate


def move(uid, qubit, a, b, kind="move", start=0.0):
    return ScheduledOp(
        uid=uid, kind=kind, name="move", qubits=(qubit,), cells=(a, b),
        start=start, duration=1.0,
    )


def gate(uid, qubits, cells=(), start=0.0, duration=2.0, min_start=0.0):
    return ScheduledOp(
        uid=uid, kind="gate", name="cx", qubits=qubits, cells=cells,
        start=start, duration=duration, min_start=min_start,
    )


class TestPairDetection:
    def test_simple_inverse_pair(self):
        schedule = Schedule([
            move(0, 5, (1, 1), (1, 2)),
            move(1, 5, (1, 2), (1, 1), kind="restore"),
        ])
        assert find_redundant_pairs(schedule) == [(0, 1)]

    def test_intervening_gate_on_qubit_blocks(self):
        schedule = Schedule([
            move(0, 5, (1, 1), (1, 2)),
            gate(1, (5,)),
            move(2, 5, (1, 2), (1, 1)),
        ])
        assert find_redundant_pairs(schedule) == []

    def test_intervening_cell_use_blocks(self):
        schedule = Schedule([
            move(0, 5, (1, 1), (1, 2)),
            gate(1, (9,), cells=((1, 1),)),  # someone used the origin
            move(2, 5, (1, 2), (1, 1)),
        ])
        assert find_redundant_pairs(schedule) == []

    def test_non_inverse_moves_not_paired(self):
        schedule = Schedule([
            move(0, 5, (1, 1), (1, 2)),
            move(1, 5, (1, 2), (1, 3)),
        ])
        assert find_redundant_pairs(schedule) == []

    def test_multiple_pairs(self):
        schedule = Schedule([
            move(0, 5, (1, 1), (1, 2)),
            move(1, 5, (1, 2), (1, 1)),
            move(2, 7, (3, 3), (3, 4)),
            move(3, 7, (3, 4), (3, 3)),
        ])
        assert len(find_redundant_pairs(schedule)) == 2

    def test_unrelated_qubit_ops_do_not_block(self):
        schedule = Schedule([
            move(0, 5, (1, 1), (1, 2)),
            gate(1, (9,), cells=((7, 7),)),
            move(2, 5, (1, 2), (1, 1)),
        ])
        assert find_redundant_pairs(schedule) == [(0, 2)]


class TestElimination:
    def test_removes_pairs(self):
        schedule = Schedule([
            move(0, 5, (1, 1), (1, 2)),
            move(1, 5, (1, 2), (1, 1)),
            gate(2, (5,)),
        ])
        pruned, report = eliminate_redundant_moves(schedule)
        assert report.removed_pairs == 1
        assert report.moves_removed == 2
        assert len(pruned.ops) == 1

    def test_noop_without_pairs(self):
        schedule = Schedule([gate(0, (1,))])
        pruned, report = eliminate_redundant_moves(schedule)
        assert report.removed_pairs == 0
        assert len(pruned.ops) == 1


class TestResimulation:
    def test_pulls_ops_earlier(self):
        schedule = Schedule([
            gate(0, (1,), start=10.0),
            gate(1, (2,), start=20.0),
        ])
        retimed = resimulate(schedule)
        assert retimed.ops[0].start == 0.0
        assert retimed.ops[1].start == 0.0

    def test_respects_qubit_dependencies(self):
        schedule = Schedule([
            gate(0, (1,), start=0.0),
            gate(1, (1,), start=50.0),
        ])
        retimed = resimulate(schedule)
        assert retimed.ops[1].start == pytest.approx(2.0)

    def test_respects_min_start(self):
        schedule = Schedule([gate(0, (1,), start=0.0, min_start=33.0)])
        retimed = resimulate(schedule)
        assert retimed.ops[0].start == pytest.approx(33.0)

    def test_respects_cell_locks(self):
        schedule = Schedule([
            gate(0, (1,), cells=((0, 0),)),
            gate(1, (2,), cells=((0, 0),)),
        ])
        retimed = resimulate(schedule)
        assert retimed.ops[1].start == pytest.approx(2.0)

    def test_optimize_never_increases_makespan(self):
        schedule = Schedule([
            move(0, 5, (1, 1), (1, 2), start=0.0),
            move(1, 5, (1, 2), (1, 1), kind="restore", start=1.0),
            gate(2, (5,), start=2.0),
        ])
        optimized, report = optimize_schedule(schedule)
        assert report.removed_pairs == 1
        assert optimized.makespan <= schedule.makespan
