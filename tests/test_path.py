"""Unit tests for the Path data structure."""

import pytest

from repro.arch.grid import Grid
from repro.routing.path import Path, path_from_cells, straight_line_cells


class TestPath:
    def test_endpoints(self):
        path = Path(((0, 0), (0, 1), (1, 1)), cost=2.0, occupied_crossings=0)
        assert path.source == (0, 0)
        assert path.destination == (1, 1)
        assert path.num_moves == 2
        assert len(path) == 3

    def test_interior(self):
        path = Path(((0, 0), (0, 1), (1, 1)), cost=2.0, occupied_crossings=0)
        assert path.interior() == ((0, 1),)

    def test_single_cell_path(self):
        path = Path(((2, 2),), cost=0.0, occupied_crossings=0)
        assert path.num_moves == 0
        assert path.interior() == ()

    def test_validate_rejects_disconnected(self):
        grid = Grid(3, 3)
        path = Path(((0, 0), (2, 2)), cost=1.0, occupied_crossings=0)
        with pytest.raises(ValueError):
            path.validate(grid)

    def test_validate_rejects_out_of_bounds(self):
        grid = Grid(2, 2)
        path = Path(((0, 0), (0, 1), (0, 2)), cost=2.0, occupied_crossings=0)
        with pytest.raises(ValueError):
            path.validate(grid)


class TestPathFromCells:
    def test_counts_crossings(self):
        grid = Grid(3, 3)
        grid.place(9, (0, 1))
        path = path_from_cells([(0, 0), (0, 1), (0, 2)], grid)
        assert path.occupied_crossings == 1
        assert path.cost == 2 * 2  # length 2, penalty factor (1+1)

    def test_endpoints_not_counted(self):
        grid = Grid(3, 3)
        grid.place(9, (0, 0))
        grid.place(8, (0, 2))
        path = path_from_cells([(0, 0), (0, 1), (0, 2)], grid)
        assert path.occupied_crossings == 0


class TestStraightLine:
    def test_row_then_column(self):
        cells = straight_line_cells((0, 0), (2, 2))
        assert cells[0] == (0, 0)
        assert cells[-1] == (2, 2)
        assert len(cells) == 5

    def test_same_cell(self):
        assert straight_line_cells((1, 1), (1, 1)) == [(1, 1)]

    def test_pure_horizontal(self):
        cells = straight_line_cells((1, 0), (1, 3))
        assert cells == [(1, 0), (1, 1), (1, 2), (1, 3)]
