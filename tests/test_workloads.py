"""Workload generator tests — Table I counts are exact requirements."""

import pytest

from repro.ir.properties import interaction_locality
from repro.workloads import (
    ADDER_N28,
    MULTIPLIER_N15,
    adder_n28,
    benchmark_names,
    cdkm_adder,
    condensed_matter_suite,
    fermi_hubbard_2d,
    ghz_fanout,
    ghz_qasmbench,
    heisenberg_1d,
    heisenberg_2d,
    ising_1d,
    ising_2d,
    load_benchmark,
    multiplier_n15,
    paper_table1_benchmarks,
    shift_add_multiplier,
)
from repro.workloads.qasmbench import verify_budget


class TestTableOneCounts:
    """Exact gate counts from the paper's Table I."""

    def test_ising_2d_10x10(self):
        counts = ising_2d(10).gate_counts()
        assert counts == {"cx": 360, "rz": 280, "h": 300}

    def test_heisenberg_2d_10x10(self):
        counts = heisenberg_2d(10).gate_counts()
        assert counts == {"h": 1440, "cx": 1080, "rz": 540, "s": 360, "sdg": 360}

    def test_fermi_hubbard_2d_10x10(self):
        counts = fermi_hubbard_2d(10).gate_counts()
        assert counts == {"h": 400, "cx": 300, "s": 100, "sdg": 100, "rz": 150}

    def test_ghz_n255(self):
        counts = ghz_qasmbench(255).gate_counts()
        assert counts == {"cx": 254, "rz": 2, "sx": 34, "x": 1}

    def test_adder_n28(self):
        circuit = adder_n28()
        assert circuit.num_qubits == 28
        assert verify_budget(circuit, ADDER_N28)

    def test_multiplier_n15(self):
        circuit = multiplier_n15()
        assert circuit.num_qubits == 15
        assert verify_budget(circuit, MULTIPLIER_N15)


class TestScaling:
    @pytest.mark.parametrize("side", [2, 4, 6])
    def test_ising_scales(self, side):
        qc = ising_2d(side)
        edges = 2 * side * (side - 1)
        assert qc.count("cx") == 2 * edges
        assert qc.count("rz") == edges + side * side

    @pytest.mark.parametrize("side", [2, 4])
    def test_heisenberg_scales(self, side):
        qc = heisenberg_2d(side)
        edges = 2 * side * (side - 1)
        assert qc.count("cx") == 6 * edges
        assert qc.count("rz") == 3 * edges

    @pytest.mark.parametrize("side", [2, 4])
    def test_fermi_hubbard_scales(self, side):
        qc = fermi_hubbard_2d(side)
        bonds = side * (side // 2)
        assert qc.count("rz") == 3 * bonds

    def test_1d_models(self):
        assert ising_1d(8).count("cx") == 14
        assert heisenberg_1d(5).count("cx") == 24

    def test_rejects_tiny_lattices(self):
        with pytest.raises(ValueError):
            ising_2d(1)
        with pytest.raises(ValueError):
            heisenberg_2d(0)


class TestLocality:
    """The condensed-matter circuits must be NN on the 2D labelling."""

    @pytest.mark.parametrize("builder", [ising_2d, heisenberg_2d, fermi_hubbard_2d])
    def test_fully_local(self, builder):
        assert interaction_locality(builder(4), 4) == 1.0


class TestRegistry:
    def test_eighteen_benchmarks(self):
        assert len(benchmark_names()) == 18

    def test_load_by_name(self):
        qc = load_benchmark("ising_2d_4x4")
        assert qc.num_qubits == 16

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_benchmark("shor_2048")

    def test_table1_suite(self):
        suite = paper_table1_benchmarks()
        assert [c.num_qubits for c in suite] == [100, 100, 100, 255, 28, 15]

    def test_condensed_matter_suite(self):
        suite = condensed_matter_suite("ising")
        assert [c.num_qubits for c in suite] == [4, 16, 36, 64, 100]

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            condensed_matter_suite("hubbard_iii")


class TestArithmetic:
    def test_cdkm_width(self):
        assert cdkm_adder(4).num_qubits == 10

    def test_cdkm_has_toffolis(self):
        qc = cdkm_adder(3)
        # 2n MAJ/UMA Toffolis, 7 T each
        assert qc.t_count() == 7 * 2 * 3

    def test_multiplier_width(self):
        assert shift_add_multiplier(3).num_qubits == 13  # 4n+1

    def test_multiplier_t_count_grows(self):
        assert shift_add_multiplier(3).t_count() > shift_add_multiplier(2).t_count()

    def test_ghz_fanout_log_depth(self):
        qc = ghz_fanout(16)
        assert qc.count("cx") == 15
        assert qc.depth() <= 6
