"""Metric and report-rendering tests."""

import pytest

from repro.metrics.report import Table, combine
from repro.metrics.spacetime import (
    compare,
    cycles_per_instruction,
    geometric_mean,
    overhead_factor,
    quality_denominator,
    qubit_reduction,
    spacetime_volume,
    spacetime_volume_per_op,
)


class TestSpacetime:
    def test_volume(self):
        assert spacetime_volume(100, 50.0) == 5000.0

    def test_volume_validation(self):
        with pytest.raises(ValueError):
            spacetime_volume(-1, 2.0)

    def test_per_op(self):
        assert spacetime_volume_per_op(100, 50.0, 25) == 200.0

    def test_cpi(self):
        assert cycles_per_instruction(500.0, 100) == 5.0

    def test_overhead_factor(self):
        assert overhead_factor(120.0, 100.0) == pytest.approx(1.2)

    def test_overhead_factor_degenerate_bound(self):
        # Clifford-only circuits have a zero distillation bound; the factor
        # must stay proportional to execution time (divide by the 1 d
        # floor), not pin at 1.0 and mask regressions.
        assert overhead_factor(120.0, 0.0) == 120.0
        assert overhead_factor(80.0, 0.0) < overhead_factor(120.0, 0.0)

    def test_quality_denominator(self):
        assert quality_denominator(100.0) == 100.0
        assert quality_denominator(0.0) == 1.0
        assert quality_denominator(-5.0, floor=2.0) == 2.0
        with pytest.raises(ValueError):
            quality_denominator(0.0, floor=0.0)

    def test_qubit_reduction(self):
        assert qubit_reduction(47, 100) == pytest.approx(0.53)
        with pytest.raises(ValueError):
            qubit_reduction(10, 0)

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) is None

    def test_compare_summary(self):
        summary = compare(
            "ising", "compact", our_qubits=150, our_time=120.0,
            base_qubits=300, base_time=100.0,
        )
        assert summary.qubit_reduction == pytest.approx(0.5)
        assert summary.time_overhead == pytest.approx(1.2)
        assert summary.spacetime_ratio == pytest.approx(300 * 100 / (150 * 120))


class TestTable:
    def make(self):
        table = Table(title="demo", columns=["a", "b"])
        table.add_row(a=1, b=2.5)
        table.add_row(a=10, b=None)
        return table

    def test_add_row_rejects_unknown_columns(self):
        table = Table(title="t", columns=["a"])
        with pytest.raises(KeyError):
            table.add_row(zz=1)

    def test_column_access(self):
        assert self.make().column("a") == [1, 10]
        with pytest.raises(KeyError):
            self.make().column("zz")

    def test_text_rendering(self):
        text = self.make().to_text()
        assert "demo" in text
        assert "2.5" in text
        assert "-" in text  # the None cell

    def test_notes_rendered(self):
        table = self.make()
        table.notes.append("hello shape")
        assert "note: hello shape" in table.to_text()

    def test_csv_rendering(self):
        csv_text = self.make().to_csv()
        assert csv_text.splitlines()[0] == "a,b"
        assert "1,2.5" in csv_text

    def test_combine(self):
        text = combine([self.make(), self.make()], title="all")
        assert text.startswith("all")
        assert text.count("demo") == 2

    def test_large_number_formatting(self):
        table = Table(title="n", columns=["v"])
        table.add_row(v=1234567.0)
        assert "1,234,567" in table.to_text()
