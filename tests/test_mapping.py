"""Initial mapping strategy tests."""

import pytest

from repro.arch.grid import Grid
from repro.arch.layout import build_layout
from repro.compiler.mapping import (
    MappingError,
    choose_mapping,
    grid_mapping,
    snake_mapping,
)
from repro.ir.circuit import Circuit, ghz_chain
from repro.workloads import ising_1d, ising_2d


class TestGridMapping:
    def test_identity_row_major(self):
        layout = build_layout(16, 4)
        mapping = grid_mapping(ising_2d(4), layout)
        assert mapping[0] == layout.data_slots[0]
        assert mapping[15] == layout.data_slots[15]

    def test_too_many_qubits_rejected(self):
        layout = build_layout(4, 4)
        with pytest.raises(MappingError):
            grid_mapping(Circuit(9), layout)

    def test_2d_nn_pairs_grid_adjacent(self):
        layout = build_layout(16, 4)
        mapping = grid_mapping(ising_2d(4), layout)
        # horizontally adjacent program qubits (0,1) are adjacent cells in
        # the solid r=4 block
        assert Grid.manhattan(mapping[0], mapping[1]) == 1


class TestSnakeMapping:
    def test_consecutive_qubits_adjacent(self):
        layout = build_layout(16, 4)
        mapping = snake_mapping(ghz_chain(16), layout)
        for q in range(15):
            assert Grid.manhattan(mapping[q], mapping[q + 1]) == 1

    def test_snake_reverses_alternate_rows(self):
        layout = build_layout(16, 4)
        mapping = snake_mapping(ghz_chain(16), layout)
        # Row 0 ends at the right edge; row 1 starts directly below it.
        assert mapping[3][1] == mapping[4][1]


class TestAutoSelection:
    def test_chain_gets_snake(self):
        layout = build_layout(16, 4)
        auto = choose_mapping(ghz_chain(16), layout, "auto")
        assert auto == snake_mapping(ghz_chain(16), layout)

    def test_2d_model_gets_grid(self):
        layout = build_layout(16, 4)
        auto = choose_mapping(ising_2d(4), layout, "auto")
        assert auto == grid_mapping(ising_2d(4), layout)

    def test_1d_ising_gets_snake(self):
        qc = ising_1d(16)
        layout = build_layout(16, 4)
        assert choose_mapping(qc, layout, "auto") == snake_mapping(qc, layout)

    def test_explicit_strategies(self):
        layout = build_layout(16, 4)
        qc = ising_2d(4)
        assert choose_mapping(qc, layout, "grid") == grid_mapping(qc, layout)
        assert choose_mapping(qc, layout, "snake") == snake_mapping(qc, layout)

    def test_unknown_strategy_rejected(self):
        layout = build_layout(16, 4)
        with pytest.raises(MappingError):
            choose_mapping(ising_2d(4), layout, "best")
