"""Tests for the QFT and multi-step Trotter workload extensions."""

import pytest

from repro import compile_circuit
from repro.workloads.ising import ising_2d
from repro.workloads.qft import qft, trotterized


class TestQft:
    def test_gate_structure(self):
        qc = qft(4)
        assert qc.count("h") == 4
        # C(4,2)=6 controlled phases, each 2 CX + 3 Rz
        assert qc.count("cx") == 12
        assert qc.count("rz") == 18

    def test_swaps_optional(self):
        assert qft(4, include_swaps=True).count("swap") == 2
        assert qft(4).count("swap") == 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            qft(0)

    def test_t_heavy(self):
        qc = qft(4)
        assert qc.t_count() > 0

    def test_compiles(self):
        result = compile_circuit(qft(4), routing_paths=4)
        assert result.execution_time >= result.lower_bound


class TestTrotterized:
    def test_counts_scale_linearly(self):
        one = trotterized(ising_2d, 2, 1)
        three = trotterized(ising_2d, 2, 3)
        assert len(three) == 3 * len(one)
        assert three.t_count() == 3 * one.t_count()

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            trotterized(ising_2d, 2, 0)

    def test_name_records_steps(self):
        assert trotterized(ising_2d, 2, 2).name.endswith("_x2")

    def test_multi_step_bound_scales(self):
        one = compile_circuit(trotterized(ising_2d, 2, 1), routing_paths=4)
        two = compile_circuit(trotterized(ising_2d, 2, 2), routing_paths=4)
        assert two.lower_bound == pytest.approx(2 * one.lower_bound)
