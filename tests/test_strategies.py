"""Placement/delivery strategy tests: registry, config plumbing, the
default strategy's bit-identity, the balanced strategy's validity and
its win on a tracked case, the CNOT mover-preference seam, the
restore-cycle breaker, and the quality-bench harness built on top."""

import pytest

from repro.arch.grid import Grid
from repro.compiler.config import CompilerConfig
from repro.compiler.pipeline import FaultTolerantCompiler, compile_circuit
from repro.perf.quality_bench import (
    QualityReport,
    quality_regressions,
    run_quality_bench,
)
from repro.routing.neighbor_moves import plan_cnot_alignment
from repro.scheduling.scheduler import LatticeSurgeryScheduler
from repro.strategies import (
    STRATEGIES,
    STRATEGY_NAMES,
    BalancedStrategy,
    DefaultStrategy,
    get_strategy,
)
from repro.verify import raise_if_invalid, validate_result
from repro.workloads import ising_2d, load_benchmark


class TestRegistry:
    def test_known_names(self):
        assert STRATEGY_NAMES == ("default", "balanced")
        assert STRATEGIES["default"] is DefaultStrategy
        assert STRATEGIES["balanced"] is BalancedStrategy

    def test_fresh_instance_per_call(self):
        assert get_strategy("balanced") is not get_strategy("balanced")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            get_strategy("greedy")

    def test_config_validates_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            CompilerConfig(strategy="greedy")
        assert CompilerConfig(strategy="balanced").strategy == "balanced"


class TestDefaultStrategy:
    def test_default_is_the_implicit_strategy(self):
        circuit = ising_2d(2)
        implicit = compile_circuit(circuit, routing_paths=3)
        explicit = compile_circuit(circuit, routing_paths=3, strategy="default")
        assert implicit.fingerprint() == explicit.fingerprint()
        assert implicit.schedule.to_dict() == explicit.schedule.to_dict()

    def test_scheduler_accepts_name_or_instance(self):
        circuit = ising_2d(2)
        by_name = compile_circuit(circuit, routing_paths=3)
        config = CompilerConfig(routing_paths=3)
        compiler = FaultTolerantCompiler(config)
        again = compiler.compile(circuit)
        assert by_name.fingerprint() == again.fingerprint()


class TestBalancedStrategy:
    @pytest.fixture(scope="class")
    def tracked_pair(self):
        """The fast-matrix case where balanced beats default."""
        circuit = load_benchmark("ising_2d_4x4")
        results = {}
        for strategy in ("default", "balanced"):
            config = CompilerConfig(
                routing_paths=4, num_factories=2, strategy=strategy
            )
            result = FaultTolerantCompiler(config).compile(circuit)
            raise_if_invalid(
                validate_result(result, circuit, config, label=strategy)
            )
            results[strategy] = result
        return results

    def test_replay_valid_and_distinct(self, tracked_pair):
        default, balanced = tracked_pair["default"], tracked_pair["balanced"]
        # the strategies genuinely diverge on this case...
        assert balanced.fingerprint() != default.fingerprint()
        # ...and balanced wins on schedule quality (both are replay-valid
        # already, via the fixture)
        assert balanced.execution_time <= default.execution_time
        assert (
            balanced.stats["evictions"] < default.stats["evictions"]
            or balanced.execution_time < default.execution_time
        )

    def test_deterministic(self, tracked_pair):
        circuit = load_benchmark("ising_2d_4x4")
        config = CompilerConfig(routing_paths=4, num_factories=2, strategy="balanced")
        again = FaultTolerantCompiler(config).compile(circuit)
        assert again.fingerprint() == tracked_pair["balanced"].fingerprint()

    def test_move_ledger_reported(self, tracked_pair):
        aux = tracked_pair["balanced"].aux_stats
        assert aux["strategy_max_qubit_moves"] >= 1
        assert aux["strategy_moved_qubits"] >= 1
        # the default strategy does not track moves
        assert "strategy_max_qubit_moves" not in tracked_pair["default"].aux_stats


class TestCnotPreference:
    def _tie_grid(self):
        """Control and target each exactly one move from a ready diagonal:
        control (1,1) -> (1,2) or target (2,3) -> (2,2)."""
        grid = Grid(5, 5)
        grid.place(0, (1, 1))  # control
        grid.place(1, (2, 3))  # target
        return grid

    def test_default_tie_break_moves_target(self):
        plan = plan_cnot_alignment(self._tie_grid(), 0, 1)
        assert plan.num_moves == 1
        assert plan.moves[0][0] == 1

    def test_prefer_none_matches_omitted(self):
        a = plan_cnot_alignment(self._tie_grid(), 0, 1)
        b = plan_cnot_alignment(self._tie_grid(), 0, 1, prefer=None)
        assert a == b

    def test_prefer_control_flips_the_tie(self):
        plan = plan_cnot_alignment(self._tie_grid(), 0, 1, prefer="control")
        assert plan.num_moves == 1
        assert plan.moves[0][0] == 0

    def test_preference_never_beats_a_cheaper_plan(self):
        # Block the control's one-hop landing cell: its plan now needs a
        # displacement, so the 1-move target plan must win even under a
        # control preference.
        grid = self._tie_grid()
        grid.place(4, (1, 2))
        plan = plan_cnot_alignment(grid, 0, 1, prefer="control")
        assert plan.num_moves == 1
        assert plan.moves[0][0] == 1


class TestRestoreCycleBreaker:
    def test_breaker_counts_and_stays_valid(self, monkeypatch):
        """With the limit floored, the storm case still replay-validates
        and the breaks are visible in aux stats."""
        monkeypatch.setattr(LatticeSurgeryScheduler, "RESTORE_CYCLE_LIMIT", 1)
        circuit = load_benchmark("ising_2d_4x4")
        config = CompilerConfig(routing_paths=3, num_factories=1)
        result = FaultTolerantCompiler(config).compile(circuit)
        assert result.aux_stats["restore_cycle_breaks"] > 0
        raise_if_invalid(
            validate_result(result, circuit, config, label="cycle-break")
        )

    def test_aux_stats_survive_serialization(self):
        from repro.compiler.result import CompilationResult

        result = compile_circuit(load_benchmark("ising_2d_4x4"), routing_paths=3)
        assert result.aux_stats["restores"] > 0
        rebuilt = CompilationResult.from_dict(result.to_dict())
        assert rebuilt.aux_stats == result.aux_stats
        # diagnostics never leak into the behavioural fingerprint
        assert "restores" not in result.fingerprint()["stats"]


class TestQualityBench:
    def test_smoke_run_scores_every_strategy(self):
        report = run_quality_bench(
            fast=True, workloads=["ising_2d_2x2"], validate=True
        )
        assert set(report.cases) == {"ising_2d_2x2/r3/f1"}
        rows = report.cases["ising_2d_2x2/r3/f1"]
        assert set(rows) == set(STRATEGY_NAMES)
        for row in rows.values():
            assert row["quality"] >= 1.0
            assert row["lower_bound"] > 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            run_quality_bench(fast=True, strategies=["greedy"])

    def test_gate_is_one_sided(self):
        baseline = {
            "cases": {
                "a/r3/f1": {
                    "default": {"quality": 1.5, "makespan": 150.0},
                    "balanced": {"quality": 1.4, "makespan": 140.0},
                }
            }
        }
        current = QualityReport(
            cases={
                "a/r3/f1": {
                    # improvement: passes
                    "default": {"quality": 1.2, "makespan": 120.0},
                    # regression: fails
                    "balanced": {"quality": 1.6, "makespan": 160.0},
                },
                # case missing from the baseline: never gates
                "b/r3/f1": {"default": {"quality": 9.9, "makespan": 990.0}},
            }
        )
        lines = quality_regressions(baseline, current)
        assert len(lines) == 1
        assert "a/r3/f1/balanced" in lines[0]
