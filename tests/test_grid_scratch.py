"""Occupancy-invariant and scratch-mode tests for the flat-array grid."""

import random

import pytest

from repro.arch.grid import CellRole, Grid, GridError


@pytest.fixture
def grid():
    return Grid(4, 5)


def _snapshot(grid):
    return (
        [grid.role((r, c)) for r in range(grid.rows) for c in range(grid.cols)],
        [grid.occupant((r, c)) for r in range(grid.rows) for c in range(grid.cols)],
        grid.placed_qubits(),
    )


class TestOccupancyInvariants:
    def test_place_rejects_out_of_bounds(self, grid):
        for pos in [(-1, 0), (0, -1), (4, 0), (0, 5), (99, 99)]:
            with pytest.raises(GridError):
                grid.place(1, pos)
        assert grid.placed_qubits() == {}

    def test_move_rejects_out_of_bounds(self, grid):
        grid.place(1, (0, 0))
        with pytest.raises(GridError):
            grid.move(1, (0, -1))
        assert grid.position_of(1) == (0, 0)

    def test_failed_place_leaves_grid_unchanged(self, grid):
        grid.place(1, (1, 1))
        before = _snapshot(grid)
        with pytest.raises(GridError):
            grid.place(2, (1, 1))  # occupied cell
        with pytest.raises(GridError):
            grid.place(1, (0, 0))  # qubit already placed
        assert _snapshot(grid) == before

    def test_failed_move_leaves_grid_unchanged(self, grid):
        grid.place(1, (0, 0))
        grid.place(2, (0, 1))
        before = _snapshot(grid)
        with pytest.raises(GridError):
            grid.move(1, (0, 1))
        with pytest.raises(GridError):
            grid.move(42, (3, 3))  # unplaced qubit
        assert _snapshot(grid) == before

    def test_remove_unplaced_qubit_rejected(self, grid):
        with pytest.raises(GridError):
            grid.remove(7)

    def test_place_after_remove_is_clean(self, grid):
        grid.place(1, (2, 2))
        assert grid.remove(1) == (2, 2)
        grid.place(1, (3, 3))  # same id may be placed again
        assert grid.position_of(1) == (3, 3)
        assert not grid.is_occupied((2, 2))

    def test_occupancy_maps_stay_consistent(self, grid):
        rng = random.Random(7)
        for qubit in range(8):
            grid.place(qubit, (qubit // 5, qubit % 5))
        for _ in range(200):
            qubit = rng.randrange(8)
            dest = (rng.randrange(4), rng.randrange(5))
            try:
                grid.move(qubit, dest)
            except GridError:
                pass
            # forward and reverse maps must agree after every op
            for q, pos in grid.placed_qubits().items():
                assert grid.occupant(pos) == q

    def test_epoch_increments_on_every_mutation(self, grid):
        e0 = grid.epoch
        grid.place(1, (0, 0))
        e1 = grid.epoch
        grid.move(1, (0, 1))
        e2 = grid.epoch
        grid.remove(1)
        e3 = grid.epoch
        grid.set_role((3, 3), CellRole.DATA)
        e4 = grid.epoch
        assert e0 < e1 < e2 < e3 < e4


class TestScratchMode:
    def test_scratch_rolls_back_all_mutation_kinds(self, grid):
        grid.place(1, (0, 0))
        grid.place(2, (1, 1))
        before = _snapshot(grid)
        epoch = grid.epoch
        with grid.scratch() as scratch:
            scratch.move(1, (0, 1))
            scratch.place(3, (2, 2))
            scratch.remove(2)
            scratch.set_role((3, 4), CellRole.PORT)
            assert scratch.position_of(1) == (0, 1)
        assert _snapshot(grid) == before
        assert grid.epoch == epoch

    def test_scratch_rolls_back_on_exception(self, grid):
        grid.place(1, (0, 0))
        before = _snapshot(grid)
        with pytest.raises(RuntimeError):
            with grid.scratch() as scratch:
                scratch.move(1, (2, 2))
                raise RuntimeError("planning failed")
        assert _snapshot(grid) == before

    def test_nested_scratch_blocks(self, grid):
        grid.place(1, (0, 0))
        with grid.scratch() as outer:
            outer.move(1, (0, 1))
            with outer.scratch() as inner:
                inner.move(1, (0, 2))
                assert inner.position_of(1) == (0, 2)
            assert outer.position_of(1) == (0, 1)  # inner undone only
        assert grid.position_of(1) == (0, 0)

    def test_scratch_equivalent_to_clone_for_planning(self, grid):
        """A scratch walk sees exactly the state a clone walk would."""
        rng = random.Random(3)
        for qubit in range(6):
            grid.place(qubit, (qubit // 5, qubit % 5))
        moves = []
        clone = grid.clone()
        with grid.scratch() as scratch:
            for _ in range(50):
                qubit = rng.randrange(6)
                dest = (rng.randrange(4), rng.randrange(5))
                try:
                    origin = scratch.position_of(qubit)
                    scratch.move(qubit, dest)
                    moves.append((qubit, origin, dest))
                except GridError:
                    continue
            scratch_state = _snapshot(scratch)
        # replay the recorded moves on the clone: states must match
        for qubit, origin, dest in moves:
            assert clone.position_of(qubit) == origin
            clone.move(qubit, dest)
        assert _snapshot(clone) == scratch_state
        # and the real grid is untouched
        assert _snapshot(grid) == _snapshot(grid.clone())

    def test_rollback_restores_interleaved_chain_moves(self, grid):
        # A chain push moves several qubits through the same cells; the
        # undo log must restore them in exact reverse order.
        for col in range(4):
            grid.place(col, (0, col))
        before = _snapshot(grid)
        with grid.scratch() as scratch:
            for col in reversed(range(4)):
                scratch.move(col, (0, col + 1))
            for col in range(4):
                scratch.move(col, (0, col))
        assert _snapshot(grid) == before


class TestCloneIndependence:
    def test_clone_shares_no_mutable_state(self, grid):
        grid.place(1, (0, 0))
        grid.set_role((2, 2), CellRole.DATA)
        dup = grid.clone()
        dup.move(1, (3, 3))
        dup.set_role((2, 2), CellRole.FACTORY)
        dup.place(2, (1, 1))
        assert grid.position_of(1) == (0, 0)
        assert grid.role((2, 2)) == CellRole.DATA
        assert not grid.is_occupied((1, 1))

    def test_clone_inside_scratch_sees_scratch_state(self, grid):
        grid.place(1, (0, 0))
        with grid.scratch() as scratch:
            scratch.move(1, (2, 2))
            dup = scratch.clone()
        assert dup.position_of(1) == (2, 2)
        assert grid.position_of(1) == (0, 0)
        dup.move(1, (3, 3))  # clone stays valid after rollback
        assert dup.position_of(1) == (3, 3)
