"""Experiment harness tests: every figure runs and shows the paper's shape."""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    fig9,
    fig11,
    fig13,
    fig14,
    fig15,
    headline,
    table1,
)
from repro.metrics.report import Table


class TestTable1:
    def test_all_rows_match_paper(self):
        table = table1.run()
        assert table.column("matches_paper") == ["yes"] * 6


class TestFig8:
    def test_overheads_are_small(self):
        table = ALL_EXPERIMENTS["fig8"](True)
        for row in table.rows:
            if row["lower_bound_d"]:
                assert row["exec_vs_bound"] < 2.0
                assert row["unit_vs_bound"] < 2.0
                assert row["unit_vs_bound"] <= row["exec_vs_bound"] + 0.25


class TestFig9:
    @pytest.fixture(scope="class")
    def table(self):
        return fig9.run(fast=True, models=["ising"])

    def test_more_factories_more_qubits(self, table):
        rows = [r for r in table.rows if r["routing_paths"] == 4]
        qubits = [r["total_qubits"] for r in sorted(rows, key=lambda r: r["factories"])]
        assert qubits == sorted(qubits)

    def test_time_never_below_bound_scaling(self, table):
        for row in table.rows:
            assert row["exec_time_d"] > 0

    def test_optimum_shifts_right_with_more_paths(self, table):
        best = fig9.optimal_factories(table)
        small_r = best[("ising", 3)]
        big_r = best[("ising", 10)]
        assert big_r >= small_r


class TestFig11:
    @pytest.fixture(scope="class")
    def table(self):
        return fig11.run(fast=True, models=["ising"])

    def test_our_layouts_use_fewer_qubits_than_blocks(self, table):
        for size in {row["size"] for row in table.rows}:
            ours = [r["qubits"] for r in table.rows
                    if r["size"] == size and str(r["scheme"]).startswith("ours")]
            blocks = [r["qubits"] for r in table.rows
                      if r["size"] == size and "litinski" in str(r["scheme"])]
            assert min(ours) < min(blocks)

    def test_blocks_sit_at_bound(self, table):
        for row in table.rows:
            if "litinski" in str(row["scheme"]):
                assert row["time_vs_bound"] == pytest.approx(1.0)

    def test_qubit_reduction_headline(self, table):
        reduction = fig11.qubit_reduction_at_best_r(table, "ising", 16)
        assert reduction > 0.25


class TestFig12:
    def test_qubits_grow_with_r(self):
        table = ALL_EXPERIMENTS["fig12"](True)
        ours = [r for r in table.rows
                if r["model"] == "ising" and str(r["scheme"]).startswith("ours")]
        ours.sort(key=lambda r: r["routing_paths"])
        qubits = [r["qubits"] for r in ours]
        assert qubits == sorted(qubits)


class TestFig13:
    @pytest.fixture(scope="class")
    def table(self):
        return fig13.run(fast=True)

    def test_both_schemes_per_benchmark(self, table):
        benchmarks = {row["benchmark"] for row in table.rows}
        for name in benchmarks:
            schemes = [r["scheme"] for r in table.rows if r["benchmark"] == name]
            assert len(schemes) == 2

    def test_we_win_on_average(self, table):
        import math

        log_sum = 0.0
        count = 0
        benchmarks = {row["benchmark"] for row in table.rows}
        for name in benchmarks:
            ours = next(r for r in table.rows
                        if r["benchmark"] == name and str(r["scheme"]).startswith("ours"))
            lsqca = next(r for r in table.rows
                         if r["benchmark"] == name and "lsqca" in str(r["scheme"]))
            log_sum += math.log(lsqca["spacetime_volume"] / ours["spacetime_volume"])
            count += 1
        assert math.exp(log_sum / count) > 1.0


class TestFig14:
    def test_line_sam_flat_ours_drops(self):
        table = fig14.run(fast=True, models=["ising"])
        ours = sorted(
            (r for r in table.rows if r["scheme"] == "ours"),
            key=lambda r: r["factories"],
        )
        lsqca = sorted(
            (r for r in table.rows if "lsqca" in str(r["scheme"])),
            key=lambda r: r["factories"],
        )
        ours_gain = ours[0]["cpi"] / ours[-1]["cpi"]
        lsqca_gain = lsqca[0]["cpi"] / lsqca[-1]["cpi"]
        assert ours_gain > lsqca_gain

    def test_distill_sweep_monotone_for_ours(self):
        table = fig14.run_distill_sweep(fast=True)
        ours = [r for r in table.rows if r["scheme"] == "ours"]
        ours.sort(key=lambda r: -r["distill_time_d"])
        assert ours[-1]["cpi"] <= ours[0]["cpi"]


class TestFig15:
    @pytest.fixture(scope="class")
    def table(self):
        return fig15.run(fast=True, models=["ising"])

    def test_dascot_wins_at_unlimited(self, table):
        unlimited = [r for r in table.rows if r["factories"] is None]
        dascot = next(r for r in unlimited if r["scheme"] == "dascot")
        ours = [r for r in unlimited if str(r["scheme"]).startswith("ours")]
        assert all(dascot["spacetime_per_op"] < r["spacetime_per_op"] for r in ours)

    def test_dascot_loses_at_one_factory(self, table):
        ratio = fig15.dascot_ratio_at_one_factory(table, "ising")
        assert ratio > 1.2


class TestHeadline:
    def test_produces_four_claims(self):
        table = headline.run(fast=True)
        assert len(table.rows) == 4
        assert all(row["measured"] for row in table.rows)


class TestHarness:
    def test_every_experiment_returns_table(self):
        for name, run in ALL_EXPERIMENTS.items():
            result = run(True)
            assert isinstance(result, Table), name
            assert result.rows, name
