"""Tests for static circuit analyses."""

import pytest

from repro.ir.circuit import Circuit, bell_pair, ghz_chain
from repro.ir.properties import (
    gate_layers_histogram,
    instruction_mix,
    interaction_graph,
    interaction_locality,
    profile,
)
from repro.workloads import ising_2d


class TestProfile:
    def test_basic_fields(self):
        p = profile(ising_2d(2))
        assert p.num_qubits == 4
        assert p.num_gates == len(ising_2d(2))
        assert p.t_count == ising_2d(2).count("rz")
        assert p.depth > 0
        assert p.parallelism == pytest.approx(p.num_gates / p.depth)

    def test_t_per_rotation_scaling(self):
        base = profile(ising_2d(2))
        scaled = profile(ising_2d(2), t_per_rotation=4)
        assert scaled.t_count == 4 * base.t_count


class TestInteractionGraph:
    def test_bell(self):
        assert interaction_graph(bell_pair()) == {(0, 1): 1}

    def test_weights_accumulate(self):
        qc = Circuit(2).cx(0, 1).cx(1, 0)
        assert interaction_graph(qc) == {(0, 1): 2}

    def test_chain_locality(self):
        # ghz chain couples consecutive qubits only -> fully 1D
        graph = interaction_graph(ghz_chain(8))
        assert all(b - a == 1 for (a, b) in graph)

    def test_2d_locality_metric(self):
        assert interaction_locality(ising_2d(4), 4) == 1.0
        # a chain on a 4-wide grid labelling has non-local row wraps
        assert interaction_locality(ghz_chain(16), 4) < 1.0


class TestInstructionMix:
    def test_fractions_sum_sensibly(self):
        mix = instruction_mix(ising_2d(2))
        assert 0 < mix["t_fraction"] < 1
        assert 0 < mix["two_qubit_fraction"] < 1
        assert mix["clifford_fraction"] >= 0

    def test_clifford_only(self):
        mix = instruction_mix(Circuit(2).h(0).cx(0, 1))
        assert mix["t_fraction"] == 0.0


class TestLayersHistogram:
    def test_total_matches_gate_count(self):
        qc = ising_2d(2)
        histogram = gate_layers_histogram(qc)
        assert sum(histogram) == len(qc)

    def test_parallel_first_layer(self):
        qc = Circuit(4).h(0).h(1).h(2).cx(0, 1)
        assert gate_layers_histogram(qc)[0] == 3
