"""Service error paths under concurrency.

Three failure modes the single-connection tests in ``test_service.py``
cannot exercise: a thundering herd of clients shed with ``overloaded``,
a graceful drain landing in the middle of an in-flight request, and a
client speaking garbage at the newline-delimited protocol — each must
leave the server alive and answering for everyone else.
"""

import json
import socket
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import Client, ServiceError, ServiceThread, protocol

WORKLOADS = [
    "ising_2d_2x2",
    "heisenberg_2d_2x2",
    "fermi_hubbard_2d_2x2",
    "ising_2d_4x4",
]


class TestConcurrentOverload:
    def test_herd_of_distinct_jobs_all_shed_and_server_survives(self):
        # max_pending=0 sheds every cold compile deterministically, so a
        # concurrent burst must produce exactly one structured `overloaded`
        # error per request — never a hung client, never a dead server
        with ServiceThread(jobs=1, max_pending=0) as thread:
            host, port = thread.address

            def hit(workload: str) -> str:
                with Client(host, port) as client:
                    try:
                        client.compile(workload=workload, routing_paths=3)
                        return "ok"
                    except ServiceError as exc:
                        return exc.code

            with ThreadPoolExecutor(max_workers=len(WORKLOADS)) as pool:
                outcomes = list(pool.map(hit, WORKLOADS))

            assert outcomes == [protocol.E_OVERLOADED] * len(WORKLOADS)
            with Client(host, port) as client:
                assert client.ping()["ok"]
                stats = client.stats()
        assert stats["compile"]["overloaded"] == len(WORKLOADS)
        assert stats["compile"]["compiled"] == 0

    def test_shed_clients_can_retry_once_capacity_frees(self):
        # one slot: a request occupying it makes concurrent distinct jobs
        # shed; afterwards the same clients retry successfully
        with ServiceThread(jobs=1, max_pending=1) as thread:
            host, port = thread.address

            def hit(workload: str) -> str:
                with Client(host, port) as client:
                    try:
                        client.compile(workload=workload, routing_paths=3)
                        return "ok"
                    except ServiceError as exc:
                        return exc.code

            with ThreadPoolExecutor(max_workers=len(WORKLOADS)) as pool:
                first = list(pool.map(hit, WORKLOADS))
            # every outcome is a clean verdict, and nothing else leaked
            assert set(first) <= {"ok", protocol.E_OVERLOADED}
            assert "ok" in first  # the slot holder itself succeeded

            # sequential retries must all land now (and warm hits bypass
            # the pending bound entirely)
            retries = [hit(workload) for workload in WORKLOADS]
            assert retries == ["ok"] * len(WORKLOADS)


class TestDrainMidRequest:
    def test_inflight_request_completes_across_shutdown(self):
        thread = ServiceThread(jobs=1).start()
        host, port = thread.address
        with Client(host, port, timeout=120.0) as busy:
            with ThreadPoolExecutor(max_workers=1) as pool:
                future = pool.submit(
                    busy.compile, workload="ising_2d_4x4", routing_paths=4
                )
                # wait for an observable signal that the request is in
                # flight (a sleep would race the server's frame read and
                # flake under CI load): `pending` counts distinct compiles
                # the broker has dispatched but not finished
                with Client(host, port) as watcher:
                    deadline = time.time() + 30
                    while time.time() < deadline:
                        if future.done() or watcher.stats()["pending"] >= 1:
                            break
                        time.sleep(0.01)
                    else:
                        raise AssertionError("compile never became visible")
                    watcher.shutdown()
                reply = future.result(timeout=90)
        # the drain waited for the in-flight compile instead of killing it
        assert reply.fingerprint["makespan"] > 0
        thread._thread.join(timeout=60)
        assert not thread._thread.is_alive()
        # and the listening socket is really gone
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2).close()


class TestMalformedFrames:
    def _raw(self, address, payload: bytes) -> bytes:
        with socket.create_connection(address, timeout=30) as sock:
            sock.sendall(payload)
            reader = sock.makefile("rb")
            return reader.readline()

    def test_garbage_line_is_structured_bad_request(self):
        with ServiceThread(jobs=1) as thread:
            line = self._raw(thread.address, b"this is not json\n")
            response = json.loads(line)
            assert response["ok"] is False
            assert response["error"]["code"] == protocol.E_BAD_REQUEST

            # non-object JSON is rejected the same way
            line = self._raw(thread.address, b"[1, 2, 3]\n")
            assert (
                json.loads(line)["error"]["code"] == protocol.E_BAD_REQUEST
            )

            # the server is unharmed for well-behaved clients
            with Client(*thread.address) as client:
                assert client.ping()["ok"]

    def test_half_frame_then_disconnect_leaves_server_alive(self):
        with ServiceThread(jobs=1) as thread:
            with socket.create_connection(thread.address, timeout=30) as sock:
                sock.sendall(b'{"op": "ping"')  # no newline, no close brace
            # abrupt disconnect mid-frame must not take the handler down
            with Client(*thread.address) as client:
                assert client.ping()["ok"]

    def test_oversized_line_is_rejected_without_memory_blowup(self):
        with ServiceThread(jobs=1) as thread:
            blob = b"x" * (protocol.MAX_LINE_BYTES + 64)
            with socket.create_connection(thread.address, timeout=60) as sock:
                sock.sendall(blob + b"\n")
                reader = sock.makefile("rb")
                line = reader.readline()
                response = json.loads(line)
                assert response["ok"] is False
                assert response["error"]["code"] == protocol.E_BAD_REQUEST
                # the server hangs up on the abusive connection...
                assert reader.readline() == b""
            # ...but keeps serving everyone else
            with Client(*thread.address) as client:
                assert client.ping()["ok"]

    def test_binary_junk_across_many_connections(self):
        with ServiceThread(jobs=1) as thread:
            for payload in (b"\x00\xff\xfe\n", b"\n", b'"just a string"\n'):
                line = self._raw(thread.address, payload)
                if line:  # empty line = server hung up, also acceptable
                    assert json.loads(line)["ok"] is False
            with Client(*thread.address) as client:
                assert client.ping()["ok"]
