"""Unit tests for gate-dependent CNOT alignment."""

import pytest

from repro.arch.grid import Grid
from repro.arch.layout import build_layout
from repro.routing.neighbor_moves import (
    AlignmentError,
    apply_moves,
    cnot_ancilla_cell,
    is_cnot_ready,
    plan_cnot_alignment,
)


class TestPlacementPredicate:
    def test_ancilla_cell_orientation(self):
        # control (1,1), target (2,2): ancilla shares control's column and
        # target's row -> (2,1).
        assert cnot_ancilla_cell((1, 1), (2, 2)) == (2, 1)

    def test_ready_configuration(self):
        grid = Grid(4, 4)
        grid.place(0, (1, 1))
        grid.place(1, (2, 2))
        assert is_cnot_ready(grid, (1, 1), (2, 2))

    def test_not_ready_when_adjacent(self):
        grid = Grid(4, 4)
        grid.place(0, (1, 1))
        grid.place(1, (1, 2))
        assert not is_cnot_ready(grid, (1, 1), (1, 2))

    def test_not_ready_when_ancilla_occupied(self):
        grid = Grid(4, 4)
        grid.place(0, (1, 1))
        grid.place(1, (2, 2))
        grid.place(2, (2, 1))
        assert not is_cnot_ready(grid, (1, 1), (2, 2))


class TestAlignment:
    def test_already_aligned_needs_no_moves(self):
        grid = Grid(4, 4)
        grid.place(0, (1, 1))
        grid.place(1, (2, 2))
        plan = plan_cnot_alignment(grid, 0, 1)
        assert plan.num_moves == 0
        assert plan.ancilla == (2, 1)

    def test_adjacent_pair_needs_one_move(self):
        grid = Grid(4, 4)
        grid.place(0, (1, 1))
        grid.place(1, (1, 2))
        plan = plan_cnot_alignment(grid, 0, 1)
        assert 1 <= plan.num_moves <= 2

    def test_plan_produces_valid_configuration(self):
        grid = Grid(6, 6)
        grid.place(0, (1, 1))
        grid.place(1, (4, 4))
        plan = plan_cnot_alignment(grid, 0, 1)
        apply_moves(grid, plan.moves)
        assert grid.position_of(0) == plan.control_pos
        assert grid.position_of(1) == plan.target_pos
        assert is_cnot_ready(grid, plan.control_pos, plan.target_pos)
        assert plan.ancilla == cnot_ancilla_cell(plan.control_pos, plan.target_pos)

    def test_dense_block_alignment(self):
        layout = build_layout(16, 4)  # solid 4x4 block, bus ring
        grid = layout.grid.clone()
        for q, pos in enumerate(layout.data_slots):
            grid.place(q, pos)
        plan = plan_cnot_alignment(grid, 5, 6)  # interior horizontal pair
        apply_moves(grid, plan.moves)
        assert is_cnot_ready(grid, plan.control_pos, plan.target_pos)

    def test_all_nn_pairs_alignable_on_r3(self):
        layout = build_layout(16, 3)
        for a, b in [(0, 1), (5, 6), (10, 14), (14, 15), (2, 6)]:
            grid = layout.grid.clone()
            for q, pos in enumerate(layout.data_slots):
                grid.place(q, pos)
            plan = plan_cnot_alignment(grid, a, b)
            apply_moves(grid, plan.moves)
            assert is_cnot_ready(grid, plan.control_pos, plan.target_pos), (a, b)

    def test_stale_moves_rejected(self):
        grid = Grid(4, 4)
        grid.place(0, (1, 1))
        grid.place(1, (1, 2))
        plan = plan_cnot_alignment(grid, 0, 1)
        if plan.moves:
            mover = plan.moves[0][0]
            other = 1 - mover
            del other
            grid.move(mover, (3, 3))
            with pytest.raises(AlignmentError):
                apply_moves(grid, plan.moves)

    def test_drift_goal_biases_destination(self):
        grid = Grid(6, 6)
        grid.place(0, (2, 2))
        grid.place(1, (2, 3))
        # Target's next partner sits far below: prefer a low destination.
        plan = plan_cnot_alignment(grid, 0, 1, drift_goals=(None, (5, 3)))
        assert plan.target_pos[0] >= 2
