"""Crash-safety property tests for the gateway job store.

Every case drives :class:`JobStore` on a fake clock with the
``faults.before_commit`` hook standing in for a process kill between the
write and the ack.  The property under test: after any simulated crash,
reopening the SQLite file shows each job either in its previous state or
its next state — never torn (a ``done`` row always carries its result, a
``failed`` row its error).  No real processes, no sleeps.
"""

import random

import pytest

from repro.gateway import JobStore, StoreCrash
from repro.gateway.jobstore import DISPATCHED, DONE, FAILED, QUEUED


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        self.now += 1.0
        return self.now


class CrashOn:
    """Fault hook that dies before the commit of selected operations."""

    def __init__(self, *ops, after=0):
        self.ops = set(ops)
        self.after = after  # let this many matching commits through first
        self.seen = 0

    def before_commit(self, op, key):
        if op in self.ops:
            self.seen += 1
            if self.seen > self.after:
                raise StoreCrash(f"killed before {op}({key}) committed")


def reopen(store, path, clock):
    """Simulate the restart: drop the handle, open the same file fresh."""
    store.close()
    return JobStore(path, clock=clock)


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "jobs.sqlite")


REQUEST = {"op": "compile", "workload": "ising_2d_2x2", "config": {}}


class TestLifecycle:
    def test_full_transition_chain(self, db):
        clock = FakeClock()
        store = JobStore(db, clock=clock)
        record = store.submit("k1", "alice", REQUEST)
        assert record.status == QUEUED
        assert record.request == REQUEST
        assert not record.terminal

        claimed = store.claim("k1")
        assert claimed.status == DISPATCHED
        assert claimed.attempts == 1

        store.complete("k1", {"fingerprint": "abc", "total_time": 12})
        final = store.get("k1")
        assert final.status == DONE
        assert final.terminal
        assert final.result == {"fingerprint": "abc", "total_time": 12}
        assert final.error is None
        assert "result" in final.public()
        store.close()

    def test_submit_is_idempotent_per_state(self, db):
        clock = FakeClock()
        store = JobStore(db, clock=clock)
        store.submit("k1", "alice", REQUEST)
        # re-submitting a queued job does not reset it
        again = store.submit("k1", "alice", REQUEST)
        assert again.status == QUEUED
        store.claim("k1")
        # ...nor a dispatched one (the caller piggybacks on the dispatch)
        again = store.submit("k1", "alice", REQUEST)
        assert again.status == DISPATCHED
        assert again.attempts == 1
        store.complete("k1", {"fingerprint": "abc"})
        # a done job is served back untouched: the zero-compile path
        again = store.submit("k1", "alice", REQUEST)
        assert again.status == DONE
        assert again.result == {"fingerprint": "abc"}
        # but the tenant ledger still counts every submission
        assert store.tenants()["alice"]["submitted"] == 4
        store.close()

    def test_failed_key_requeues_on_resubmit(self, db):
        clock = FakeClock()
        store = JobStore(db, clock=clock)
        store.submit("k1", "alice", REQUEST)
        store.claim("k1")
        store.fail("k1", {"code": "no-shards", "message": "all down"})
        assert store.get("k1").status == FAILED
        revived = store.submit("k1", "alice", REQUEST)
        assert revived.status == QUEUED
        assert revived.error is None
        assert revived.attempts == 0
        store.close()

    def test_claim_refuses_missing_and_terminal(self, db):
        clock = FakeClock()
        store = JobStore(db, clock=clock)
        assert store.claim("ghost") is None
        store.submit("k1", "alice", REQUEST)
        store.claim("k1")
        store.complete("k1", {"fingerprint": "abc"})
        assert store.claim("k1") is None
        store.close()


class TestCrashSafety:
    def test_crash_before_submit_commit_leaves_no_row(self, db):
        clock = FakeClock()
        store = JobStore(db, clock=clock, faults=CrashOn("submit"))
        with pytest.raises(StoreCrash):
            store.submit("k1", "alice", REQUEST)
        store = reopen(store, db, clock)
        # absent, not torn: the job never happened
        assert store.get("k1") is None
        assert store.tenants() == {}
        store.close()

    def test_crash_before_complete_commit_keeps_dispatched(self, db):
        clock = FakeClock()
        store = JobStore(db, clock=clock, faults=CrashOn("complete"))
        store.submit("k1", "alice", REQUEST)
        store.claim("k1")
        with pytest.raises(StoreCrash):
            store.complete("k1", {"fingerprint": "abc"})
        store = reopen(store, db, clock)
        record = store.get("k1")
        # previous state, result-free — never a done row missing its result
        assert record.status == DISPATCHED
        assert record.result is None
        # and the restart replay set still contains it
        assert [r.key for r in store.pending()] == ["k1"]
        store.close()

    def test_crash_before_fail_commit_keeps_dispatched(self, db):
        clock = FakeClock()
        store = JobStore(db, clock=clock, faults=CrashOn("fail"))
        store.submit("k1", "alice", REQUEST)
        store.claim("k1")
        with pytest.raises(StoreCrash):
            store.fail("k1", {"code": "internal", "message": "boom"})
        store = reopen(store, db, clock)
        record = store.get("k1")
        assert record.status == DISPATCHED
        assert record.error is None
        store.close()

    def test_randomized_crash_schedule_never_tears(self, db):
        """Drive a seeded schedule of transitions, crashing a random
        subset; after every crash, reopen and check the invariant."""
        rng = random.Random(0)
        clock = FakeClock()
        store = JobStore(db, clock=clock)
        shadow = {}  # key -> last *committed* status we observed
        for step in range(120):
            key = f"k{rng.randrange(8)}"
            op = rng.choice(("submit", "claim", "complete", "fail"))
            crash = rng.random() < 0.3
            store._faults = CrashOn(op) if crash else None
            try:
                if op == "submit":
                    store.submit(key, "t", REQUEST)
                elif op == "claim":
                    store.claim(key)
                elif op == "complete":
                    store.complete(key, {"fingerprint": f"f{step}"})
                else:
                    store.fail(key, {"code": "internal", "message": "x"})
            except StoreCrash:
                store = reopen(store, db, clock)
            # the invariant: no torn rows, ever
            for record in map(store.get, shadow):
                if record is None:
                    continue
                if record.status == DONE:
                    assert record.result is not None
                if record.status == FAILED:
                    assert record.error is not None
            record = store.get(key)
            if record is not None:
                shadow[key] = record.status
        store.close()


class TestRestartRecovery:
    def test_pending_replays_oldest_first(self, db):
        clock = FakeClock()
        store = JobStore(db, clock=clock)
        store.submit("old", "t", REQUEST)
        store.submit("mid", "t", REQUEST)
        store.claim("mid")
        store.submit("new", "t", REQUEST)
        store.submit("finished", "t", REQUEST)
        store.claim("finished")
        store.complete("finished", {"fingerprint": "abc"})
        store = reopen(store, db, clock)
        assert [r.key for r in store.pending()] == ["old", "mid", "new"]
        # a dispatched orphan can be re-claimed by the new process
        assert store.claim("mid").attempts == 2
        store.close()

    def test_completed_jobs_survive_restart_with_zero_work(self, db):
        clock = FakeClock()
        store = JobStore(db, clock=clock)
        store.submit("k1", "alice", REQUEST)
        store.claim("k1")
        store.complete("k1", {"fingerprint": "abc"})
        store = reopen(store, db, clock)
        # resubmission after restart: answered terminal from the file,
        # nothing pending, nothing claimable — zero compilations
        record = store.submit("k1", "alice", REQUEST)
        assert record.status == DONE
        assert record.result == {"fingerprint": "abc"}
        assert store.pending() == []
        assert store.claim("k1") is None
        counts = store.counts()
        assert counts[DONE] == 1 and counts[QUEUED] == 0
        store.close()

    def test_tenant_ledger_survives_restart(self, db):
        clock = FakeClock()
        store = JobStore(db, clock=clock)
        store.submit("k1", "alice", REQUEST)
        store.claim("k1")
        store.complete("k1", {"fingerprint": "abc"})
        store.submit("k2", "bob", REQUEST)
        store = reopen(store, db, clock)
        ledger = store.tenants()
        assert ledger["alice"]["submitted"] == 1
        assert ledger["alice"]["completed"] == 1
        assert ledger["bob"]["completed"] == 0
        assert ledger["bob"]["first_seen"] <= ledger["bob"]["last_seen"]
        store.close()
