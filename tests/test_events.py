"""Unit tests for schedule data structures."""

import pytest

from repro.scheduling.events import Schedule, ScheduledOp


def op(uid, kind="gate", name="h", qubits=(0,), cells=(), start=0.0,
       duration=1.0, min_start=0.0):
    return ScheduledOp(
        uid=uid, kind=kind, name=name, qubits=qubits, cells=cells,
        start=start, duration=duration, min_start=min_start,
    )


class TestScheduledOp:
    def test_end(self):
        assert op(0, start=2.0, duration=3.0).end == 5.0

    def test_shifted(self):
        shifted = op(0, start=2.0).shifted(7.0)
        assert shifted.start == 7.0
        assert shifted.uid == 0

    def test_resource_cells_move_locks_destination_only(self):
        move = op(0, kind="move", name="move", cells=((0, 0), (0, 1)))
        assert move.resource_cells() == ((0, 1),)

    def test_resource_cells_gate_locks_all(self):
        gate = op(0, kind="gate", cells=((0, 0), (0, 1)))
        assert gate.resource_cells() == ((0, 0), (0, 1))

    def test_resource_cells_route_locks_pair(self):
        hop = op(0, kind="route", name="move", cells=((0, 0), (0, 1)))
        assert hop.resource_cells() == ((0, 0), (0, 1))


class TestSchedule:
    def test_makespan(self):
        schedule = Schedule([op(0, start=0, duration=2), op(1, start=5, duration=3)])
        assert schedule.makespan == 8.0

    def test_empty_makespan(self):
        assert Schedule().makespan == 0.0

    def test_move_counting(self):
        schedule = Schedule([
            op(0, kind="move", name="move"),
            op(1, kind="evict", name="move"),
            op(2, kind="restore", name="move"),
            op(3, kind="gate"),
        ])
        assert schedule.num_moves == 3
        assert schedule.num_gates == 1

    def test_histograms(self):
        schedule = Schedule([op(0), op(1, name="cx", qubits=(0, 1))])
        assert schedule.kind_histogram() == {"gate": 2}
        assert schedule.name_histogram() == {"h": 1, "cx": 1}

    def test_ops_for_qubit(self):
        schedule = Schedule([op(0, qubits=(0,)), op(1, qubits=(1,))])
        assert len(schedule.ops_for_qubit(0)) == 1

    def test_validate_accepts_sequential(self):
        schedule = Schedule([
            op(0, start=0, duration=2),
            op(1, start=2, duration=2),
        ])
        schedule.validate()

    def test_validate_rejects_overlap(self):
        schedule = Schedule([
            op(0, start=0, duration=5),
            op(1, start=2, duration=2),
        ])
        with pytest.raises(ValueError):
            schedule.validate()

    def test_busy_time(self):
        schedule = Schedule([op(0, duration=2), op(1, duration=3)])
        assert schedule.busy_time() == 5.0

    def test_timeline_text_truncates(self):
        schedule = Schedule([op(i) for i in range(50)])
        text = schedule.timeline_text(limit=10)
        assert "more ops" in text
