"""Crash-safety tests for the on-disk compile cache (repro.sweep.cache).

The cache must be an accelerator, never a liability: torn or tampered
entries are quarantined instead of served, injected I/O errors turn into
counted misses instead of request failures, and a failing store never
breaks the compile that tried to warm it.
"""

import json
import os

import pytest

from repro.compiler.config import CompilerConfig
from repro.compiler.pipeline import FaultTolerantCompiler
from repro.faultinject import ScriptedDiskFaults
from repro.sweep import job_key
from repro.sweep.cache import (
    QUARANTINE_DIR,
    CompileCache,
    FaultInjector,
    payload_checksum,
)
from repro.workloads import load_benchmark

WORKLOAD = "ising_2d_2x2"


@pytest.fixture(scope="module")
def compiled():
    """One real (circuit, config, key, result) tuple, compiled once."""
    circuit = load_benchmark(WORKLOAD)
    config = CompilerConfig(routing_paths=3)
    result = FaultTolerantCompiler(config).compile(circuit)
    return circuit, config, job_key(circuit, config), result


class TestRoundTrip:
    def test_store_then_load(self, tmp_path, compiled):
        _, _, key, result = compiled
        cache = CompileCache(tmp_path)
        cache.store(key, result)
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        assert cache.health() == {
            "hits": 1, "misses": 0, "stores": 1,
            "quarantined": 0, "read_errors": 0, "store_errors": 0,
        }

    def test_entry_carries_checksum(self, tmp_path, compiled):
        _, _, key, result = compiled
        cache = CompileCache(tmp_path)
        cache.store(key, result)
        data = json.loads((tmp_path / key[:2] / f"{key}.json").read_text())
        assert data["key"] == key
        assert data["checksum"] == payload_checksum(data["result"])

    def test_missing_entry_is_plain_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        assert cache.load("0" * 64) is None
        assert cache.misses == 1
        assert cache.read_errors == 0
        assert cache.quarantined == 0

    def test_no_tmp_droppings_after_store(self, tmp_path, compiled):
        _, _, key, result = compiled
        CompileCache(tmp_path).store(key, result)
        assert list(tmp_path.rglob("*.tmp")) == []


class TestQuarantine:
    def _stored(self, tmp_path, compiled):
        _, _, key, result = compiled
        cache = CompileCache(tmp_path)
        cache.store(key, result)
        return cache, key, tmp_path / key[:2] / f"{key}.json"

    def test_truncated_entry_quarantined(self, tmp_path, compiled):
        cache, key, path = self._stored(tmp_path, compiled)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        assert cache.load(key) is None
        assert cache.quarantined == 1
        assert not path.exists()
        assert (tmp_path / QUARANTINE_DIR / path.name).exists()
        # the corruption cannot be re-hit: next lookup is a clean miss
        assert cache.load(key) is None
        assert cache.quarantined == 1

    def test_checksum_mismatch_quarantined(self, tmp_path, compiled):
        cache, key, path = self._stored(tmp_path, compiled)
        data = json.loads(path.read_text())
        data["result"]["t_states"] = data["result"]["t_states"] + 1
        path.write_text(json.dumps(data))  # stale checksum now
        assert cache.load(key) is None
        assert cache.quarantined == 1

    def test_wrong_key_quarantined(self, tmp_path, compiled):
        cache, key, path = self._stored(tmp_path, compiled)
        data = json.loads(path.read_text())
        other = "f" * len(key)
        other_path = tmp_path / other[:2] / f"{other}.json"
        other_path.parent.mkdir(parents=True, exist_ok=True)
        other_path.write_text(json.dumps(data))  # right checksum, wrong address
        assert cache.load(other) is None
        assert cache.quarantined == 1

    def test_quarantined_entries_not_counted_as_cached(self, tmp_path, compiled):
        cache, key, path = self._stored(tmp_path, compiled)
        assert len(cache) == 1
        path.write_text("{")
        cache.load(key)
        assert cache.quarantined == 1
        assert len(cache) == 0


class TestFaultInjection:
    def test_injected_read_error_is_counted_miss(self, tmp_path, compiled):
        _, _, key, result = compiled
        faults = ScriptedDiskFaults()
        cache = CompileCache(tmp_path, faults=faults)
        cache.store(key, result)
        faults.arm(fail_reads=1)
        assert cache.load(key) is None
        assert cache.read_errors == 1
        assert cache.quarantined == 0  # the bytes on disk are fine
        # budget spent: the entry is served again
        assert cache.load(key) is not None

    def test_injected_write_error_is_swallowed(self, tmp_path, compiled):
        _, _, key, result = compiled
        faults = ScriptedDiskFaults()
        cache = CompileCache(tmp_path, faults=faults)
        faults.arm(fail_writes=1)
        cache.store(key, result)  # must not raise
        assert cache.store_errors == 1
        assert cache.stores == 0
        assert cache.load(key) is None  # nothing landed
        cache.store(key, result)  # budget spent: store works again
        assert cache.load(key) is not None

    def test_injected_truncation_quarantined_on_read(self, tmp_path, compiled):
        _, _, key, result = compiled
        faults = ScriptedDiskFaults()
        cache = CompileCache(tmp_path, faults=faults)
        faults.arm(truncate_writes=1)
        cache.store(key, result)
        assert faults.truncations == 1
        # an independent reader over the same directory refuses the entry
        reader = CompileCache(tmp_path)
        assert reader.load(key) is None
        assert reader.quarantined == 1

    def test_default_injector_is_transparent(self, tmp_path, compiled):
        _, _, key, result = compiled
        cache = CompileCache(tmp_path, faults=FaultInjector())
        cache.store(key, result)
        assert cache.load(key) is not None
