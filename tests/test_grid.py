"""Unit tests for the logical grid."""

import pytest

from repro.arch.grid import CellRole, Grid, GridError


@pytest.fixture
def grid():
    return Grid(4, 5)


class TestGeometry:
    def test_dimensions(self, grid):
        assert grid.num_cells == 20
        assert (3, 4) in grid
        assert (4, 0) not in grid

    def test_neighbors_interior(self, grid):
        assert set(grid.neighbors((1, 1))) == {(0, 1), (2, 1), (1, 0), (1, 2)}

    def test_neighbors_corner(self, grid):
        assert set(grid.neighbors((0, 0))) == {(0, 1), (1, 0)}

    def test_diagonal_neighbors(self, grid):
        assert set(grid.diagonal_neighbors((1, 1))) == {
            (0, 0), (0, 2), (2, 0), (2, 2)
        }

    def test_manhattan(self):
        assert Grid.manhattan((0, 0), (2, 3)) == 5

    def test_are_diagonal(self):
        assert Grid.are_diagonal((1, 1), (2, 2))
        assert not Grid.are_diagonal((1, 1), (1, 2))

    def test_between_diagonal(self):
        cells = Grid.between_diagonal((1, 1), (2, 2))
        assert set(cells) == {(1, 2), (2, 1)}

    def test_between_diagonal_rejects_adjacent(self):
        with pytest.raises(GridError):
            Grid.between_diagonal((1, 1), (1, 2))

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Grid(0, 3)


class TestOccupancy:
    def test_place_and_lookup(self, grid):
        grid.place(7, (1, 2))
        assert grid.occupant((1, 2)) == 7
        assert grid.position_of(7) == (1, 2)

    def test_double_place_rejected(self, grid):
        grid.place(7, (1, 2))
        with pytest.raises(GridError):
            grid.place(8, (1, 2))
        with pytest.raises(GridError):
            grid.place(7, (0, 0))

    def test_move(self, grid):
        grid.place(7, (1, 2))
        origin = grid.move(7, (1, 3))
        assert origin == (1, 2)
        assert grid.occupant((1, 2)) is None
        assert grid.position_of(7) == (1, 3)

    def test_move_onto_occupied_rejected(self, grid):
        grid.place(1, (0, 0))
        grid.place(2, (0, 1))
        with pytest.raises(GridError):
            grid.move(1, (0, 1))

    def test_remove(self, grid):
        grid.place(7, (1, 2))
        assert grid.remove(7) == (1, 2)
        assert not grid.is_occupied((1, 2))

    def test_unknown_qubit_lookup(self, grid):
        with pytest.raises(GridError):
            grid.position_of(42)

    def test_free_neighbors_excludes_occupied(self, grid):
        grid.place(1, (1, 1))
        grid.place(2, (1, 2))
        assert (1, 2) not in grid.free_neighbors((1, 1))

    def test_placed_qubits_snapshot(self, grid):
        grid.place(1, (0, 0))
        snap = grid.placed_qubits()
        snap[1] = (9, 9)  # mutating the snapshot must not affect the grid
        assert grid.position_of(1) == (0, 0)


class TestRoles:
    def test_default_role_is_bus(self, grid):
        assert grid.role((0, 0)) == CellRole.BUS

    def test_set_role(self, grid):
        grid.set_role((2, 2), CellRole.DATA)
        assert grid.cells_with_role(CellRole.DATA) == [(2, 2)]

    def test_routable(self, grid):
        grid.set_role((0, 0), CellRole.FACTORY)
        assert not grid.routable((0, 0))
        assert grid.routable((1, 1))

    def test_parkable_excludes_port(self, grid):
        grid.set_role((0, 0), CellRole.PORT)
        assert grid.routable((0, 0))
        assert not grid.parkable((0, 0))


class TestClone:
    def test_clone_is_independent(self, grid):
        grid.place(1, (0, 0))
        dup = grid.clone()
        dup.move(1, (0, 1))
        assert grid.position_of(1) == (0, 0)
        assert dup.position_of(1) == (0, 1)

    def test_clone_copies_roles(self, grid):
        grid.set_role((2, 2), CellRole.DATA)
        assert grid.clone().role((2, 2)) == CellRole.DATA
