"""Visualisation smoke tests."""

from repro.arch.layout import build_layout
from repro.compiler.pipeline import compile_circuit
from repro.visualize import (
    render_gantt,
    render_grid,
    render_layout,
    utilization_histogram,
)
from repro.workloads import ising_2d


class TestRenderLayout:
    def test_shows_data_and_bus(self):
        text = render_layout(build_layout(16, 4))
        assert "D" in text
        assert "." in text

    def test_row_count_matches_grid(self):
        layout = build_layout(16, 4)
        lines = render_layout(layout).splitlines()
        assert len(lines) == layout.grid.rows + 1  # header line


class TestRenderGrid:
    def test_occupants_shown(self):
        layout = build_layout(4, 2)
        grid = layout.grid.clone()
        grid.place(7, layout.data_slots[0])
        assert "7" in render_grid(grid)

    def test_empty_slots_marked(self):
        layout = build_layout(4, 2)
        assert "_" in render_grid(layout.grid)


class TestSchedulePlots:
    def test_gantt_renders(self):
        result = compile_circuit(ising_2d(2), routing_paths=4)
        text = render_gantt(result.schedule, 4)
        assert "q  0" in text
        assert "timeline" in text

    def test_gantt_empty_schedule(self):
        from repro.scheduling.events import Schedule

        assert "empty" in render_gantt(Schedule(), 2)

    def test_utilization_histogram(self):
        result = compile_circuit(ising_2d(2), routing_paths=4)
        text = utilization_histogram(result.schedule)
        assert "activity" in text
        assert "#" in text
