"""Tests for the retrying service client (repro.service.client).

The backoff schedule is asserted with an injected fake sleep and a seeded
``random.Random`` — no test here ever waits on a real clock.  The fake
servers are tiny blocking TCP servers run on a thread, scripted to fail
in specific ways (error frames, mid-exchange hangups, refusing to start).
"""

import random
import socket
import socketserver
import threading

import pytest

from repro.service import Client, RetryPolicy, ServiceError, protocol


class FakeSleep:
    """Records requested delays instead of sleeping."""

    def __init__(self):
        self.delays = []

    def __call__(self, seconds):
        self.delays.append(seconds)


class ScriptedServer:
    """A blocking JSON-lines server answering from a scripted playbook.

    Each playbook entry handles one connection:
      ("replies", [frame, ...]) — answer that many requests, then close;
      ("close", n) — read n requests, then hang up without answering.
    Once the playbook is exhausted every request gets ``ok`` replies.
    """

    def __init__(self, playbook):
        self.playbook = list(playbook)
        self.requests = 0
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self):
                step = outer.playbook.pop(0) if outer.playbook else ("ok",)
                while True:
                    line = self.rfile.readline()
                    if not line:
                        return
                    outer.requests += 1
                    if step[0] == "replies":
                        if not step[1]:
                            return
                        self.wfile.write(protocol.encode_line(step[1].pop(0)))
                    elif step[0] == "close":
                        step = (step[0], step[1] - 1)
                        if step[1] < 0:
                            return  # hang up with the request unanswered
                    else:
                        self.wfile.write(
                            protocol.encode_line({"ok": True, "echo": True})
                        )

        self.server = socketserver.ThreadingTCPServer(("127.0.0.1", 0), Handler)
        self.server.daemon_threads = True
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    @property
    def address(self):
        return self.server.server_address

    def stop(self):
        self.server.shutdown()
        self.server.server_close()


def error_frame(code, message="scripted failure"):
    return {"ok": False, "error": {"code": code, "message": message}}


def ok_frame():
    return {"ok": True, "echo": True}


@pytest.fixture
def fake_sleep():
    return FakeSleep()


def scripted_client(server, fake_sleep, **retry_kwargs):
    retry_kwargs.setdefault("attempts", 4)
    retry_kwargs.setdefault("base_delay", 0.05)
    return Client(
        *server.address,
        timeout=10.0,
        retry=RetryPolicy(**retry_kwargs),
        sleep=fake_sleep,
        rng=random.Random(42),
    )


class TestBackoffSchedule:
    def test_full_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0)
        rng = random.Random(0)
        for retry_index, ceiling in [(0, 0.1), (1, 0.2), (2, 0.4), (6, 1.0)]:
            for _ in range(50):
                delay = policy.delay(retry_index, rng)
                assert 0.0 <= delay <= ceiling

    def test_schedule_is_seed_deterministic(self):
        policy = RetryPolicy()
        a = [policy.delay(i, random.Random(7)) for i in range(4)]
        b = [policy.delay(i, random.Random(7)) for i in range(4)]
        assert a == b


class TestRetryOnErrorFrames:
    def test_overloaded_then_success(self, fake_sleep):
        server = ScriptedServer([
            ("replies", [error_frame(protocol.E_OVERLOADED),
                         error_frame(protocol.E_TIMEOUT),
                         ok_frame()]),
        ])
        try:
            with scripted_client(server, fake_sleep) as client:
                response = client.request({"op": "ping"})
            assert response["ok"]
            assert client.retried == 2
            assert len(fake_sleep.delays) == 2
            # exponential ceilings: retry 0 <= base, retry 1 <= 2*base
            assert fake_sleep.delays[0] <= 0.05
            assert fake_sleep.delays[1] <= 0.10
        finally:
            server.stop()

    def test_non_retryable_code_fails_fast(self, fake_sleep):
        server = ScriptedServer([
            ("replies", [error_frame(protocol.E_BAD_REQUEST)]),
        ])
        try:
            with scripted_client(server, fake_sleep) as client:
                with pytest.raises(ServiceError) as err:
                    client.request({"op": "ping"})
            assert err.value.code == protocol.E_BAD_REQUEST
            assert client.retried == 0
            assert fake_sleep.delays == []
        finally:
            server.stop()

    def test_budget_exhaustion_reraises_last_error(self, fake_sleep):
        frames = [error_frame(protocol.E_OVERLOADED) for _ in range(3)]
        server = ScriptedServer([("replies", frames)])
        try:
            with scripted_client(server, fake_sleep, attempts=3) as client:
                with pytest.raises(ServiceError) as err:
                    client.request({"op": "ping"})
            assert err.value.code == protocol.E_OVERLOADED
            assert client.retried == 2  # attempts=3 -> 2 retries
        finally:
            server.stop()

    def test_no_policy_means_fail_fast(self):
        server = ScriptedServer([
            ("replies", [error_frame(protocol.E_OVERLOADED)]),
        ])
        try:
            with Client(*server.address, timeout=10.0) as client:
                with pytest.raises(ServiceError):
                    client.request({"op": "ping"})
            assert client.retried == 0
        finally:
            server.stop()


class TestReconnect:
    def test_mid_exchange_hangup_reconnects(self, fake_sleep):
        server = ScriptedServer([
            ("close", 0),  # first connection: read one request, hang up
            ("replies", [ok_frame()]),
        ])
        try:
            with scripted_client(server, fake_sleep) as client:
                response = client.request({"op": "ping"})
            assert response["ok"]
            assert client.reconnects == 1
            assert client.retried == 1
        finally:
            server.stop()

    def test_hangup_without_policy_raises_connection_error(self):
        server = ScriptedServer([("close", 0)])
        try:
            with Client(*server.address, timeout=10.0) as client:
                with pytest.raises(ConnectionError):
                    client.request({"op": "ping"})
        finally:
            server.stop()

    def test_connection_refused_retried_then_raises(self, fake_sleep):
        # grab a port nothing listens on
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()
        with pytest.raises(OSError):
            Client(
                host, port, timeout=1.0,
                retry=RetryPolicy(attempts=3),
                sleep=fake_sleep, rng=random.Random(1),
            )
        # the constructor connect is not retried; no sleeps burned
        assert fake_sleep.delays == []
