"""Tests for the fuzzing subsystem (repro.fuzz).

Covers: determinism of the RNG and the scenario stream, validity by
construction, the oracle bundle (green on good compiles, red on seeded
defects), the shrinker (reduces and preserves the failing oracle), the
artifact round trip, both runner modes, and the CLI entry points.
"""

import json
import math

import pytest

from repro.compiler.config import CompilerConfig
from repro.compiler.pipeline import FaultTolerantCompiler
from repro.fuzz import (
    KINDS,
    FuzzRng,
    OracleFailure,
    Scenario,
    check_scenario,
    compare_results,
    generate_scenario,
    load_artifact,
    replay_artifact,
    run_fuzz,
    run_mutation_fuzz,
    scenario_rng,
    shrink,
    static_oracles,
    write_artifact,
)
from repro.fuzz.generators import (
    config_from_dict,
    config_to_dict,
    feasible_routing_paths,
    sample_config,
)
from repro.ir.circuit import Circuit
from repro.verify import MUTATIONS
from repro.cli import main as cli_main

SEED = 0
SPAN = 30  # scenarios exercised by the cheaper tests


@pytest.fixture(scope="module")
def stream():
    return [generate_scenario(SEED, i) for i in range(SPAN)]


# -- rng -----------------------------------------------------------------------


class TestFuzzRng:
    def test_same_seed_same_stream(self):
        a, b = FuzzRng(123), FuzzRng(123)
        assert [a.next_u64() for _ in range(50)] == [
            b.next_u64() for _ in range(50)
        ]

    def test_known_value_pinned(self):
        # splitmix64 of seed 0 — pins the stream across refactors, since
        # corpus keys and CI verdicts depend on it
        assert FuzzRng(0).next_u64() == 16294208416658607535

    def test_fork_is_deterministic_and_decorrelated(self):
        assert (
            FuzzRng(7).fork("x").next_u64() == FuzzRng(7).fork("x").next_u64()
        )
        assert (
            FuzzRng(7).fork("x").next_u64() != FuzzRng(7).fork("y").next_u64()
        )

    def test_randint_bounds(self):
        rng = FuzzRng(42)
        draws = [rng.randint(3, 9) for _ in range(200)]
        assert min(draws) >= 3 and max(draws) <= 9
        assert set(draws) == set(range(3, 10))  # all values reachable

    def test_weighted_choice_respects_zero_weight(self):
        rng = FuzzRng(1)
        picks = {rng.weighted_choice(("a", "b"), (1, 0)) for _ in range(50)}
        assert picks == {"a"}


# -- generators ----------------------------------------------------------------


class TestGenerators:
    def test_stream_is_deterministic(self, stream):
        again = [generate_scenario(SEED, i) for i in range(SPAN)]
        assert [s.key for s in stream] == [s.key for s in again]

    def test_stream_is_prefix_stable(self, stream):
        # the 10th scenario of a 30-run equals the 10th of any longer run
        assert generate_scenario(SEED, 10).key == stream[10].key

    def test_kind_mix(self):
        kinds = {generate_scenario(SEED, i).kind for i in range(120)}
        assert kinds == set(KINDS)

    def test_scenarios_valid_by_construction(self, stream):
        for scenario in stream:
            assert scenario.circuit.num_qubits >= 2
            scenario.config.factory_config()  # resolves without error

    def test_serialization_round_trip(self, stream):
        for scenario in stream:
            rebuilt = Scenario.from_dict(scenario.to_dict())
            assert rebuilt.key == scenario.key
            assert list(rebuilt.circuit.gates) == list(scenario.circuit.gates)
            assert rebuilt.config == scenario.config

    def test_config_dict_round_trip_custom_distill(self):
        rng = scenario_rng(3, 1)
        for _ in range(20):
            config = sample_config(rng, 6)
            rebuilt = config_from_dict(config_to_dict(config))
            assert rebuilt == config

    def test_feasible_routing_paths_always_buildable(self):
        from repro.arch.layout import build_layout

        for num_qubits in (2, 3, 5, 7, 11, 12):
            for requested in (2, 4, 7, 10):
                r = feasible_routing_paths(num_qubits, requested)
                assert r <= max(requested, 2)
                build_layout(num_qubits, r)  # must not raise


# -- oracles -------------------------------------------------------------------


def _compiled(scenario):
    return FaultTolerantCompiler(scenario.config).compile(scenario.circuit)


class TestOracles:
    def test_green_on_good_scenarios(self, stream):
        for scenario in stream[:10]:
            result, failures = check_scenario(scenario)
            assert result is not None
            assert failures == [], [str(f) for f in failures]

    def test_compile_crash_is_captured_not_raised(self):
        class Boom(Circuit):
            def __iter__(self):
                raise RuntimeError("seeded crash")

        scenario = generate_scenario(SEED, 0)
        broken = Scenario(
            kind="crash",
            seed=0,
            index=-1,
            circuit=Boom(2, name="boom"),
            config=scenario.config,
        )
        result, failures = check_scenario(broken)
        assert result is None
        assert [f.oracle for f in failures] == ["compile-crash"]
        assert "seeded crash" in failures[0].message

    def test_lower_bound_oracle_fires_on_corrupt_result(self, stream):
        scenario = next(s for s in stream if s.circuit.t_count() > 0)
        result = _compiled(scenario)
        result.lower_bound = result.execution_time + 100.0
        oracles = {f.oracle for f in static_oracles(scenario, result)}
        assert "lower-bound" in oracles

    def test_metrics_oracle_fires_on_corrupt_result(self, stream):
        scenario = stream[0]
        result = _compiled(scenario)
        result.t_states += 1
        oracles = {f.oracle for f in static_oracles(scenario, result)}
        assert "metrics-consistency" in oracles

    def test_replay_validation_oracle_fires_on_corrupt_schedule(self, stream):
        from dataclasses import replace as dreplace

        scenario = next(
            s
            for s in stream
            if any(op.min_start > 0 for op in _compiled(s).schedule.ops)
        )
        result = _compiled(scenario)
        ops = list(result.schedule.ops)
        victim = next(i for i, op in enumerate(ops) if op.min_start > 0)
        ops[victim] = dreplace(ops[victim], start=ops[victim].min_start / 2)
        result.schedule.ops = ops
        oracles = {f.oracle for f in static_oracles(scenario, result)}
        assert "replay-validation" in oracles

    def test_determinism_oracle_fires_on_fingerprint_drift(self, stream):
        scenario = stream[0]
        a, b = _compiled(scenario), _compiled(scenario)
        assert compare_results(a, b, label="identical") == []
        b.schedule.ops = list(b.schedule.ops)[:-1]
        failures = compare_results(a, b, label="dropped-op")
        assert [f.oracle for f in failures] == ["determinism"]

    def test_baseline_ceiling_has_headroom(self, stream):
        from repro.baselines.serial import pessimistic_serial_time

        for scenario in stream[:10]:
            result = _compiled(scenario)
            ceiling = pessimistic_serial_time(
                scenario.circuit, scenario.config, result.layout
            )
            assert result.execution_time <= ceiling + 1e-6


# -- shrinker ------------------------------------------------------------------


def _seeded_crash_scenario():
    """A scenario that deterministically fails the compile-crash oracle.

    ``routing_paths=9`` exceeds the 2k+2 limit of a 3-qubit (2x2 block)
    register, so ``build_layout`` raises inside every compile — stable
    under gate deletion, which is exactly what a shrinker test needs.
    """
    from repro.workloads.random_programs import random_mixed_stream

    return Scenario(
        kind="seeded-crash",
        seed=0,
        index=-1,
        circuit=random_mixed_stream(3, 30, seed=5),
        config=CompilerConfig(routing_paths=9),
    )


class TestShrinker:
    def test_requires_a_failure_to_anchor_on(self):
        with pytest.raises(ValueError):
            shrink(generate_scenario(SEED, 0), [])

    def test_reduces_while_preserving_the_oracle(self):
        scenario = _seeded_crash_scenario()
        result, failures = check_scenario(scenario)
        assert result is None
        assert failures[0].oracle == "compile-crash"
        outcome = shrink(scenario, failures)
        assert outcome.reduced
        assert outcome.oracle == "compile-crash"
        assert len(outcome.scenario.circuit) < len(scenario.circuit)
        # the minimized scenario still reproduces
        _, still_failing = check_scenario(outcome.scenario)
        assert any(f.oracle == "compile-crash" for f in still_failing)

    def test_rejects_reductions_that_change_the_oracle(self):
        # config simplification would make the seeded scenario compile
        # (r=2..4 are feasible), which no longer breaches compile-crash —
        # the shrinker must keep the breaching routing_paths value
        scenario = _seeded_crash_scenario()
        _, failures = check_scenario(scenario)
        outcome = shrink(scenario, failures)
        assert outcome.scenario.config.routing_paths == 9

    def test_deterministic(self):
        scenario = _seeded_crash_scenario()
        _, failures = check_scenario(scenario)
        a = shrink(scenario, failures)
        b = shrink(scenario, failures)
        assert a.scenario.key == b.scenario.key


# -- artifacts -----------------------------------------------------------------


class TestArtifacts:
    def test_write_load_replay_round_trip(self, tmp_path, stream):
        scenario = stream[1]
        failure = OracleFailure("determinism", "seeded for the test")
        path = write_artifact(tmp_path, scenario, [failure], original=stream[2])
        loaded, payload = load_artifact(path)
        assert loaded.key == scenario.key
        assert payload["failures"][0]["oracle"] == "determinism"
        assert payload["original"]["key"] == stream[2].key
        # the underlying scenario is green, so replay reports no failures
        assert replay_artifact(path) == []

    def test_artifact_version_gate(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"artifact_version": 99, "scenario": {}}))
        with pytest.raises(ValueError):
            load_artifact(bad)

    def test_filename_is_content_addressed(self, tmp_path, stream):
        scenario = stream[3]
        failure = OracleFailure("determinism", "x")
        first = write_artifact(tmp_path, scenario, [failure])
        second = write_artifact(tmp_path, scenario, [failure])
        assert first == second
        assert len(list(tmp_path.glob("*.json"))) == 1


# -- runner --------------------------------------------------------------------


class TestRunner:
    def test_small_campaign_is_green_and_deterministic(self):
        a = run_fuzz(seed=SEED, iterations=25, jobs=1, minimize=False)
        b = run_fuzz(seed=SEED, iterations=25, jobs=1, minimize=False)
        assert a.ok, a.summary()
        assert a.verdict_lines() == b.verdict_lines()

    def test_campaign_jobs_parity(self):
        serial = run_fuzz(seed=SEED, iterations=15, jobs=1, minimize=False)
        parallel = run_fuzz(seed=SEED, iterations=15, jobs=2, minimize=False)
        assert serial.verdict_lines() == parallel.verdict_lines()

    def test_report_shapes(self):
        report = run_fuzz(seed=SEED, iterations=5, jobs=1, minimize=False)
        payload = report.to_dict()
        assert payload["ok"] is True
        assert len(payload["verdicts"]) == 5
        assert report.kind_histogram()
        assert "5/5 scenarios passed" in report.summary()

    def test_mutation_mode_rediscovers_every_class(self):
        # satellite requirement: in mutation mode the fuzzer must rediscover
        # all 9 corruption classes of tests/test_verify_mutations.py when
        # injected into fuzz-generated schedules
        report = run_mutation_fuzz(seed=SEED, iterations=40)
        assert report.covered == set(MUTATIONS), report.summary()
        assert not report.uncaught, report.summary()
        assert not report.broken_bases
        assert report.ok
        assert len(MUTATIONS) == 9

    def test_mutation_report_detects_missing_coverage(self):
        report = run_mutation_fuzz(seed=SEED, iterations=1)
        # one scenario cannot cover every class (barriers are rare)
        assert report.missing or report.covered == set(MUTATIONS)


# -- CLI -----------------------------------------------------------------------


class TestFuzzCli:
    def test_fuzz_exit_zero_on_green(self, capsys, tmp_path):
        code = cli_main(
            [
                "fuzz",
                "--seed",
                "0",
                "--iterations",
                "10",
                "--artifact-dir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "10/10 scenarios passed" in out

    def test_fuzz_mutate_mode(self, capsys):
        code = cli_main(["fuzz", "--mutate", "--seed", "0", "--iterations", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mutation self-test: OK" in out

    def test_fuzz_replay_green_corpus_case(self, capsys):
        from repro.fuzz.artifact import corpus_paths

        path = corpus_paths()[0]
        code = cli_main(["fuzz", "--replay", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "green" in out


# -- long campaigns (CI fuzz job; excluded from tier-1 by the marker) ----------


@pytest.mark.slow
class TestSlowCampaigns:
    def test_200_iteration_campaign_green(self):
        report = run_fuzz(seed=SEED, iterations=200, jobs=2, minimize=False)
        assert report.ok, report.summary()

    def test_200_iteration_campaign_deterministic(self):
        a = run_fuzz(seed=SEED, iterations=200, jobs=2, minimize=False)
        b = run_fuzz(seed=SEED, iterations=200, jobs=1, minimize=False)
        assert a.verdict_lines() == b.verdict_lines()
