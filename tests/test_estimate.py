"""Physical resource estimation tests."""

import pytest

from repro import compile_circuit
from repro.estimate import (
    ErrorModel,
    choose_code_distance,
    compare_distances,
    estimate_physical_resources,
    failure_probability,
    physical_qubits_per_patch,
)
from repro.workloads import ising_2d


@pytest.fixture(scope="module")
def result():
    return compile_circuit(ising_2d(2), routing_paths=4, num_factories=1)


class TestErrorModel:
    def test_scaling_law_decreases_with_distance(self):
        model = ErrorModel()
        assert model.logical_error_rate(11) < model.logical_error_rate(5)

    def test_rejects_even_distance(self):
        with pytest.raises(ValueError):
            ErrorModel().logical_error_rate(4)

    def test_rejects_super_threshold_rate(self):
        with pytest.raises(ValueError):
            ErrorModel(physical_error_rate=0.5)

    def test_better_hardware_smaller_rates(self):
        good = ErrorModel(physical_error_rate=1e-4)
        bad = ErrorModel(physical_error_rate=5e-3)
        assert good.logical_error_rate(7) < bad.logical_error_rate(7)


class TestPatchAccounting:
    def test_fig1_formula(self):
        assert physical_qubits_per_patch(5) == 49  # 2*25 - 1
        assert physical_qubits_per_patch(11) == 241

    def test_rejects_small_distance(self):
        with pytest.raises(ValueError):
            physical_qubits_per_patch(1)


class TestDistanceSelection:
    def test_finds_a_distance(self, result):
        distance = choose_code_distance(result)
        assert distance % 2 == 1
        assert failure_probability(result, distance, ErrorModel()) <= 1e-2

    def test_tighter_target_needs_larger_distance(self, result):
        loose = choose_code_distance(result, target_failure=1e-1)
        tight = choose_code_distance(result, target_failure=1e-6)
        assert tight >= loose

    def test_impossible_target_raises(self, result):
        with pytest.raises(ValueError):
            choose_code_distance(result, target_failure=1e-30, max_distance=5)

    def test_invalid_target_rejected(self, result):
        with pytest.raises(ValueError):
            choose_code_distance(result, target_failure=2.0)


class TestFullEstimate:
    def test_estimate_consistency(self, result):
        estimate = estimate_physical_resources(result)
        assert estimate.physical_qubits == (
            estimate.logical_patch_count
            * physical_qubits_per_patch(estimate.code_distance)
        )
        assert estimate.wall_clock_s == pytest.approx(
            estimate.code_cycles * 1e-6
        )
        assert estimate.total_failure_probability <= 1e-2

    def test_estimate_scales_with_program(self):
        small = compile_circuit(ising_2d(2), routing_paths=4)
        large = compile_circuit(ising_2d(4), routing_paths=4)
        a = estimate_physical_resources(small)
        b = estimate_physical_resources(large)
        assert b.physical_qubits > a.physical_qubits

    def test_distance_sweep_monotone(self, result):
        rows = compare_distances(result)
        failures = [row[2] for row in rows]
        assert failures == sorted(failures, reverse=True)
        qubits = [row[1] for row in rows]
        assert qubits == sorted(qubits)
