"""Replay every committed fuzz corpus case as an ordinary tier-1 test.

``tests/corpus/`` holds minimized repro artifacts from fuzz campaigns
whose underlying defect has been fixed; each must replay *green* — the
full oracle bundle (compile, replay validation, lower bound, metrics,
serialization, baseline ceiling, determinism) passes — forever after.
A red replay here means a fixed bug regressed.

Workflow for adding a case (see docs/architecture.md, "Fuzzing &
conformance"): a failing ``repro fuzz`` run leaves a minimized artifact
under ``fuzz-repros/``; fix the bug, confirm
``repro fuzz --replay <artifact>`` is green, then commit the file here
under a descriptive name.
"""

import pytest

from repro.fuzz import load_artifact, replay_artifact
from repro.fuzz.artifact import corpus_paths

CASES = corpus_paths()


def test_corpus_is_not_empty():
    assert CASES, "tests/corpus/ must hold at least one minimized repro"


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_replays_green(path):
    failures = replay_artifact(path)
    assert failures == [], (
        f"{path.name} regressed: "
        + "; ".join(str(f) for f in failures)
    )


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_is_well_formed(path):
    scenario, payload = load_artifact(path)
    # the stored key must match the scenario content (guards hand edits)
    assert payload["key"] == scenario.key
    # every recorded failure names a known oracle
    from repro.fuzz import ORACLE_NAMES

    for failure in payload["failures"]:
        assert failure["oracle"] in ORACLE_NAMES
