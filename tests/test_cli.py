"""CLI tests (invoked in-process via cli.main)."""

import pytest

from repro.cli import main
from repro.ir import qasm
from repro.workloads import ising_2d


class TestList:
    def test_lists_benchmarks_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ising_2d_10x10" in out
        assert "fig9" in out


class TestCompile:
    def test_compile_qasm_file(self, tmp_path, capsys):
        path = str(tmp_path / "prog.qasm")
        qasm.dump_file(ising_2d(2), path)
        assert main(["compile", path, "-r", "4"]) == 0
        out = capsys.readouterr().out
        assert "execution time" in out

    def test_compile_with_optimize(self, tmp_path, capsys):
        path = str(tmp_path / "prog.qasm")
        qasm.dump_file(ising_2d(2), path)
        assert main(["compile", path, "--optimize"]) == 0
        assert "optimised" in capsys.readouterr().out


class TestBenchmark:
    def test_named_benchmark_sweep(self, capsys):
        assert main(["benchmark", "ising_2d_2x2", "-r", "3", "-r", "4"]) == 0
        out = capsys.readouterr().out
        assert "x_bound" in out

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            main(["benchmark", "nope"])


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1", "--fast"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_parallel_cached_run_then_warm_rerun(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["experiment", "fig12", "--fast", "--jobs", "2",
                "--cache-dir", cache]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Figure 12" in cold
        # warm rerun: every point resolves from disk, zero compilations
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert " 0 compiled" in warm.rsplit("[sweep]", 1)[1]
        rows = lambda out: [l for l in out.splitlines() if "ours-r" in l]
        assert rows(warm) == rows(cold)
        assert rows(cold)  # the table actually has sweep rows

    def test_no_cache_flag(self, capsys):
        assert main(["experiment", "table1", "--fast", "--no-cache"]) == 0
        assert "Table I" in capsys.readouterr().out


class TestBenchCommand:
    def test_jobs_flag_keeps_fingerprints(self, tmp_path, capsys):
        out_path = str(tmp_path / "base.json")
        assert main(["bench", "--fast", "--workload", "ising_2d_2x2",
                     "-o", out_path]) == 0
        capsys.readouterr()
        assert main(["bench", "--fast", "--workload", "ising_2d_2x2",
                     "--jobs", "2", "-o", "-", "--baseline", out_path]) == 0
        assert "behaviour: identical to baseline" in capsys.readouterr().out

    def test_baseline_drift_fails(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "base.json"
        assert main(["bench", "--fast", "--workload", "ising_2d_2x2",
                     "-o", str(out_path)]) == 0
        baseline = json.loads(out_path.read_text())
        for row in baseline["cases"].values():
            row["makespan"] += 1.0
        out_path.write_text(json.dumps(baseline))
        capsys.readouterr()
        assert main(["bench", "--fast", "--workload", "ising_2d_2x2",
                     "-o", "-", "--baseline", str(out_path)]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_cache_dir_records_counters(self, tmp_path, capsys):
        import json

        cache = str(tmp_path / "cache")
        out_path = tmp_path / "bench.json"
        argv = ["bench", "--fast", "--workload", "ising_2d_2x2",
                "--cache-dir", cache, "-o", str(out_path)]
        assert main(argv) == 0
        cold = json.loads(out_path.read_text())
        assert cold["meta"]["cache"]["compiled"] == 1
        assert main(argv) == 0
        warm = json.loads(out_path.read_text())
        assert warm["meta"]["cache"] == {
            "memo_hits": 0, "disk_hits": 1, "remote_hits": 0, "compiled": 0,
        }
        assert warm["cases"] == dict(
            cold["cases"],
            **{k: dict(v, wall=warm["cases"][k]["wall"])
               for k, v in cold["cases"].items()},
        )


class TestValidateFlags:
    def test_compile_validate(self, tmp_path, capsys):
        path = str(tmp_path / "prog.qasm")
        qasm.dump_file(ising_2d(2), path)
        assert main(["compile", path, "--validate"]) == 0
        assert "replay-validated" in capsys.readouterr().out

    def test_experiment_validate_cold_and_warm(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["experiment", "fig12", "--fast", "--cache-dir", cache,
                "--validate"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "[verify]" in cold and "0 violations" in cold
        # warm rerun validates the disk-cached schedules too
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert " 0 compiled" in warm.rsplit("[sweep]", 1)[1]
        assert "[verify]" in warm and "0 violations" in warm

    def test_bench_validate(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "bench.json"
        assert main(["bench", "--fast", "--workload", "ising_2d_2x2",
                     "--validate", "-o", str(out_path)]) == 0
        assert "replay-validated" in capsys.readouterr().out
        assert json.loads(out_path.read_text())["meta"]["validated"] is True


class TestMisc:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
