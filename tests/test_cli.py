"""CLI tests (invoked in-process via cli.main)."""

import pytest

from repro.cli import main
from repro.ir import qasm
from repro.workloads import ising_2d


class TestList:
    def test_lists_benchmarks_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ising_2d_10x10" in out
        assert "fig9" in out


class TestCompile:
    def test_compile_qasm_file(self, tmp_path, capsys):
        path = str(tmp_path / "prog.qasm")
        qasm.dump_file(ising_2d(2), path)
        assert main(["compile", path, "-r", "4"]) == 0
        out = capsys.readouterr().out
        assert "execution time" in out

    def test_compile_with_optimize(self, tmp_path, capsys):
        path = str(tmp_path / "prog.qasm")
        qasm.dump_file(ising_2d(2), path)
        assert main(["compile", path, "--optimize"]) == 0
        assert "optimised" in capsys.readouterr().out


class TestBenchmark:
    def test_named_benchmark_sweep(self, capsys):
        assert main(["benchmark", "ising_2d_2x2", "-r", "3", "-r", "4"]) == 0
        out = capsys.readouterr().out
        assert "x_bound" in out

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            main(["benchmark", "nope"])


class TestExperiment:
    def test_table1(self, capsys):
        assert main(["experiment", "table1", "--fast"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestMisc:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
