"""Schedule validity engine: unit tests per violation class plus
end-to-end validation of real compiled schedules (raw and optimised)."""

import pytest

from repro.arch.layout import assign_factory_ports, build_layout
from repro.compiler.config import CompilerConfig
from repro.compiler.mapping import choose_mapping
from repro.compiler.pipeline import FaultTolerantCompiler
from repro.ir.circuit import Circuit
from repro.ir.dag import DagCircuit
from repro.scheduling.events import MAGIC_NOTE_PREFIX, Schedule, ScheduledOp
from repro.scheduling.scheduler import LatticeSurgeryScheduler
from repro.verify import (
    ValidationError,
    raise_if_invalid,
    validate_result,
    validate_schedule,
)
from repro.workloads import load_benchmark


def op(uid, kind="gate", name="s", qubits=(0,), cells=(), start=0.0,
       duration=1.0, min_start=0.0, gate_index=None, note=""):
    return ScheduledOp(
        uid=uid, kind=kind, name=name, qubits=qubits, cells=cells,
        start=start, duration=duration, min_start=min_start,
        gate_index=gate_index, note=note,
    )


class TestStructure:
    def test_clean_schedule_ok(self):
        report = validate_schedule(Schedule([op(0), op(1, start=1.0)]))
        assert report.ok
        assert report.ops_checked == 2

    def test_non_increasing_uid_flagged(self):
        report = validate_schedule(Schedule([op(5), op(3, start=2.0)]))
        assert report.count("structure") == 1

    def test_negative_start_flagged(self):
        report = validate_schedule(Schedule([op(0, start=-1.0)]))
        assert report.count("structure") == 1

    def test_negative_duration_flagged(self):
        report = validate_schedule(Schedule([op(0, duration=-2.0)]))
        assert report.count("structure") == 1


class TestFootprint:
    def test_move_without_cell_pair_flagged(self):
        bad = op(0, kind="move", name="move", cells=((0, 0),))
        assert validate_schedule(Schedule([bad])).count("footprint") == 1

    def test_route_without_cell_pair_flagged(self):
        bad = op(0, kind="route", name="move", qubits=(), cells=())
        assert validate_schedule(Schedule([bad])).count("footprint") == 1

    def test_hadamard_without_ancilla_flagged(self):
        assert validate_schedule(Schedule([op(0, name="h")])).count("footprint") == 1

    def test_t_without_drop_cell_flagged(self):
        assert validate_schedule(Schedule([op(0, name="t")])).count("footprint") == 1

    def test_gate_with_footprint_ok(self):
        good = op(0, name="h", cells=((1, 1),))
        assert validate_schedule(Schedule([good])).ok

    def test_t_like_rz_without_drop_cell_flagged_via_circuit(self):
        # the circuit= entry point (what --validate uses) must derive the
        # DAG before the footprint check so t-like rz consumes need a cell
        circuit = Circuit(1).rz(0.3, 0)
        bad = op(0, name="rz", duration=2.5, gate_index=0)
        report = validate_schedule(Schedule([bad]), circuit=circuit)
        assert report.count("footprint") == 1

    def test_nan_times_flagged(self):
        # NaN compares False against everything, silently defeating the
        # interval checks — it must be a structure violation instead
        bad = op(0, start=float("nan"))
        report = validate_schedule(Schedule([bad]))
        assert report.count("structure") == 1

    def test_infinite_duration_flagged(self):
        bad = op(0, duration=float("inf"))
        assert validate_schedule(Schedule([bad])).count("structure") == 1


class TestTimeline:
    def test_overlap_flagged(self):
        schedule = Schedule([
            op(0, name="s", start=0.0, duration=5.0),
            op(1, name="s", start=2.0, duration=1.0),
        ])
        assert validate_schedule(schedule).count("timeline") == 1

    def test_out_of_order_flagged(self):
        # second op in schedule order starts before the first one ends
        schedule = Schedule([
            op(0, name="s", start=10.0, duration=2.0),
            op(1, name="s", start=0.0, duration=2.0),
        ])
        assert validate_schedule(schedule).count("timeline") == 1

    def test_disjoint_qubits_ok(self):
        schedule = Schedule([
            op(0, name="s", qubits=(0,), start=0.0, duration=5.0),
            op(1, name="s", qubits=(1,), start=0.0, duration=5.0),
        ])
        assert validate_schedule(schedule).ok


class TestCellConflict:
    def test_overlapping_footprints_flagged(self):
        schedule = Schedule([
            op(0, name="h", qubits=(0,), cells=((2, 2),), start=0.0, duration=3.0),
            op(1, name="h", qubits=(1,), cells=((2, 2),), start=1.0, duration=3.0),
        ])
        assert validate_schedule(schedule).count("cell-conflict") == 1

    def test_back_to_back_footprints_ok(self):
        schedule = Schedule([
            op(0, name="h", qubits=(0,), cells=((2, 2),), start=0.0, duration=3.0),
            op(1, name="h", qubits=(1,), cells=((2, 2),), start=3.0, duration=3.0),
        ])
        assert validate_schedule(schedule).ok

    def test_move_locks_destination_only(self):
        # a move's origin is reusable in the same cycle (chain shift)
        schedule = Schedule([
            op(0, kind="move", name="move", qubits=(0,),
               cells=((0, 0), (0, 1)), start=0.0),
            op(1, kind="move", name="move", qubits=(1,),
               cells=((1, 0), (0, 0)), start=0.0),
        ])
        assert validate_schedule(schedule).ok


class TestMinStart:
    def test_early_start_flagged(self):
        bad = op(0, name="s", start=3.0, min_start=7.0)
        report = validate_schedule(Schedule([bad]))
        assert report.count("min-start") == 1

    def test_respected_floor_ok(self):
        good = op(0, name="s", start=7.0, min_start=7.0)
        assert validate_schedule(Schedule([good])).ok


class TestDependencies:
    def test_wire_order_violation_flagged(self):
        circuit = Circuit(1).s(0).s(0)
        schedule = Schedule([
            op(0, name="s", start=5.0, duration=1.5, gate_index=0),
            op(1, name="s", start=0.0, duration=1.5, gate_index=1),
        ])
        report = validate_schedule(schedule, circuit=circuit)
        assert report.count("dependency") >= 1

    def test_wire_order_respected_ok(self):
        circuit = Circuit(1).s(0).s(0)
        schedule = Schedule([
            op(0, name="s", start=0.0, duration=1.5, gate_index=0),
            op(1, name="s", start=1.5, duration=1.5, gate_index=1),
        ])
        assert validate_schedule(schedule, circuit=circuit).ok

    def test_moving_operand_early_is_legal(self):
        # a successor may move its other operand while the predecessor
        # still executes on the shared qubit's partner
        circuit = Circuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        schedule = Schedule([
            op(0, name="cx", qubits=(0, 1), cells=((5, 5),),
               start=0.0, duration=2.0, gate_index=0),
            # qubit 2 (not shared with gate 0) aligns early: legal
            op(1, kind="move", name="move", qubits=(2,),
               cells=((3, 3), (3, 4)), start=0.0, duration=1.0, gate_index=1),
            op(2, name="cx", qubits=(1, 2), cells=((5, 6),),
               start=2.0, duration=2.0, gate_index=1),
        ])
        assert validate_schedule(schedule, circuit=circuit).ok

    def test_missing_node_flagged_as_coverage(self):
        circuit = Circuit(1).s(0).s(0)
        schedule = Schedule([op(0, name="s", duration=1.5, gate_index=0)])
        report = validate_schedule(schedule, circuit=circuit)
        assert report.count("coverage") == 1

    def test_unknown_gate_index_flagged(self):
        circuit = Circuit(1).s(0)
        schedule = Schedule([
            op(0, name="s", duration=1.5, gate_index=0),
            op(1, name="s", start=2.0, duration=1.5, gate_index=7),
        ])
        report = validate_schedule(schedule, circuit=circuit)
        assert report.count("coverage") >= 1


class TestBarrier:
    def circuit(self):
        circuit = Circuit(2)
        circuit.s(0)
        circuit.barrier()
        circuit.s(1)
        return circuit

    def test_crossing_barrier_flagged(self):
        # gate 1 (on qubit 1) must wait for gate 0 (on qubit 0) to finish
        schedule = Schedule([
            op(0, name="s", qubits=(0,), start=0.0, duration=1.5, gate_index=0),
            op(1, name="s", qubits=(1,), start=0.5, duration=1.5, gate_index=1),
        ])
        report = validate_schedule(schedule, circuit=self.circuit())
        assert report.count("barrier") == 1

    def test_serialised_ok(self):
        schedule = Schedule([
            op(0, name="s", qubits=(0,), start=0.0, duration=1.5, gate_index=0),
            op(1, name="s", qubits=(1,), start=1.5, duration=1.5,
               min_start=1.5, gate_index=1),
        ])
        assert validate_schedule(schedule, circuit=self.circuit()).ok


def consume(uid, factory, start, qubit=0, cell=(0, 1), gate_index=0):
    return op(uid, name="t", qubits=(qubit,), cells=(cell,), start=start,
              duration=2.5, min_start=start, gate_index=gate_index,
              note=f"{MAGIC_NOTE_PREFIX}{factory}")


class TestMagicStates:
    def test_note_parsing(self):
        assert consume(0, 2, 11.0).magic_factory() == 2
        assert op(0).magic_factory() is None
        assert op(0, note="magic-state from fX").magic_factory() is None

    def test_pipeline_bound_ok(self):
        schedule = Schedule([
            consume(0, 0, 11.0),
            consume(1, 0, 22.0, qubit=1, cell=(0, 2), gate_index=1),
        ])
        report = validate_schedule(
            schedule, distill_times={0: 11.0}, expected_t_states=2
        )
        assert report.ok

    def test_premature_consumption_flagged(self):
        schedule = Schedule([consume(0, 0, 5.0)])
        report = validate_schedule(
            schedule, distill_times={0: 11.0}, expected_t_states=1
        )
        assert report.count("magic-pipeline") == 1

    def test_double_consumption_flagged(self):
        # two states cannot both be available after one distillation round
        schedule = Schedule([
            consume(0, 0, 11.0, qubit=0, cell=(0, 1)),
            op(1, name="t", qubits=(1,), cells=((0, 2),), start=12.0,
               duration=2.5, min_start=11.0, gate_index=1,
               note=f"{MAGIC_NOTE_PREFIX}0"),
        ])
        report = validate_schedule(
            schedule, distill_times={0: 11.0}, expected_t_states=2
        )
        assert report.count("magic-pipeline") == 1

    def test_count_mismatch_flagged(self):
        schedule = Schedule([consume(0, 0, 11.0)])
        report = validate_schedule(
            schedule, distill_times={0: 11.0}, expected_t_states=2
        )
        assert report.count("magic-count") == 1

    def test_unknown_factory_flagged(self):
        schedule = Schedule([consume(0, 9, 11.0)])
        report = validate_schedule(
            schedule, distill_times={0: 11.0}, expected_t_states=1
        )
        assert report.count("magic-count") >= 1


class TestReportApi:
    def test_summary_mentions_classes(self):
        report = validate_schedule(Schedule([op(0, start=-1.0)]))
        assert "structure" in report.summary()
        assert not report.ok

    def test_to_dict_round_trips_codes(self):
        report = validate_schedule(Schedule([op(0, start=-1.0)]))
        data = report.to_dict()
        assert data["ok"] is False
        assert data["violations"][0]["code"] == "structure"

    def test_raise_if_invalid(self):
        report = validate_schedule(Schedule([op(0, start=-1.0)]))
        with pytest.raises(ValidationError) as excinfo:
            raise_if_invalid(report)
        assert excinfo.value.report is report

    def test_raise_if_invalid_passes_clean(self):
        report = validate_schedule(Schedule([op(0)]))
        assert raise_if_invalid(report) is report

    def test_validation_error_survives_pickling(self):
        # workers raise this across process-pool boundaries (--jobs N);
        # a bad __reduce__ would kill the pool instead of reporting
        import pickle

        report = validate_schedule(Schedule([op(0, start=-1.0)]))
        error = ValidationError(report)
        restored = pickle.loads(pickle.dumps(error))
        assert isinstance(restored, ValidationError)
        assert restored.report.count("structure") == 1
        assert str(restored) == str(error)


class TestCompiledSchedules:
    """End-to-end: real compiled schedules validate clean."""

    @pytest.mark.parametrize("name,r,f", [
        ("ising_2d_2x2", 3, 1),
        ("heisenberg_2d_2x2", 3, 2),
        ("fermi_hubbard_2d_2x2", 4, 1),
    ])
    def test_compile_validates_clean(self, name, r, f):
        circuit = load_benchmark(name)
        config = CompilerConfig(routing_paths=r, num_factories=f)
        result = FaultTolerantCompiler(config).compile(circuit, validate=True)
        report = validate_result(result, circuit, config)
        assert report.ok, report.summary()
        # the magic-state audit actually ran
        assert report.checks["magic-state"] == result.t_states > 0

    def test_barrier_circuit_validates_clean(self):
        circuit = Circuit(4, name="barriered")
        circuit.h(0).cx(0, 1).t(1)
        circuit.barrier()
        circuit.cx(2, 3).t(3).h(2)
        config = CompilerConfig(routing_paths=3)
        result = FaultTolerantCompiler(config).compile(circuit, validate=True)
        assert validate_result(result, circuit, config).ok

    def test_env_var_forces_validation(self, monkeypatch):
        # REPRO_VALIDATE turns every compile into a debug assertion
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        circuit = load_benchmark("ising_2d_2x2")
        config = CompilerConfig(routing_paths=3)
        result = FaultTolerantCompiler(config).compile(circuit)
        assert result.schedule.makespan > 0

    def test_schedule_validate_method_delegates(self):
        circuit = load_benchmark("ising_2d_2x2")
        result = FaultTolerantCompiler(CompilerConfig()).compile(circuit)
        result.schedule.validate()  # must not raise


class TestPortDropRegression:
    """The bug the validator surfaced: a magic-state consume whose drop
    cell is the factory port itself did not synchronise on the port's
    cell lock, overlapping route hops of other states (raw schedules
    only — resimulation silently re-serialised the conflict)."""

    def test_raw_schedule_has_no_cell_conflicts(self):
        circuit = load_benchmark("fermi_hubbard_2d_4x4")
        config = CompilerConfig(routing_paths=2, num_factories=2)
        layout = build_layout(circuit.num_qubits, 2)
        placement = choose_mapping(circuit, layout, config.mapping)
        ports = assign_factory_ports(layout, 2)
        scheduler = LatticeSurgeryScheduler(
            grid=layout.grid,
            instruction_set=config.instruction_set,
            factory_ports=ports,
            factory_config=config.factory_config(),
            synthesis=config.synthesis,
            lookahead=config.lookahead,
        )
        raw = scheduler.run(circuit, placement)
        report = validate_schedule(raw, circuit=circuit)
        assert report.count("cell-conflict") == 0, report.summary()

    def test_consume_ops_are_factory_tagged(self):
        circuit = load_benchmark("ising_2d_2x2")
        config = CompilerConfig(routing_paths=3, num_factories=2)
        result = FaultTolerantCompiler(config).compile(circuit)
        tagged = [
            o for o in result.schedule.ops
            if o.kind == "gate" and o.magic_factory() is not None
        ]
        assert len(tagged) == result.t_states
        assert all(0 <= o.magic_factory() < 2 for o in tagged)
