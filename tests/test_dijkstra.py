"""Unit tests for the weighted Dijkstra router (Eq. 1 cost)."""

import pytest

from repro.arch.grid import CellRole, Grid
from repro.routing.dijkstra import (
    NoPathError,
    RoutingRequest,
    bus_cells_adjacent_to,
    find_path,
    find_path_to_any,
    reachable_free_cells,
)


@pytest.fixture
def grid():
    return Grid(5, 5)


class TestBasicPaths:
    def test_trivial_path(self, grid):
        path = find_path(grid, RoutingRequest((1, 1), (1, 1)))
        assert path.num_moves == 0

    def test_straight_path_length(self, grid):
        path = find_path(grid, RoutingRequest((0, 0), (0, 4)))
        assert path.num_moves == 4
        assert path.occupied_crossings == 0

    def test_l_path_length(self, grid):
        path = find_path(grid, RoutingRequest((0, 0), (3, 2)))
        assert path.num_moves == 5

    def test_out_of_grid_rejected(self, grid):
        with pytest.raises(NoPathError):
            find_path(grid, RoutingRequest((0, 0), (9, 9)))


class TestPenalty:
    def test_detour_around_occupied(self, grid):
        # Wall of data across the middle except one gap at column 4.  With
        # the default Eq. 1 weights the short crossing wins (cost 8 < 12);
        # a higher penalty weight makes the router take the free detour.
        for col in range(4):
            grid.place(col + 100, (2, col))
        direct = find_path(grid, RoutingRequest((0, 0), (4, 0)))
        assert direct.occupied_crossings == 1
        detour = find_path(
            grid, RoutingRequest((0, 0), (4, 0), penalty_weight=5)
        )
        assert detour.occupied_crossings == 0
        assert detour.num_moves > 4  # went around the wall

    def test_crossing_when_cheaper(self, grid):
        # Full wall: crossing is the only option.
        for col in range(5):
            grid.place(col + 100, (2, col))
        path = find_path(grid, RoutingRequest((0, 0), (4, 0)))
        assert path.occupied_crossings == 1

    def test_forbidden_when_disallowed(self, grid):
        for col in range(5):
            grid.place(col + 100, (2, col))
        with pytest.raises(NoPathError):
            find_path(
                grid, RoutingRequest((0, 0), (4, 0), allow_occupied=False)
            )

    def test_penalty_weight_prefers_longer_detours(self, grid):
        # Two walls with a long way around: low weight cuts through,
        # high weight pays more length to cross fewer qubits.
        for col in range(4):
            grid.place(col + 100, (1, col))
        for col in range(1, 5):
            grid.place(col + 200, (3, col))
        direct = find_path(
            grid, RoutingRequest((0, 0), (4, 4), penalty_weight=1)
        )
        cautious = find_path(
            grid, RoutingRequest((0, 0), (4, 4), penalty_weight=50)
        )
        assert cautious.occupied_crossings <= direct.occupied_crossings

    def test_avoid_cells(self, grid):
        request = RoutingRequest((0, 0), (0, 4), avoid=frozenset({(0, 2)}))
        path = find_path(grid, request)
        assert (0, 2) not in path.cells

    def test_endpoints_not_penalised(self, grid):
        grid.place(9, (0, 4))  # destination itself occupied
        path = find_path(grid, RoutingRequest((0, 0), (0, 4)))
        assert path.occupied_crossings == 0


class TestFactoryRoles:
    def test_factory_cells_block(self, grid):
        for row in range(5):
            grid.set_role((row, 2), CellRole.FACTORY)
        with pytest.raises(NoPathError):
            find_path(grid, RoutingRequest((0, 0), (0, 4)))

    def test_port_cells_pass(self, grid):
        for row in range(5):
            grid.set_role((row, 2), CellRole.FACTORY)
        grid.set_role((0, 2), CellRole.PORT)
        path = find_path(grid, RoutingRequest((0, 0), (0, 4)))
        assert (0, 2) in path.cells


class TestMultiGoal:
    def test_picks_cheapest_goal(self, grid):
        path = find_path_to_any(grid, (0, 0), {(4, 4), (0, 2)})
        assert path.destination == (0, 2)

    def test_empty_goals_rejected(self, grid):
        with pytest.raises(NoPathError):
            find_path_to_any(grid, (0, 0), set())

    def test_unreachable_goals(self, grid):
        for row in range(5):
            grid.set_role((row, 2), CellRole.FACTORY)
        with pytest.raises(NoPathError):
            find_path_to_any(grid, (0, 0), {(0, 4)})


class TestReachability:
    def test_reachable_free_cells_sorted_by_distance(self, grid):
        grid.place(1, (2, 2))
        cells = reachable_free_cells(grid, (2, 2), max_distance=2)
        distances = [d for d, __ in cells]
        assert distances == sorted(distances)
        assert all(d <= 2 for d in distances)

    def test_bus_cells_adjacent(self, grid):
        grid.set_role((1, 1), CellRole.DATA)
        grid.place(5, (1, 1))
        adjacent = bus_cells_adjacent_to(grid, (1, 1))
        assert adjacent == {(0, 1), (2, 1), (1, 0), (1, 2)}
