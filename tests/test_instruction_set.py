"""Instruction-set latency model tests (paper Fig. 7)."""

import math

import pytest

from repro.arch.instruction_set import IN_PLACE, NEEDS_ANCILLA, InstructionSet
from repro.ir import gates as g


class TestPaperLatencies:
    """The Fig. 7 numbers are load-bearing for every experiment."""

    def test_fig7_values(self):
        isa = InstructionSet.paper()
        assert isa.duration(g.t(0)) == 2.5
        assert isa.duration(g.cx(0, 1)) == 2.0
        assert isa.duration(g.h(0)) == 3.0
        assert isa.duration(g.Gate(g.MOVE, (0,))) == 1.0
        assert isa.duration(g.s(0)) == 1.5
        assert isa.distill == 11.0

    def test_paulis_are_free(self):
        isa = InstructionSet.paper()
        assert isa.duration(g.x(0)) == 0.0
        assert isa.duration(g.z(0)) == 0.0

    def test_clifford_rz_is_s_like(self):
        isa = InstructionSet.paper()
        assert isa.duration(g.rz(math.pi / 2, 0)) == 1.5

    def test_t_like_rz_scales_with_states(self):
        isa = InstructionSet.paper()
        assert isa.duration(g.rz(0.3, 0), t_states=4) == 10.0

    def test_surgery_primitives(self):
        isa = InstructionSet.paper()
        assert isa.duration(g.Gate(g.MZZ, (0, 1))) == 1.0
        assert isa.duration(g.Gate(g.MXX, (0, 1))) == 1.0

    def test_barrier_costs_nothing(self):
        isa = InstructionSet.paper()
        assert isa.duration(g.Gate(g.BARRIER, (0,))) == 0.0

    def test_measure_latency(self):
        assert InstructionSet.paper().duration(g.measure(0)) == 1.0


class TestUnitCost:
    def test_every_op_costs_one(self):
        isa = InstructionSet.unit()
        for gate in (g.h(0), g.cx(0, 1), g.t(0), g.s(0)):
            assert isa.duration(gate) == 1.0

    def test_distillation_keeps_real_value(self):
        assert InstructionSet.unit().distill == 11.0


class TestVariants:
    def test_with_distill_time(self):
        isa = InstructionSet.paper().with_distill_time(5.0)
        assert isa.distill == 5.0
        assert isa.cnot == 2.0  # everything else untouched

    def test_with_distill_validation(self):
        with pytest.raises(ValueError):
            InstructionSet.paper().with_distill_time(0.0)

    def test_duration_table_covers_core_gates(self):
        table = InstructionSet.paper().duration_table()
        for name in (g.H, g.CX, g.T, g.MOVE, g.MEASURE):
            assert name in table


class TestPlacementSets:
    def test_h_needs_ancilla(self):
        assert g.H in NEEDS_ANCILLA
        assert g.SX in NEEDS_ANCILLA

    def test_s_in_place(self):
        assert g.S in IN_PLACE
        assert g.MEASURE in IN_PLACE
