"""Regression tests locking in the Eq. 1 routing-cost semantics.

The Dijkstra core has been rewritten for speed (flat arrays, single-pass
multi-goal search, path caching); these tests pin down the behavioural
contract so any future rewrite is provably behaviour-preserving:

* path cost is ``d * (1 + p)`` — length times one plus weighted crossings;
* the source and destination cells never contribute to the penalty;
* ``avoid`` is honoured everywhere, including at the destination;
* the multi-goal searches agree exactly with a goal-by-goal sweep.
"""

import random

import pytest

from repro.arch.grid import CellRole, Grid
from repro.routing.dijkstra import (
    NoPathError,
    RoutingRequest,
    find_path,
    find_path_to_any,
    find_paths_to_all,
)


@pytest.fixture
def grid():
    return Grid(6, 6)


class TestCostFormula:
    def test_unobstructed_cost_equals_length(self, grid):
        path = find_path(grid, RoutingRequest((0, 0), (0, 5)))
        assert path.cost == 5.0
        assert path.occupied_crossings == 0

    def test_each_crossing_multiplies_cost(self, grid):
        # Walls across rows 2 and 4 force two crossings on any route.
        for col in range(6):
            grid.place(100 + col, (2, col))
            grid.place(200 + col, (4, col))
        path = find_path(grid, RoutingRequest((0, 0), (5, 0)))
        assert path.occupied_crossings == 2
        assert path.cost == path.num_moves * (1 + 2)

    def test_penalty_weight_scales_crossings(self, grid):
        for col in range(6):
            grid.place(100 + col, (2, col))
        path = find_path(
            grid, RoutingRequest((0, 0), (5, 0), penalty_weight=7)
        )
        assert path.occupied_crossings == 7  # one crossing, weighted 7
        assert path.cost == path.num_moves * (1 + 7)

    def test_cost_is_minimal_product(self, grid):
        # A single blocker with room to detour: the router must take the
        # detour when (d+2)*1 < d*2, i.e. for any route longer than 2.
        grid.place(99, (0, 2))
        path = find_path(grid, RoutingRequest((0, 0), (0, 4)))
        assert path.occupied_crossings == 0
        assert path.cost == 6.0  # 4 straight + 2 detour steps


class TestEndpointExemption:
    def test_occupied_source_not_penalised(self, grid):
        grid.place(7, (0, 0))
        path = find_path(grid, RoutingRequest((0, 0), (0, 3)))
        assert path.occupied_crossings == 0
        assert path.cost == 3.0

    def test_occupied_destination_not_penalised(self, grid):
        grid.place(7, (0, 3))
        path = find_path(grid, RoutingRequest((0, 0), (0, 3)))
        assert path.occupied_crossings == 0
        assert path.cost == 3.0

    def test_occupied_destination_reachable_when_occupied_forbidden(self, grid):
        # allow_occupied=False forbids interior crossings but the
        # destination itself (the consumer) must stay reachable.
        grid.place(7, (0, 3))
        path = find_path(
            grid, RoutingRequest((0, 0), (0, 3), allow_occupied=False)
        )
        assert path.destination == (0, 3)

    def test_interior_occupied_blocks_when_forbidden(self, grid):
        for row in range(6):
            grid.place(100 + row, (row, 2))
        with pytest.raises(NoPathError):
            find_path(
                grid, RoutingRequest((0, 0), (0, 4), allow_occupied=False)
            )


class TestAvoid:
    def test_avoid_honoured_in_interior(self, grid):
        path = find_path(
            grid, RoutingRequest((0, 0), (0, 4), avoid=frozenset({(0, 2)}))
        )
        assert (0, 2) not in path.cells

    def test_avoid_honoured_at_destination(self, grid):
        with pytest.raises(NoPathError):
            find_path(
                grid,
                RoutingRequest((0, 0), (0, 4), avoid=frozenset({(0, 4)})),
            )

    def test_avoided_goal_skipped_in_multi_goal(self, grid):
        path = find_path_to_any(
            grid, (0, 0), {(0, 2), (5, 5)}, avoid={(0, 2)}
        )
        assert path.destination == (5, 5)


def _random_grid(rng: random.Random) -> Grid:
    grid = Grid(rng.randint(4, 7), rng.randint(4, 7))
    cells = [(r, c) for r in range(grid.rows) for c in range(grid.cols)]
    rng.shuffle(cells)
    for i, pos in enumerate(cells[: rng.randint(0, len(cells) // 2)]):
        grid.place(i, pos)
    for pos in cells[len(cells) // 2: len(cells) // 2 + 3]:
        grid.set_role(pos, CellRole.FACTORY)
    return grid


def _sweep_reference(grid, source, goals, avoid, allow_occupied, weight):
    """The pre-rewrite goal-by-goal implementation of find_path_to_any."""
    best = None
    for goal in sorted(goals):
        try:
            candidate = find_path(
                grid,
                RoutingRequest(
                    source=source,
                    destination=goal,
                    avoid=frozenset(avoid),
                    allow_occupied=allow_occupied,
                    penalty_weight=weight,
                ),
            )
        except NoPathError:
            continue
        if best is None or candidate.cost < best.cost:
            best = candidate
    return best


class TestMultiGoalEquivalence:
    """The single-pass searches must match a per-goal sweep exactly."""

    @pytest.mark.parametrize("seed", range(30))
    def test_find_path_to_any_matches_sweep(self, seed):
        rng = random.Random(seed)
        grid = _random_grid(rng)
        free = [
            (r, c)
            for r in range(grid.rows)
            for c in range(grid.cols)
            if grid.routable((r, c))
        ]
        source = rng.choice(free)
        goals = set(rng.sample(free, min(len(free), rng.randint(1, 5))))
        avoid = set(rng.sample(free, min(len(free), rng.randint(0, 2))))
        allow = rng.random() < 0.5
        weight = rng.choice([1, 2, 8])
        expected = _sweep_reference(grid, source, goals, avoid, allow, weight)
        if expected is None:
            with pytest.raises(NoPathError):
                find_path_to_any(
                    grid, source, goals, avoid=avoid,
                    allow_occupied=allow, penalty_weight=weight,
                )
            return
        actual = find_path_to_any(
            grid, source, goals, avoid=avoid,
            allow_occupied=allow, penalty_weight=weight,
        )
        assert actual.cost == expected.cost
        assert actual.destination == expected.destination
        assert actual.cells == expected.cells
        assert actual.occupied_crossings == expected.occupied_crossings

    @pytest.mark.parametrize("seed", range(30))
    def test_find_paths_to_all_matches_per_goal_search(self, seed):
        rng = random.Random(seed + 1000)
        grid = _random_grid(rng)
        free = [
            (r, c)
            for r in range(grid.rows)
            for c in range(grid.cols)
            if grid.routable((r, c))
        ]
        source = rng.choice(free)
        goals = set(rng.sample(free, min(len(free), rng.randint(1, 6))))
        allow = rng.random() < 0.5
        weight = rng.choice([1, 8, 32])
        batched = find_paths_to_all(
            grid, source, goals, allow_occupied=allow, penalty_weight=weight
        )
        for goal in goals:
            try:
                expected = find_path(
                    grid,
                    RoutingRequest(
                        source=source,
                        destination=goal,
                        allow_occupied=allow,
                        penalty_weight=weight,
                    ),
                )
            except NoPathError:
                assert goal not in batched
                continue
            assert goal in batched
            assert batched[goal].cells == expected.cells
            assert batched[goal].cost == expected.cost
            assert batched[goal].occupied_crossings == expected.occupied_crossings


class TestPathCache:
    def test_same_epoch_queries_hit_cache(self, grid):
        request = RoutingRequest((0, 0), (3, 3))
        first = find_path(grid, request)
        second = find_path(grid, request)
        assert second is first  # cached object, same epoch

    def test_mutation_invalidates_cache(self, grid):
        request = RoutingRequest((0, 0), (0, 3))
        first = find_path(grid, request)
        grid.place(9, (0, 1))
        second = find_path(grid, request)
        assert second is not first
        assert (0, 1) not in second.cells or second.occupied_crossings > 0

    def test_rollback_restores_cache_validity(self, grid):
        request = RoutingRequest((0, 0), (3, 3))
        first = find_path(grid, request)
        with grid.scratch() as scratch:
            scratch.place(5, (1, 1))
            during = find_path(scratch, request)
            assert during is not first
        after = find_path(grid, request)
        assert after is first  # epoch restored, cache valid again

    def test_no_path_results_cached_and_reraised(self, grid):
        for row in range(6):
            grid.set_role((row, 2), CellRole.FACTORY)
        request = RoutingRequest((0, 0), (0, 5))
        with pytest.raises(NoPathError):
            find_path(grid, request)
        with pytest.raises(NoPathError):
            find_path(grid, request)
