"""Tests for Pauli algebra — verified against explicit numpy matrices."""

import numpy as np
import pytest

from repro.ir import gates as g
from repro.synthesis.pauli import PauliString

I2 = np.eye(2, dtype=complex)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = (X + Z) / np.sqrt(2)
S = np.diag([1, 1j]).astype(complex)
SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
CX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
CZ = np.diag([1, 1, 1, -1]).astype(complex)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)

LETTER = {"I": I2, "X": X, "Y": Y, "Z": Z}


def to_matrix(p: PauliString) -> np.ndarray:
    out = np.array([[1]], dtype=complex)
    for ch in p.label():
        out = np.kron(out, LETTER[ch])
    return (1j ** p.phase) * out


def embed(mat: np.ndarray, qubits, n: int) -> np.ndarray:
    """Embed a 1- or 2-qubit unitary into an n-qubit operator."""
    if len(qubits) == 1:
        ops = [LETTER["I"]] * n
        ops[qubits[0]] = mat
        out = np.array([[1]], dtype=complex)
        for op in ops:
            out = np.kron(out, op)
        return out
    # Two qubits: permute into adjacent order via explicit basis mapping.
    dim = 2**n
    out = np.zeros((dim, dim), dtype=complex)
    a, b = qubits
    for basis in range(dim):
        bits = [(basis >> (n - 1 - k)) & 1 for k in range(n)]
        sub = 2 * bits[a] + bits[b]
        for sub_out in range(4):
            amp = mat[sub_out, sub]
            if amp == 0:
                continue
            new_bits = list(bits)
            new_bits[a] = sub_out >> 1
            new_bits[b] = sub_out & 1
            idx = sum(bit << (n - 1 - k) for k, bit in enumerate(new_bits))
            out[idx, basis] += amp
    return out


GATE_MATRICES = {
    g.H: H, g.S: S, g.SDG: S.conj().T, g.X: X, g.Y: Y, g.Z: Z,
    g.SX: SX, g.SXDG: SX.conj().T,
    g.CX: CX, g.CZ: CZ, g.SWAP: SWAP,
}


class TestConstruction:
    def test_from_label_roundtrip(self):
        p = PauliString.from_label("XIZY")
        assert p.label() == "XIZY"

    def test_invalid_letter(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XQ")

    def test_identity(self):
        p = PauliString.identity(3)
        assert p.is_identity()
        assert p.weight() == 0

    def test_single(self):
        p = PauliString.single(4, 2, "Y")
        assert p.label() == "IIYI"
        assert p.support() == (2,)

    def test_mismatched_bits_rejected(self):
        with pytest.raises(ValueError):
            PauliString((0, 1), (0,))


class TestAlgebraAgainstNumpy:
    @pytest.mark.parametrize("a", ["XX", "ZI", "YZ", "IY"])
    @pytest.mark.parametrize("b", ["ZZ", "XY", "IX", "YY"])
    def test_product_matches_matrices(self, a, b):
        pa, pb = PauliString.from_label(a), PauliString.from_label(b)
        np.testing.assert_allclose(
            to_matrix(pa * pb), to_matrix(pa) @ to_matrix(pb), atol=1e-12
        )

    @pytest.mark.parametrize("a", ["X", "Y", "Z"])
    @pytest.mark.parametrize("b", ["X", "Y", "Z"])
    def test_commutation_single_qubit(self, a, b):
        pa, pb = PauliString.from_label(a), PauliString.from_label(b)
        expected = np.allclose(
            to_matrix(pa) @ to_matrix(pb), to_matrix(pb) @ to_matrix(pa)
        )
        assert pa.commutes_with(pb) == expected

    def test_commutation_multi_qubit(self):
        xx = PauliString.from_label("XX")
        zz = PauliString.from_label("ZZ")
        zi = PauliString.from_label("ZI")
        assert xx.commutes_with(zz)
        assert not xx.commutes_with(zi)


class TestConjugation:
    @pytest.mark.parametrize("gate_name", [g.H, g.S, g.SDG, g.X, g.Y, g.Z, g.SX, g.SXDG])
    @pytest.mark.parametrize("label", ["X", "Y", "Z"])
    def test_single_qubit_conjugation(self, gate_name, label):
        p = PauliString.from_label(label)
        gate = g.Gate(gate_name, (0,))
        result = p.conjugated_by(gate)
        expected = GATE_MATRICES[gate_name] @ to_matrix(p) @ GATE_MATRICES[gate_name].conj().T
        np.testing.assert_allclose(to_matrix(result), expected, atol=1e-12)

    @pytest.mark.parametrize("gate_name", [g.CX, g.CZ, g.SWAP])
    @pytest.mark.parametrize(
        "label", ["XI", "IX", "ZI", "IZ", "YI", "IY", "XX", "YZ", "ZY", "YY"]
    )
    def test_two_qubit_conjugation(self, gate_name, label):
        p = PauliString.from_label(label)
        gate = g.Gate(gate_name, (0, 1))
        result = p.conjugated_by(gate)
        mat = GATE_MATRICES[gate_name]
        expected = mat @ to_matrix(p) @ mat.conj().T
        np.testing.assert_allclose(to_matrix(result), expected, atol=1e-12)

    def test_conjugation_on_embedded_qubits(self):
        p = PauliString.from_label("IXZ")
        gate = g.cx(2, 1)
        result = p.conjugated_by(gate)
        mat = embed(CX, (2, 1), 3)
        np.testing.assert_allclose(
            to_matrix(result), mat @ to_matrix(p) @ mat.conj().T, atol=1e-12
        )

    def test_sequence_conjugation(self):
        p = PauliString.from_label("Z")
        result = p.conjugated_by_all([g.h(0), g.s(0)])
        mat = S @ H
        np.testing.assert_allclose(
            to_matrix(result), mat @ to_matrix(p) @ mat.conj().T, atol=1e-12
        )

    def test_non_clifford_rejected(self):
        with pytest.raises(ValueError):
            PauliString.from_label("Z").conjugated_by(g.t(0))
