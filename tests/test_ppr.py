"""Unit tests for the Litinski PPR transpiler."""

import math

import pytest

from repro.ir.circuit import Circuit
from repro.synthesis.ppr import (
    PauliRotation,
    rotation_axes_profile,
    transpile_to_ppr,
)
from repro.synthesis.pauli import PauliString
from repro.workloads import ising_2d


class TestBasicTranspilation:
    def test_pure_t_circuit(self):
        qc = Circuit(1).t(0)
        program = transpile_to_ppr(qc)
        assert program.t_rotation_count == 1
        assert program.rotations[0].pauli.label() == "Z"

    def test_clifford_only_absorbed(self):
        qc = Circuit(2).h(0).s(1).cx(0, 1)
        program = transpile_to_ppr(qc)
        assert program.rotations == []
        assert program.absorbed_cliffords == 3

    def test_h_conjugates_t_axis(self):
        # H then T: pushing T left past H turns its Z axis into X.
        qc = Circuit(1).h(0).t(0)
        program = transpile_to_ppr(qc)
        assert program.rotations[0].pauli.label() == "X"

    def test_cx_spreads_axis(self):
        # CX(0,1) then T on target 1: Z_1 pulls back to Z_0 Z_1.
        qc = Circuit(2).cx(0, 1).t(1)
        program = transpile_to_ppr(qc)
        assert program.rotations[0].pauli.label() == "ZZ"

    def test_t_before_clifford_keeps_axis(self):
        qc = Circuit(1).t(0).h(0)
        program = transpile_to_ppr(qc)
        assert program.rotations[0].pauli.label() == "Z"

    def test_clifford_rz_absorbed(self):
        qc = Circuit(1).rz(math.pi / 2, 0).t(0)
        program = transpile_to_ppr(qc)
        assert program.t_rotation_count == 1

    def test_generic_rotation_kept(self):
        qc = Circuit(1).rz(0.3, 0)
        program = transpile_to_ppr(qc)
        assert program.t_rotation_count == 1
        assert program.rotations[0].denominator == 0

    def test_tdg_sign(self):
        qc = Circuit(1).tdg(0)
        program = transpile_to_ppr(qc)
        assert program.rotations[0].theta == pytest.approx(-math.pi / 8)


class TestMeasurements:
    def test_measure_all_default(self):
        program = transpile_to_ppr(Circuit(2).h(0))
        assert len(program.measurements) == 2
        # H flips the Z measurement on qubit 0 into X.
        assert program.measurements[0].pauli.label() == "XI"

    def test_no_measurements_option(self):
        program = transpile_to_ppr(Circuit(2).h(0), measure_all=False)
        assert program.measurements == []


class TestBenchmarks:
    def test_ising_t_count_matches_rz_count(self):
        qc = ising_2d(4)
        program = transpile_to_ppr(qc)
        assert program.t_rotation_count == qc.count("rz")

    def test_axes_have_no_imaginary_phase(self):
        program = transpile_to_ppr(ising_2d(2))
        for rotation in program.rotations:
            assert rotation.pauli.phase == 0

    def test_max_weight_bounded_by_qubits(self):
        qc = ising_2d(2)
        program = transpile_to_ppr(qc)
        assert 1 <= program.max_weight() <= qc.num_qubits

    def test_summary_text(self):
        text = transpile_to_ppr(ising_2d(2)).summary()
        assert "rotations" in text


class TestRotationProfile:
    def test_profile_counts(self):
        program = transpile_to_ppr(Circuit(2).t(0).cx(0, 1).t(1))
        pure_z, gaps, other = rotation_axes_profile(program)
        assert pure_z + gaps + other == program.t_rotation_count

    def test_trivial_rotation_detection(self):
        rotation = PauliRotation(PauliString.from_label("Z"), 0.0, 0)
        assert rotation.is_trivial
