"""Layout tests — including the paper's exact qubit counts."""

import pytest

from repro.arch.grid import CellRole
from repro.arch.layout import (
    LayoutError,
    assign_factory_ports,
    build_layout,
    layout_family,
    max_routing_paths,
    paper_r_values,
)


class TestPaperQubitCounts:
    """The 10x10 layout family must reproduce Sec. VII's numbers."""

    @pytest.mark.parametrize(
        "r,expected",
        [(2, 121), (3, 132), (4, 144), (5, 156), (6, 169), (10, 225), (22, 441)],
    )
    def test_total_qubits_10x10(self, r, expected):
        assert build_layout(100, r).total_qubits == expected

    def test_max_routing_paths(self):
        assert max_routing_paths(10) == 22

    def test_r4_ratio_about_two_to_one(self):
        layout = build_layout(100, 4)
        assert 2.0 <= layout.data_to_ancilla_ratio <= 2.5

    def test_r22_about_three_ancilla_per_data(self):
        layout = build_layout(100, 22)
        assert layout.num_bus / 100 >= 3.0


class TestConstruction:
    def test_data_slot_count(self):
        layout = build_layout(16, 4)
        assert len(layout.data_slots) == 16

    def test_data_slots_have_data_role(self):
        layout = build_layout(16, 4)
        for pos in layout.data_slots:
            assert layout.grid.role(pos) == CellRole.DATA

    def test_r_exceeding_limit_rejected(self):
        with pytest.raises(LayoutError):
            build_layout(16, max_routing_paths(4) + 1)

    def test_zero_data_rejected(self):
        with pytest.raises(LayoutError):
            build_layout(0, 2)

    def test_zero_paths_rejected(self):
        with pytest.raises(LayoutError):
            build_layout(16, 0)

    def test_non_square_counts_supported(self):
        layout = build_layout(12, 4)
        assert len(layout.data_slots) == 12

    def test_r1_single_edge(self):
        layout = build_layout(16, 1)
        # only the top row is bus
        assert layout.grid.rows == 5
        assert layout.grid.cols == 4

    def test_internal_paths_separate_columns(self):
        # r=6 on 4x4: internal column and row inserted.
        layout = build_layout(16, 6)
        cols = {pos[1] for pos in layout.data_slots}
        assert len(cols) == 4
        full = set(range(layout.grid.cols))
        assert cols != full  # some columns are pure bus


class TestPorts:
    def test_default_ports_on_boundary_bus(self):
        layout = build_layout(16, 4)
        for pos in layout.port_positions:
            assert layout.grid.role(pos) == CellRole.BUS

    def test_assign_spreads_ports(self):
        layout = build_layout(100, 4)
        ports = assign_factory_ports(layout, 4)
        assert len(set(ports)) == 4

    def test_more_factories_than_ring_wraps(self):
        layout = build_layout(4, 2)
        ports = assign_factory_ports(layout, 50)
        assert len(ports) == 50

    def test_zero_factories_rejected(self):
        layout = build_layout(16, 4)
        with pytest.raises(LayoutError):
            assign_factory_ports(layout, 0)


class TestFamilies:
    def test_layout_family_defaults(self):
        family = layout_family(16)
        assert [l.routing_paths for l in family] == list(range(2, 11))

    def test_family_qubits_monotone(self):
        family = layout_family(100)
        totals = [l.total_qubits for l in family]
        assert totals == sorted(totals)

    def test_paper_r_values_clamped(self):
        assert paper_r_values(4) == [3, 4, 6, 10]
        assert paper_r_values(10) == [3, 4, 6, 10, 18, 22]

    def test_describe_mentions_r(self):
        assert "r=4" in build_layout(16, 4).describe()
