"""Sweep engine tests: job identity, dedupe planning, the persistent cache,
process fan-out, and parallel == serial equivalence."""

import json
import random

import pytest

from repro.compiler.config import CompilerConfig
from repro.experiments import ALL_EXPERIMENTS, EXPERIMENT_JOBS, collect_jobs, fig9
from repro.ir.circuit import Circuit
from repro.sweep import (
    CompileCache,
    CompileJob,
    SweepEngine,
    circuit_fingerprint,
    config_fingerprint,
    job_key,
    plan_jobs,
    use_engine,
)
from repro.workloads import ising_2d


def small_circuit(name="c"):
    qc = Circuit(3, name=name)
    return qc.h(0).cx(0, 1).t(1).cx(1, 2)


class TestJobIdentity:
    def test_rebuilt_circuit_same_key(self):
        cfg = CompilerConfig(routing_paths=3)
        assert job_key(small_circuit(), cfg) == job_key(small_circuit(), cfg)
        assert job_key(ising_2d(2), cfg) == job_key(ising_2d(2), cfg)

    def test_gate_change_changes_key(self):
        cfg = CompilerConfig(routing_paths=3)
        assert job_key(small_circuit(), cfg) != job_key(
            small_circuit().t(2), cfg
        )

    def test_param_change_changes_fingerprint(self):
        a = Circuit(1).rz(0.5, 0)
        b = Circuit(1).rz(0.5000001, 0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)

    def test_name_flows_into_identity(self):
        # circuit.name appears in result tables, so renames must miss.
        cfg = CompilerConfig(routing_paths=3)
        assert job_key(small_circuit("a"), cfg) != job_key(small_circuit("b"), cfg)

    def test_config_knobs_change_key(self):
        base = CompilerConfig(routing_paths=3)
        for variant in (
            base.with_(routing_paths=4),
            base.with_(num_factories=2),
            base.with_(lookahead=False),
            base.with_(compute_unit_cost_time=True),
            base.with_(instruction_set=base.instruction_set.with_distill_time(5.0)),
        ):
            assert config_fingerprint(variant) != config_fingerprint(base)
            assert job_key(small_circuit(), variant) != job_key(small_circuit(), base)


class TestPlanner:
    def test_dedupes_preserving_first_seen_order(self):
        cfg3, cfg4 = CompilerConfig(routing_paths=3), CompilerConfig(routing_paths=4)
        c = small_circuit()
        plan = plan_jobs(
            [CompileJob(c, cfg4), CompileJob(c, cfg3), CompileJob(small_circuit(), cfg4)]
        )
        assert plan.requested == 3
        assert len(plan.unique) == 2
        assert plan.duplicates == 1
        assert plan.unique[0].config.routing_paths == 4

    def test_fuzz_against_naive_per_figure_counts(self):
        # Random overlapping "figures": dedupe must compile exactly the
        # number of distinct (circuit, config) points, never more.
        rng = random.Random(7)
        circuits = [small_circuit(f"m{i}") for i in range(3)]
        for _ in range(25):
            figures = []
            for _f in range(rng.randint(1, 5)):
                figures.append(
                    [
                        CompileJob(
                            circuits[rng.randrange(3)],
                            CompilerConfig(
                                routing_paths=rng.choice([2, 3, 4]),
                                num_factories=rng.choice([1, 2]),
                            ),
                        )
                        for _ in range(rng.randint(1, 8))
                    ]
                )
            flat = [job for fig in figures for job in fig]
            naive = sum(len(fig) for fig in figures)
            plan = plan_jobs(flat)
            assert plan.requested == naive
            assert len(plan.unique) == len({job.key for job in flat})
            assert len(plan.unique) + plan.duplicates == naive

    def test_cross_figure_overlap_is_deduped(self):
        jobs = collect_jobs(["fig9", "fig11", "fig12"], fast=True)
        plan = plan_jobs(jobs)
        assert plan.duplicates > 0  # the figures share sweep points
        assert len(plan.unique) < len(jobs)


class TestCompileCache:
    def test_store_load_roundtrip(self, tmp_path):
        from repro.compiler.pipeline import compile_circuit

        cache = CompileCache(tmp_path)
        result = compile_circuit(ising_2d(2), routing_paths=3)
        key = job_key(ising_2d(2), CompilerConfig(routing_paths=3))
        cache.store(key, result)
        assert cache.contains(key)
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.schedule.ops == result.schedule.ops
        assert loaded.execution_time == result.execution_time
        assert loaded.summary() == result.summary()
        assert cache.hits == 1 and cache.stores == 1

    def test_missing_and_corrupt_entries_miss(self, tmp_path):
        cache = CompileCache(tmp_path)
        assert cache.load("0" * 64) is None
        path = cache._path("1" * 64)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.load("1" * 64) is None
        assert cache.misses == 2


class TestSweepEngine:
    def test_counters_memo_then_disk(self, tmp_path):
        c, cfg = ising_2d(2), CompilerConfig(routing_paths=3)
        engine = SweepEngine(cache=CompileCache(tmp_path))
        engine.compile(c, cfg)
        engine.compile(c, cfg)
        assert engine.counters.as_dict() == {
            "memo_hits": 1, "disk_hits": 0, "remote_hits": 0, "compiled": 1,
        }
        # a fresh engine over the same cache dir performs zero compilations
        warm = SweepEngine(cache=CompileCache(tmp_path))
        warm.compile(c, cfg)
        assert warm.counters.as_dict() == {
            "memo_hits": 0, "disk_hits": 1, "remote_hits": 0, "compiled": 0,
        }

    def test_use_cache_false_bypasses_memo(self):
        engine = SweepEngine()
        c, cfg = ising_2d(2), CompilerConfig(routing_paths=3)
        engine.compile(c, cfg, use_cache=False)
        engine.compile(c, cfg, use_cache=False)
        assert engine.counters.compiled == 2
        assert engine.counters.memo_hits == 0

    def test_parallel_prefetch_matches_serial_results(self, tmp_path):
        jobs = fig9.jobs(fast=True, models=["ising"])
        serial = SweepEngine(jobs=1)
        serial.prefetch(jobs)
        parallel = SweepEngine(jobs=2, cache=CompileCache(tmp_path))
        parallel.prefetch(jobs)
        assert parallel.counters.compiled == serial.counters.compiled
        for job in plan_jobs(jobs).unique:
            a = serial.compile(job.circuit, job.config)
            b = parallel.compile(job.circuit, job.config)
            assert a.schedule.ops == b.schedule.ops
            assert a.execution_time == b.execution_time
            assert a.stats == b.stats


class TestParallelSerialEquivalence:
    def test_fig9_fast_identical_tables(self, tmp_path):
        serial = fig9.run(fast=True, models=["ising"])
        engine = SweepEngine(jobs=2, cache=CompileCache(tmp_path))
        with use_engine(engine):
            engine.prefetch(fig9.jobs(fast=True, models=["ising"]))
            parallel = fig9.run(fast=True, models=["ising"])
        assert parallel.columns == serial.columns
        assert parallel.rows == serial.rows
        assert parallel.to_text() == serial.to_text()
        # and a warm re-run resolves every point without compiling
        warm = SweepEngine(jobs=2, cache=CompileCache(tmp_path))
        with use_engine(warm):
            rerun = fig9.run(fast=True, models=["ising"])
        assert rerun.rows == serial.rows
        assert warm.counters.compiled == 0

    @pytest.mark.parametrize("name", ["fig12", "fig14d"])
    def test_declared_jobs_cover_run_exactly(self, name):
        # after prefetching the declared grid, run() must not compile.
        engine = SweepEngine()
        with use_engine(engine):
            engine.prefetch(EXPERIMENT_JOBS[name](True))
            prefetched = engine.counters.compiled
            ALL_EXPERIMENTS[name](True)
        assert engine.counters.compiled == prefetched


class TestResultSerialization:
    def test_compilation_result_roundtrip_is_stable(self):
        from repro.compiler.pipeline import compile_circuit
        from repro.compiler.result import CompilationResult

        result = compile_circuit(
            ising_2d(2),
            routing_paths=3,
            num_factories=2,
            compute_unit_cost_time=True,
        )
        blob = json.dumps(result.to_dict(), sort_keys=True)
        back = CompilationResult.from_dict(json.loads(blob))
        assert back.schedule.ops == result.schedule.ops
        assert back.schedule.makespan == result.schedule.makespan
        assert back.unit_cost_time == result.unit_cost_time
        assert back.total_qubits == result.total_qubits
        assert back.profile == result.profile
        assert back.elimination == result.elimination
        assert back.stats == result.stats
        assert back.summary() == result.summary()
        # byte-stable: serializing the deserialized result is a fixpoint
        assert json.dumps(back.to_dict(), sort_keys=True) == blob

    def test_schedule_roundtrip(self):
        from repro.compiler.pipeline import compile_circuit
        from repro.scheduling.events import Schedule

        schedule = compile_circuit(ising_2d(2), routing_paths=3).schedule
        back = Schedule.from_dict(schedule.to_dict())
        assert back.ops == schedule.ops
        assert back.makespan == schedule.makespan


class TestCompilerRevision:
    def test_revision_is_stable_and_feeds_the_key(self):
        from repro.sweep import compiler_revision

        rev = compiler_revision()
        assert len(rev) == 64 and rev == compiler_revision()
        # the key derives from (schema, version, revision, circuit, config):
        # identical inputs in one process must agree
        cfg = CompilerConfig(routing_paths=3)
        assert job_key(small_circuit(), cfg) == job_key(small_circuit(), cfg)
