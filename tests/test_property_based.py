"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.grid import Grid
from repro.arch.layout import build_layout, max_routing_paths
from repro.ir import gates as g
from repro.ir import qasm
from repro.ir.circuit import Circuit, random_clifford_t
from repro.ir.dag import DagCircuit, ReadyFrontier
from repro.routing.dijkstra import NoPathError, RoutingRequest, find_path
from repro.scheduling.events import Schedule, ScheduledOp
from repro.scheduling.resim import optimize_schedule, resimulate
from repro.synthesis.pauli import PauliString
from repro.workloads.random_programs import (
    random_mixed_stream,
    random_rotation_layers,
)

# -- strategies -------------------------------------------------------------

pauli_labels = st.text(alphabet="IXYZ", min_size=1, max_size=6)
phases = st.integers(min_value=0, max_value=3)


@st.composite
def pauli_strings(draw, num_qubits=None):
    if num_qubits is None:
        label = draw(pauli_labels)
    else:
        label = draw(
            st.text(alphabet="IXYZ", min_size=num_qubits, max_size=num_qubits)
        )
    return PauliString.from_label(label, phase=draw(phases))


@st.composite
def small_circuits(draw):
    num_qubits = draw(st.integers(min_value=2, max_value=6))
    num_gates = draw(st.integers(min_value=0, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_clifford_t(num_qubits, num_gates, seed=seed)


@st.composite
def fuzz_programs(draw):
    """Fuzz-family circuits: full gate set, barriers, angles, measure tails."""
    num_qubits = draw(st.integers(min_value=2, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    if draw(st.booleans()):
        return random_mixed_stream(
            num_qubits,
            draw(st.integers(min_value=0, max_value=30)),
            seed=seed,
            barrier_every=draw(st.sampled_from([None, 3, 7])),
            measure_tail=draw(st.booleans()),
        )
    return random_rotation_layers(
        num_qubits,
        draw(st.integers(min_value=0, max_value=6)),
        seed=seed,
        barrier_between=draw(st.booleans()),
    )


# -- Pauli algebra ----------------------------------------------------------


class TestPauliProperties:
    @given(pauli_strings())
    def test_label_round_trip(self, p):
        assert PauliString.from_label(p.label(), p.phase) == p

    @given(st.data())
    def test_product_associative(self, data):
        n = data.draw(st.integers(min_value=1, max_value=4))
        a = data.draw(pauli_strings(num_qubits=n))
        b = data.draw(pauli_strings(num_qubits=n))
        c = data.draw(pauli_strings(num_qubits=n))
        assert (a * b) * c == a * (b * c)

    @given(st.data())
    def test_self_product_is_identity_shaped(self, data):
        n = data.draw(st.integers(min_value=1, max_value=5))
        a = data.draw(pauli_strings(num_qubits=n))
        square = a * a
        assert square.weight() == 0  # P^2 proportional to I

    @given(st.data())
    def test_commutation_is_symmetric(self, data):
        n = data.draw(st.integers(min_value=1, max_value=5))
        a = data.draw(pauli_strings(num_qubits=n))
        b = data.draw(pauli_strings(num_qubits=n))
        assert a.commutes_with(b) == b.commutes_with(a)

    @given(st.data())
    def test_conjugation_preserves_weight_support_size_under_h(self, data):
        n = data.draw(st.integers(min_value=1, max_value=5))
        a = data.draw(pauli_strings(num_qubits=n))
        q = data.draw(st.integers(min_value=0, max_value=n - 1))
        conj = a.conjugated_by(g.h(q))
        assert conj.weight() == a.weight()

    @given(st.data())
    def test_conjugation_involution_for_self_inverse(self, data):
        n = data.draw(st.integers(min_value=2, max_value=5))
        a = data.draw(pauli_strings(num_qubits=n))
        gate = data.draw(
            st.sampled_from([g.h(0), g.x(1), g.cx(0, 1), g.swap(0, 1)])
        )
        assert a.conjugated_by(gate).conjugated_by(gate) == a


# -- circuits and DAGs --------------------------------------------------------


class TestCircuitProperties:
    @given(small_circuits())
    def test_depth_at_most_gates(self, qc):
        assert qc.depth() <= len(qc)

    @given(small_circuits())
    def test_dag_topological_order_complete(self, qc):
        dag = DagCircuit(qc)
        order = dag.topological_order()
        assert len(order) == len(dag)

    @given(small_circuits())
    def test_frontier_drains_completely(self, qc):
        dag = DagCircuit(qc)
        frontier = ReadyFrontier(dag)
        drained = 0
        while not frontier.exhausted:
            node = frontier.ready_nodes()[0]
            frontier.complete(node.index)
            drained += 1
        assert drained == len(dag)

    @given(small_circuits())
    def test_dag_depth_matches_circuit_depth(self, qc):
        assert DagCircuit(qc).depth() == qc.depth()

    @given(small_circuits())
    def test_qasm_round_trip(self, qc):
        recovered = qasm.loads(qasm.dumps(qc))
        assert recovered.gate_counts() == qc.gate_counts()

    @given(small_circuits())
    def test_inverse_depth_equal(self, qc):
        assert qc.inverse().depth() == qc.depth()


# -- layouts ------------------------------------------------------------------


class TestLayoutProperties:
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=18),
    )
    def test_layout_consistency(self, side, r):
        if r > max_routing_paths(side):
            return
        layout = build_layout(side * side, r)
        assert len(layout.data_slots) == side * side
        assert len(set(layout.data_slots)) == side * side
        assert layout.total_qubits == layout.grid.rows * layout.grid.cols
        assert layout.num_bus == layout.total_qubits - side * side

    @given(st.integers(min_value=2, max_value=8))
    def test_qubits_monotone_in_r(self, side):
        totals = [
            build_layout(side * side, r).total_qubits
            for r in range(1, max_routing_paths(side) + 1)
        ]
        assert totals == sorted(totals)


# -- routing ------------------------------------------------------------------


class TestRoutingProperties:
    @given(st.data())
    @settings(max_examples=40)
    def test_path_endpoints_and_connectivity(self, data):
        rows = data.draw(st.integers(min_value=2, max_value=7))
        cols = data.draw(st.integers(min_value=2, max_value=7))
        grid = Grid(rows, cols)
        src = (
            data.draw(st.integers(0, rows - 1)),
            data.draw(st.integers(0, cols - 1)),
        )
        dst = (
            data.draw(st.integers(0, rows - 1)),
            data.draw(st.integers(0, cols - 1)),
        )
        path = find_path(grid, RoutingRequest(src, dst))
        assert path.source == src
        assert path.destination == dst
        path.validate(grid)
        assert path.num_moves >= Grid.manhattan(src, dst)

    @given(st.data())
    @settings(max_examples=30)
    def test_path_cost_lower_bounded_by_distance(self, data):
        grid = Grid(6, 6)
        occupied = data.draw(
            st.lists(
                st.tuples(st.integers(1, 4), st.integers(1, 4)),
                max_size=8, unique=True,
            )
        )
        for i, pos in enumerate(occupied):
            grid.place(i, pos)
        try:
            path = find_path(grid, RoutingRequest((0, 0), (5, 5)))
        except NoPathError:
            return
        assert path.cost >= Grid.manhattan((0, 0), (5, 5))


# -- schedule resimulation ------------------------------------------------------


class TestResimProperties:
    @given(st.data())
    @settings(max_examples=40)
    def test_resim_preserves_resource_exclusivity(self, data):
        num_ops = data.draw(st.integers(min_value=1, max_value=15))
        ops = []
        for uid in range(num_ops):
            qubits = tuple(
                data.draw(st.sets(st.integers(0, 3), min_size=1, max_size=2))
            )
            ops.append(
                ScheduledOp(
                    uid=uid, kind="gate", name="h", qubits=qubits, cells=(),
                    start=float(data.draw(st.integers(0, 50))),
                    duration=float(data.draw(st.integers(1, 4))),
                    min_start=float(data.draw(st.integers(0, 10))),
                )
            )
        retimed = resimulate(Schedule(ops))
        retimed.validate()
        for op in retimed.ops:
            assert op.start >= op.min_start

    @given(st.data())
    @settings(max_examples=40)
    def test_resim_idempotent(self, data):
        num_ops = data.draw(st.integers(min_value=1, max_value=10))
        ops = [
            ScheduledOp(
                uid=i, kind="gate", name="h",
                qubits=(data.draw(st.integers(0, 2)),), cells=(),
                start=0.0, duration=2.0,
            )
            for i in range(num_ops)
        ]
        once = resimulate(Schedule(ops))
        twice = resimulate(once)
        assert [op.start for op in once.ops] == [op.start for op in twice.ops]


# -- full scheduling-stage optimisation (prune + re-time) ----------------------


@st.composite
def mixed_schedules(draw):
    """Random schedules mixing gates, moves and inverse move pairs."""
    ops = []
    uid = 0
    for _ in range(draw(st.integers(min_value=1, max_value=12))):
        roll = draw(st.integers(0, 2))
        qubit = draw(st.integers(0, 3))
        start = float(draw(st.integers(0, 30)))
        if roll == 0:  # plain gate
            ops.append(
                ScheduledOp(
                    uid=uid, kind="gate", name="h", qubits=(qubit,),
                    cells=((0, qubit),), start=start,
                    duration=float(draw(st.integers(1, 3))),
                    min_start=float(draw(st.integers(0, 10))),
                )
            )
            uid += 1
        else:
            a = (draw(st.integers(0, 3)), draw(st.integers(0, 3)))
            b = (draw(st.integers(0, 3)), draw(st.integers(0, 3)))
            if a == b:
                continue
            ops.append(
                ScheduledOp(
                    uid=uid, kind="move", name=g.MOVE, qubits=(qubit,),
                    cells=(a, b), start=start, duration=1.0,
                )
            )
            uid += 1
            if roll == 2:  # immediately undone: an inverse pair to prune
                ops.append(
                    ScheduledOp(
                        uid=uid, kind="move", name=g.MOVE, qubits=(qubit,),
                        cells=(b, a), start=start + 1.0, duration=1.0,
                    )
                )
                uid += 1
    return Schedule(ops=ops)


class TestOptimizeScheduleProperties:
    @given(mixed_schedules())
    @settings(max_examples=40)
    def test_optimize_schedule_idempotent(self, schedule):
        once, _ = optimize_schedule(schedule)
        twice, second_report = optimize_schedule(once)
        assert [op.to_dict() for op in twice.ops] == [
            op.to_dict() for op in once.ops
        ]
        # a second pass finds nothing left to remove
        assert second_report.moves_removed == 0

    @given(mixed_schedules())
    @settings(max_examples=40)
    def test_optimize_never_worsens_makespan_or_violates_floors(self, schedule):
        optimised, _ = optimize_schedule(schedule)
        baseline = resimulate(schedule)
        assert optimised.makespan <= baseline.makespan + 1e-9
        for op in optimised.ops:
            assert op.start >= op.min_start

    @given(fuzz_programs())
    @settings(max_examples=10, deadline=None)
    def test_optimize_schedule_converges_on_compiled_schedules(self, qc):
        # Re-timing can make a previously separated inverse move pair
        # adjacent, so one pass is not always a fixpoint on real compiled
        # schedules (the pipeline deliberately runs a single pass — its
        # output is the pinned behavioural fingerprint).  What must hold:
        # repeated application converges in a few rounds, monotonically,
        # to a genuinely stable schedule.
        from repro.compiler.pipeline import FaultTolerantCompiler
        from repro.compiler.config import CompilerConfig

        result = FaultTolerantCompiler(
            CompilerConfig(routing_paths=3)
        ).compile(qc)
        schedule = result.schedule
        makespan = schedule.makespan
        for _ in range(5):
            schedule, report = optimize_schedule(schedule)
            assert schedule.makespan <= makespan + 1e-9
            makespan = schedule.makespan
            if report.moves_removed == 0:
                break
        else:
            raise AssertionError("no fixpoint within 5 optimisation rounds")
        again, final_report = optimize_schedule(schedule)
        assert final_report.moves_removed == 0
        assert [op.to_dict() for op in again.ops] == [
            op.to_dict() for op in schedule.ops
        ]


# -- grid scratch/undo ---------------------------------------------------------


def _grid_state(grid):
    """Full observable state: roles, occupancy, positions, epoch."""
    return (
        list(grid._role),
        list(grid._occ),
        dict(grid.placed_qubits()),
        grid.epoch,
    )


@st.composite
def scratch_scripts(draw):
    """A populated grid plus a random mutation script to run in scratch."""
    rows = draw(st.integers(min_value=2, max_value=5))
    cols = draw(st.integers(min_value=2, max_value=5))
    grid = Grid(rows, cols)
    placed = draw(
        st.lists(
            st.tuples(st.integers(0, rows - 1), st.integers(0, cols - 1)),
            max_size=rows * cols - 1, unique=True,
        )
    )
    for qubit, pos in enumerate(placed):
        grid.place(qubit, pos)
    script = draw(
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 10_000)), max_size=12)
    )
    return grid, script


def _apply_script(grid, script):
    """Replay (op-code, raw) pairs as whatever mutations are legal now."""
    from repro.arch.grid import CellRole, GridError

    roles = [CellRole.BUS, CellRole.DATA, CellRole.FACTORY, CellRole.PORT]
    for code, raw in script:
        placed = sorted(grid.placed_qubits())
        all_cells = [(r, c) for r in range(grid.rows) for c in range(grid.cols)]
        free = [p for p in all_cells if grid.occupant(p) is None]
        try:
            if code == 0 and free:
                grid.place(1000 + raw, free[raw % len(free)])
            elif code == 1 and placed:
                grid.remove(placed[raw % len(placed)])
            elif code == 2 and placed and free:
                grid.move(placed[raw % len(placed)], free[raw % len(free)])
            elif code == 3:
                grid.set_role(
                    all_cells[raw % len(all_cells)], roles[raw % len(roles)]
                )
        except GridError:
            pass  # illegal for the current state; the script just skips it


class TestGridScratchProperties:
    @given(scratch_scripts())
    @settings(max_examples=50)
    def test_scratch_rollback_restores_exact_state(self, grid_and_script):
        grid, script = grid_and_script
        before = _grid_state(grid)
        with grid.scratch() as scratch:
            _apply_script(scratch, script)
        assert _grid_state(grid) == before

    @given(scratch_scripts(), scratch_scripts())
    @settings(max_examples=25)
    def test_nested_scratch_rolls_back_lifo(self, outer_case, inner_case):
        grid, outer_script = outer_case
        _, inner_script = inner_case
        before = _grid_state(grid)
        with grid.scratch() as s1:
            _apply_script(s1, outer_script)
            mid = _grid_state(grid)
            with grid.scratch() as s2:
                _apply_script(s2, inner_script)
            assert _grid_state(grid) == mid
        assert _grid_state(grid) == before

    @given(scratch_scripts())
    @settings(max_examples=25)
    def test_epoch_distinguishes_every_distinct_state(self, grid_and_script):
        # inside scratch, any actual mutation must change the epoch; after
        # rollback the entry epoch is restored (same epoch = same state)
        grid, script = grid_and_script
        entry_epoch = grid.epoch
        with grid.scratch() as scratch:
            occ_before = list(scratch._occ)
            roles_before = list(scratch._role)
            _apply_script(scratch, script)
            mutated = (
                occ_before != list(scratch._occ)
                or roles_before != list(scratch._role)
            )
            if mutated:
                assert scratch.epoch != entry_epoch
        assert grid.epoch == entry_epoch


# -- QASM round-trips on fuzz-generated programs -------------------------------


class TestQasmFuzzRoundTrip:
    @given(fuzz_programs())
    @settings(max_examples=50)
    def test_exact_gate_stream_round_trip(self, qc):
        recovered = qasm.loads(qasm.dumps(qc))
        assert recovered.num_qubits == qc.num_qubits
        assert list(recovered.gates) == list(qc.gates)

    @given(fuzz_programs())
    @settings(max_examples=25)
    def test_dumps_is_a_fixpoint(self, qc):
        text = qasm.dumps(qc)
        assert qasm.dumps(qasm.loads(text)) == text

    @given(st.data())
    @settings(max_examples=50)
    def test_angle_round_trip_exact(self, data):
        theta = data.draw(
            st.one_of(
                st.sampled_from(
                    [math.pi / 4, -math.pi / 2, 3 * math.pi / 4, math.pi / 8,
                     7 * math.pi / 4, 2 * math.pi, 0.3, -1.234567]
                ),
                st.floats(
                    min_value=-10.0, max_value=10.0,
                    allow_nan=False, allow_infinity=False,
                ),
            )
        )
        qc = Circuit(2).rz(theta, 0).rx(theta, 1)
        recovered = qasm.loads(qasm.dumps(qc))
        assert [gate.param for gate in recovered] == [theta, theta]

    def test_zero_sign_round_trips(self):
        # -0.0 == 0.0 under ==, so only a sign check catches an emitter
        # that collapses negative zero to "0"
        qc = Circuit(2).rz(-0.0, 0).rz(0.0, 1)
        recovered = qasm.loads(qasm.dumps(qc))
        signs = [math.copysign(1.0, gate.param) for gate in recovered]
        assert signs == [-1.0, 1.0]

    @given(st.data())
    @settings(max_examples=25)
    def test_barrier_forms_round_trip(self, data):
        qc = Circuit(4)
        qc.h(0)
        qubits = data.draw(
            st.lists(st.integers(0, 3), max_size=4, unique=True)
        )
        qc.barrier(*qubits)  # empty = whole register
        qc.cx(2, 3)
        recovered = qasm.loads(qasm.dumps(qc))
        assert list(recovered.gates) == list(qc.gates)
