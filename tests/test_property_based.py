"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.grid import Grid
from repro.arch.layout import build_layout, max_routing_paths
from repro.ir import gates as g
from repro.ir import qasm
from repro.ir.circuit import Circuit, random_clifford_t
from repro.ir.dag import DagCircuit, ReadyFrontier
from repro.routing.dijkstra import NoPathError, RoutingRequest, find_path
from repro.scheduling.events import Schedule, ScheduledOp
from repro.scheduling.resim import resimulate
from repro.synthesis.pauli import PauliString

# -- strategies -------------------------------------------------------------

pauli_labels = st.text(alphabet="IXYZ", min_size=1, max_size=6)
phases = st.integers(min_value=0, max_value=3)


@st.composite
def pauli_strings(draw, num_qubits=None):
    if num_qubits is None:
        label = draw(pauli_labels)
    else:
        label = draw(
            st.text(alphabet="IXYZ", min_size=num_qubits, max_size=num_qubits)
        )
    return PauliString.from_label(label, phase=draw(phases))


@st.composite
def small_circuits(draw):
    num_qubits = draw(st.integers(min_value=2, max_value=6))
    num_gates = draw(st.integers(min_value=0, max_value=25))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_clifford_t(num_qubits, num_gates, seed=seed)


# -- Pauli algebra ----------------------------------------------------------


class TestPauliProperties:
    @given(pauli_strings())
    def test_label_round_trip(self, p):
        assert PauliString.from_label(p.label(), p.phase) == p

    @given(st.data())
    def test_product_associative(self, data):
        n = data.draw(st.integers(min_value=1, max_value=4))
        a = data.draw(pauli_strings(num_qubits=n))
        b = data.draw(pauli_strings(num_qubits=n))
        c = data.draw(pauli_strings(num_qubits=n))
        assert (a * b) * c == a * (b * c)

    @given(st.data())
    def test_self_product_is_identity_shaped(self, data):
        n = data.draw(st.integers(min_value=1, max_value=5))
        a = data.draw(pauli_strings(num_qubits=n))
        square = a * a
        assert square.weight() == 0  # P^2 proportional to I

    @given(st.data())
    def test_commutation_is_symmetric(self, data):
        n = data.draw(st.integers(min_value=1, max_value=5))
        a = data.draw(pauli_strings(num_qubits=n))
        b = data.draw(pauli_strings(num_qubits=n))
        assert a.commutes_with(b) == b.commutes_with(a)

    @given(st.data())
    def test_conjugation_preserves_weight_support_size_under_h(self, data):
        n = data.draw(st.integers(min_value=1, max_value=5))
        a = data.draw(pauli_strings(num_qubits=n))
        q = data.draw(st.integers(min_value=0, max_value=n - 1))
        conj = a.conjugated_by(g.h(q))
        assert conj.weight() == a.weight()

    @given(st.data())
    def test_conjugation_involution_for_self_inverse(self, data):
        n = data.draw(st.integers(min_value=2, max_value=5))
        a = data.draw(pauli_strings(num_qubits=n))
        gate = data.draw(
            st.sampled_from([g.h(0), g.x(1), g.cx(0, 1), g.swap(0, 1)])
        )
        assert a.conjugated_by(gate).conjugated_by(gate) == a


# -- circuits and DAGs --------------------------------------------------------


class TestCircuitProperties:
    @given(small_circuits())
    def test_depth_at_most_gates(self, qc):
        assert qc.depth() <= len(qc)

    @given(small_circuits())
    def test_dag_topological_order_complete(self, qc):
        dag = DagCircuit(qc)
        order = dag.topological_order()
        assert len(order) == len(dag)

    @given(small_circuits())
    def test_frontier_drains_completely(self, qc):
        dag = DagCircuit(qc)
        frontier = ReadyFrontier(dag)
        drained = 0
        while not frontier.exhausted:
            node = frontier.ready_nodes()[0]
            frontier.complete(node.index)
            drained += 1
        assert drained == len(dag)

    @given(small_circuits())
    def test_dag_depth_matches_circuit_depth(self, qc):
        assert DagCircuit(qc).depth() == qc.depth()

    @given(small_circuits())
    def test_qasm_round_trip(self, qc):
        recovered = qasm.loads(qasm.dumps(qc))
        assert recovered.gate_counts() == qc.gate_counts()

    @given(small_circuits())
    def test_inverse_depth_equal(self, qc):
        assert qc.inverse().depth() == qc.depth()


# -- layouts ------------------------------------------------------------------


class TestLayoutProperties:
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=18),
    )
    def test_layout_consistency(self, side, r):
        if r > max_routing_paths(side):
            return
        layout = build_layout(side * side, r)
        assert len(layout.data_slots) == side * side
        assert len(set(layout.data_slots)) == side * side
        assert layout.total_qubits == layout.grid.rows * layout.grid.cols
        assert layout.num_bus == layout.total_qubits - side * side

    @given(st.integers(min_value=2, max_value=8))
    def test_qubits_monotone_in_r(self, side):
        totals = [
            build_layout(side * side, r).total_qubits
            for r in range(1, max_routing_paths(side) + 1)
        ]
        assert totals == sorted(totals)


# -- routing ------------------------------------------------------------------


class TestRoutingProperties:
    @given(st.data())
    @settings(max_examples=40)
    def test_path_endpoints_and_connectivity(self, data):
        rows = data.draw(st.integers(min_value=2, max_value=7))
        cols = data.draw(st.integers(min_value=2, max_value=7))
        grid = Grid(rows, cols)
        src = (
            data.draw(st.integers(0, rows - 1)),
            data.draw(st.integers(0, cols - 1)),
        )
        dst = (
            data.draw(st.integers(0, rows - 1)),
            data.draw(st.integers(0, cols - 1)),
        )
        path = find_path(grid, RoutingRequest(src, dst))
        assert path.source == src
        assert path.destination == dst
        path.validate(grid)
        assert path.num_moves >= Grid.manhattan(src, dst)

    @given(st.data())
    @settings(max_examples=30)
    def test_path_cost_lower_bounded_by_distance(self, data):
        grid = Grid(6, 6)
        occupied = data.draw(
            st.lists(
                st.tuples(st.integers(1, 4), st.integers(1, 4)),
                max_size=8, unique=True,
            )
        )
        for i, pos in enumerate(occupied):
            grid.place(i, pos)
        try:
            path = find_path(grid, RoutingRequest((0, 0), (5, 5)))
        except NoPathError:
            return
        assert path.cost >= Grid.manhattan((0, 0), (5, 5))


# -- schedule resimulation ------------------------------------------------------


class TestResimProperties:
    @given(st.data())
    @settings(max_examples=40)
    def test_resim_preserves_resource_exclusivity(self, data):
        num_ops = data.draw(st.integers(min_value=1, max_value=15))
        ops = []
        for uid in range(num_ops):
            qubits = tuple(
                data.draw(st.sets(st.integers(0, 3), min_size=1, max_size=2))
            )
            ops.append(
                ScheduledOp(
                    uid=uid, kind="gate", name="h", qubits=qubits, cells=(),
                    start=float(data.draw(st.integers(0, 50))),
                    duration=float(data.draw(st.integers(1, 4))),
                    min_start=float(data.draw(st.integers(0, 10))),
                )
            )
        retimed = resimulate(Schedule(ops))
        retimed.validate()
        for op in retimed.ops:
            assert op.start >= op.min_start

    @given(st.data())
    @settings(max_examples=40)
    def test_resim_idempotent(self, data):
        num_ops = data.draw(st.integers(min_value=1, max_value=10))
        ops = [
            ScheduledOp(
                uid=i, kind="gate", name="h",
                qubits=(data.draw(st.integers(0, 2)),), cells=(),
                start=0.0, duration=2.0,
            )
            for i in range(num_ops)
        ]
        once = resimulate(Schedule(ops))
        twice = resimulate(once)
        assert [op.start for op in once.ops] == [op.start for op in twice.ops]
