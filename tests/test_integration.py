"""Cross-module integration tests: the full pipeline under many configs."""

import math

import pytest

from repro import CompilerConfig, FaultTolerantCompiler, compile_circuit
from repro.arch.instruction_set import InstructionSet
from repro.baselines import circuit_lower_bound, evaluate_all_blocks
from repro.ir import qasm
from repro.ir.circuit import Circuit
from repro.synthesis.clifford_t import SynthesisModel, decompose_rotations
from repro.synthesis.ppr import transpile_to_ppr
from repro.workloads import (
    cdkm_adder,
    fermi_hubbard_2d,
    ghz_qasmbench,
    heisenberg_2d,
    ising_1d,
    ising_2d,
)


class TestAllModelsAllLayouts:
    @pytest.mark.parametrize("builder", [ising_2d, heisenberg_2d, fermi_hubbard_2d])
    @pytest.mark.parametrize("r", [2, 3, 4, 6, 10])
    def test_compiles_and_respects_bound(self, builder, r):
        circuit = builder(4)
        result = compile_circuit(circuit, routing_paths=r, num_factories=1)
        assert result.execution_time >= result.lower_bound
        assert result.time_vs_lower_bound < 3.0
        result.schedule.validate()

    @pytest.mark.parametrize("factories", [1, 2, 3, 4])
    def test_factory_scaling(self, factories):
        result = compile_circuit(
            ising_2d(4), routing_paths=6, num_factories=factories
        )
        assert result.execution_time >= result.lower_bound


class TestWorkloadVariety:
    def test_ghz_chain_compiles_without_t_gates_waiting(self):
        result = compile_circuit(ghz_qasmbench(16), routing_paths=4)
        # the GHZ rz(pi/2) gates are Clifford: no magic states at all
        assert result.t_states == 0
        assert result.lower_bound == 0.0

    def test_1d_snake_mapping_end_to_end(self):
        result = compile_circuit(ising_1d(9), routing_paths=4)
        assert result.execution_time > 0

    def test_real_adder_t_heavy(self):
        circuit = cdkm_adder(2)
        result = compile_circuit(circuit, routing_paths=4)
        assert result.t_states == circuit.t_count()
        assert result.lower_bound == pytest.approx(result.t_states * 11.0)

    def test_qasm_file_to_compilation(self, tmp_path):
        path = str(tmp_path / "prog.qasm")
        qasm.dump_file(ising_2d(2), path)
        circuit = qasm.load_file(path)
        result = compile_circuit(circuit, routing_paths=3)
        assert result.execution_time > 0


class TestSynthesisIntegration:
    def test_decomposed_circuit_compiles_with_same_bound(self):
        original = Circuit(4).rz(math.pi / 4, 0).rz(math.pi / 4, 1)
        lowered = decompose_rotations(original, SynthesisModel.single_t())
        a = compile_circuit(original, routing_paths=4)
        b = compile_circuit(lowered, routing_paths=4)
        assert a.lower_bound == b.lower_bound

    def test_ppr_t_count_matches_compiler_t_states(self):
        circuit = ising_2d(2)
        program = transpile_to_ppr(circuit)
        result = compile_circuit(circuit, routing_paths=4)
        assert program.t_rotation_count == result.t_states


class TestBaselineConsistency:
    def test_every_block_dominates_us_on_time_only(self):
        """Blocks sit at the bound; we pay a small overhead but fewer qubits."""
        circuit = ising_2d(4)
        ours = compile_circuit(circuit, routing_paths=4)
        for block in evaluate_all_blocks(circuit, num_factories=1):
            assert ours.compute_qubits < block.compute_qubits
            assert ours.execution_time >= block.execution_time

    def test_lower_bound_consistent_everywhere(self):
        circuit = heisenberg_2d(2)
        ours = compile_circuit(circuit, routing_paths=4)
        assert ours.lower_bound == pytest.approx(circuit_lower_bound(circuit))


class TestDistillationTimeKnob:
    @pytest.mark.parametrize("distill", [11.0, 5.0, 2.0])
    def test_shorter_distillation_shortens_t_heavy_circuits(self, distill):
        config = CompilerConfig(
            routing_paths=6,
            instruction_set=InstructionSet.paper().with_distill_time(distill),
        )
        result = FaultTolerantCompiler(config).compile(ising_2d(4))
        assert result.lower_bound == pytest.approx(
            result.t_states * distill
        )
        assert result.execution_time >= result.lower_bound

    def test_monotone_in_distill_time(self):
        times = []
        for distill in (11.0, 2.0):
            config = CompilerConfig(
                routing_paths=6,
                instruction_set=InstructionSet.paper().with_distill_time(distill),
            )
            times.append(
                FaultTolerantCompiler(config).compile(ising_2d(4)).execution_time
            )
        assert times[1] <= times[0]


class TestMoveAccounting:
    def test_redundant_elimination_never_hurts(self):
        circuit = ising_2d(4)
        with_pass = compile_circuit(
            circuit, routing_paths=4, eliminate_redundant_moves=True
        )
        without = compile_circuit(
            circuit, routing_paths=4, eliminate_redundant_moves=False
        )
        assert with_pass.execution_time <= without.execution_time + 1e-6

    def test_lookahead_toggle_runs(self):
        on = compile_circuit(ising_2d(2), routing_paths=4, lookahead=True)
        off = compile_circuit(ising_2d(2), routing_paths=4, lookahead=False)
        assert on.execution_time > 0 and off.execution_time > 0

    def test_more_paths_fewer_moves(self):
        dense = compile_circuit(ising_2d(4), routing_paths=3)
        sparse = compile_circuit(ising_2d(4), routing_paths=10)
        assert sparse.schedule.num_moves < dense.schedule.num_moves
