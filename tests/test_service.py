"""Tests for the compile service (repro.service).

Covers the wire protocol, the coalescing broker (deterministically, with
a hand-driven fake engine), and a real TCP server end-to-end: round-trip
fingerprint parity with direct compilation, duplicate-request coalescing,
the zero-compilation warm-cache path, validator rejections surfacing as
structured client errors, and overload shedding.
"""

import asyncio
import json
import threading
from concurrent.futures import Future, ThreadPoolExecutor

import pytest

from repro.compiler.config import CompilerConfig
from repro.compiler.pipeline import FaultTolerantCompiler
from repro.service import (
    Client,
    CompileBroker,
    OverloadedError,
    ServiceError,
    ServiceThread,
)
from repro.service import protocol
from repro.sweep import CompileCache, job_key
from repro.workloads import load_benchmark

WORKLOAD = "ising_2d_2x2"


def tiny_circuit():
    return load_benchmark(WORKLOAD)


def tiny_config(**overrides):
    overrides.setdefault("routing_paths", 3)
    return CompilerConfig(**overrides)


# -- protocol ------------------------------------------------------------------


class TestProtocol:
    def test_line_roundtrip(self):
        message = {"op": "compile", "workload": WORKLOAD, "config": {"routing_paths": 3}}
        assert protocol.decode_line(protocol.encode_line(message)) == message

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_line(b"[1, 2]\n")
        assert err.value.code == protocol.E_BAD_REQUEST

    def test_decode_rejects_bad_json(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.decode_line(b"{nope\n")
        assert err.value.code == protocol.E_BAD_REQUEST

    def test_parse_compile_needs_exactly_one_source(self):
        for message in (
            {"op": "compile"},
            {"op": "compile", "workload": WORKLOAD, "qasm": "OPENQASM 2.0;"},
        ):
            with pytest.raises(protocol.ProtocolError) as err:
                protocol.parse_compile_request(message)
            assert err.value.code == protocol.E_BAD_REQUEST

    def test_parse_compile_unknown_workload(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.parse_compile_request({"op": "compile", "workload": "nope"})
        assert err.value.code == protocol.E_UNKNOWN_WORKLOAD

    def test_parse_compile_bad_qasm(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.parse_compile_request({"op": "compile", "qasm": "not qasm"})
        assert err.value.code == protocol.E_BAD_CIRCUIT

    def test_parse_compile_qasm_source(self):
        source = 'OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n'
        circuit, config, full = protocol.parse_compile_request(
            {"op": "compile", "qasm": source}
        )
        assert circuit.num_qubits == 2
        assert len(circuit) == 2
        assert config == CompilerConfig()
        assert full is False

    def test_parse_config_rejects_unknown_and_invalid_fields(self):
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.parse_config({"bogus": 1})
        assert err.value.code == protocol.E_BAD_CONFIG
        with pytest.raises(protocol.ProtocolError) as err:
            protocol.parse_config({"routing_paths": 0})
        assert err.value.code == protocol.E_BAD_CONFIG

    def test_config_fields_cover_requestable_knobs(self):
        config = protocol.parse_config(
            {"routing_paths": 6, "num_factories": 2, "mapping": "snake",
             "lookahead": False, "eliminate_redundant_moves": False,
             "compute_unit_cost_time": True}
        )
        assert config.routing_paths == 6
        assert config.num_factories == 2
        assert config.mapping == "snake"


class TestMetricsPrimitives:
    def test_percentiles_use_nearest_rank(self):
        from repro.service.batcher import LatencyWindow

        window = LatencyWindow()
        for value in (0.001, 0.002):
            window.add(value)
        assert window.percentile(0.50) == 0.001  # median of 2 = 1st smallest
        window = LatencyWindow()
        for value in range(1, 101):  # 1..100 ms
            window.add(value / 1000.0)
        assert window.percentile(0.50) == 0.050
        assert window.percentile(0.95) == 0.095
        assert LatencyWindow().percentile(0.5) is None

    def test_fingerprint_keys_match_canonical_field_list(self):
        from repro.compiler.result import FINGERPRINT_FIELDS

        result = FaultTolerantCompiler(tiny_config()).compile(tiny_circuit())
        assert tuple(result.fingerprint()) == FINGERPRINT_FIELDS


# -- broker (deterministic, fake engine) ---------------------------------------


class FakeEngine:
    """Hand-driven engine: cache misses, compile futures resolved by tests."""

    def __init__(self):
        self.submitted = []
        self.adopted = []
        self.cache = {}

    def cached_result(self, circuit, config, key=None):
        hit = self.cache.get(key)
        return None if hit is None else (hit, "memo")

    def submit(self, circuit, config):
        future = Future()
        self.submitted.append(future)
        return future

    def adopt(self, circuit, config, payload, key=None):
        self.adopted.append(key)
        return payload  # tests use sentinel payloads, not real results


class TestBroker:
    def test_duplicate_requests_coalesce_onto_one_compile(self):
        engine = FakeEngine()
        circuit, config = tiny_circuit(), tiny_config()

        async def scenario():
            broker = CompileBroker(engine, max_pending=4)
            first = asyncio.ensure_future(broker.resolve(circuit, config))
            # let the leader register its in-flight future and submit
            while not engine.submitted:
                await asyncio.sleep(0)
            second = asyncio.ensure_future(broker.resolve(circuit, config))
            # the second request keys on an executor thread; wait until it
            # has joined the in-flight future before completing the compile
            while broker.metrics.coalesced == 0:
                await asyncio.sleep(0.001)
            assert broker.pending == 1  # one distinct job in flight
            engine.submitted[0].set_result({"sentinel": True})
            return await asyncio.gather(first, second)

        (r1, s1, k1), (r2, s2, k2) = asyncio.run(scenario())
        assert len(engine.submitted) == 1  # the compile ran once
        assert (s1, s2) == ("compiled", "coalesced")
        assert r1 is r2
        assert k1 == k2 == job_key(circuit, config)

    def test_coalesce_during_cache_lookup_window(self):
        # the second identical request must coalesce even while the first
        # is still in its (awaited) cache lookup, before submit happens
        engine = FakeEngine()
        circuit, config = tiny_circuit(), tiny_config()

        async def scenario():
            broker = CompileBroker(engine, max_pending=4)
            first = asyncio.ensure_future(broker.resolve(circuit, config))
            await asyncio.sleep(0)  # leader registered, lookup dispatched
            second = asyncio.ensure_future(broker.resolve(circuit, config))
            while not engine.submitted or broker.metrics.coalesced == 0:
                await asyncio.sleep(0.001)
            engine.submitted[0].set_result({"sentinel": 1})
            results = await asyncio.gather(first, second)
            assert broker.metrics.coalesced == 1
            assert broker.metrics.compiled == 1
            return results

        (_, s1, _), (_, s2, _) = asyncio.run(scenario())
        assert sorted((s1, s2)) == ["coalesced", "compiled"]
        assert len(engine.submitted) == 1

    def test_overload_sheds_distinct_jobs_beyond_bound(self):
        engine = FakeEngine()
        circuit = tiny_circuit()
        config_a, config_b = tiny_config(), tiny_config(routing_paths=4)

        async def scenario():
            broker = CompileBroker(engine, max_pending=1)
            first = asyncio.ensure_future(broker.resolve(circuit, config_a))
            while not engine.submitted:
                await asyncio.sleep(0)
            with pytest.raises(OverloadedError):
                await broker.resolve(circuit, config_b)
            assert broker.metrics.overloaded == 1
            engine.submitted[0].set_result({"sentinel": 1})
            await first

        asyncio.run(scenario())
        assert len(engine.submitted) == 1

    def test_max_pending_zero_sheds_every_cold_compile(self):
        engine = FakeEngine()

        async def scenario():
            broker = CompileBroker(engine, max_pending=0)
            with pytest.raises(OverloadedError):
                await broker.resolve(tiny_circuit(), tiny_config())

        asyncio.run(scenario())
        assert not engine.submitted

    def test_cache_hit_resolves_without_submit(self):
        engine = FakeEngine()
        circuit, config = tiny_circuit(), tiny_config()
        key = job_key(circuit, config)
        engine.cache[key] = {"cached": True}

        async def scenario():
            broker = CompileBroker(engine, max_pending=0)  # hits bypass bound
            result, source, resolved_key = await broker.resolve(circuit, config)
            assert broker.metrics.memo_hits == 1
            return result, source, resolved_key

        result, source, resolved_key = asyncio.run(scenario())
        assert source == "memo"
        assert result == {"cached": True}
        assert resolved_key == key
        assert not engine.submitted

    def test_failed_compile_propagates_to_coalesced_waiter(self):
        engine = FakeEngine()
        circuit, config = tiny_circuit(), tiny_config()

        async def scenario():
            broker = CompileBroker(engine, max_pending=4)
            first = asyncio.ensure_future(broker.resolve(circuit, config))
            while not engine.submitted:
                await asyncio.sleep(0)
            second = asyncio.ensure_future(broker.resolve(circuit, config))
            # wait until the second request has actually coalesced (its
            # key computation runs on an executor thread) before failing
            # the shared compile
            while broker.metrics.coalesced == 0:
                await asyncio.sleep(0.001)
            engine.submitted[0].set_exception(RuntimeError("worker died"))
            for task in (first, second):
                with pytest.raises(RuntimeError, match="worker died"):
                    await task
            # the failed key must not be stuck: a retry submits again
            assert broker.pending == 0

        asyncio.run(scenario())


# -- end-to-end over TCP -------------------------------------------------------


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One shared server (1 worker, fresh disk cache) for the module."""
    cache_dir = tmp_path_factory.mktemp("service-cache")
    with ServiceThread(jobs=1, cache=CompileCache(cache_dir)) as thread:
        yield thread


class TestServiceEndToEnd:
    def test_ping(self, service):
        with Client(*service.address) as client:
            reply = client.ping()
        assert reply["ok"] and reply["protocol"] == protocol.PROTOCOL_VERSION

    def test_round_trip_matches_direct_compilation(self, service):
        circuit, config = tiny_circuit(), tiny_config()
        direct = FaultTolerantCompiler(config).compile(circuit)
        with Client(*service.address) as client:
            reply = client.compile(workload=WORKLOAD, routing_paths=3, full=True)
        # the content-addressed key is byte-identical to a local one
        assert reply.key == job_key(circuit, config)
        # and so is the behavioural fingerprint
        assert reply.fingerprint == {
            "makespan": direct.schedule.makespan,
            "num_ops": len(direct.schedule),
            "num_moves": direct.schedule.num_moves,
            "stats": dict(direct.stats),
        }
        assert reply.summary["execution_time"] == direct.execution_time
        assert reply.result is not None
        assert reply.result.to_dict() == direct.to_dict()

    def test_warm_path_does_zero_compilations(self, service):
        with Client(*service.address) as client:
            cold = client.compile(workload=WORKLOAD, num_factories=2)
            before = client.stats()["engine"]["compiled"]
            warm = client.compile(workload=WORKLOAD, num_factories=2)
            after = client.stats()["engine"]["compiled"]
        assert warm.warm and warm.source == "memo"
        assert warm.key == cold.key
        assert warm.fingerprint == cold.fingerprint
        assert after == before  # zero compilations for the warm request

    def test_disk_cache_survives_server_restart(self, service):
        with Client(*service.address) as client:
            cold = client.compile(workload=WORKLOAD, routing_paths=4)
        # a brand-new server process state on the same cache directory
        with ServiceThread(
            jobs=1, cache=CompileCache(service.service.engine.cache.root)
        ) as fresh:
            with Client(*fresh.address) as client:
                warm = client.compile(workload=WORKLOAD, routing_paths=4)
                stats = client.stats()
        assert warm.source == "disk"
        assert warm.fingerprint == cold.fingerprint
        assert stats["engine"]["compiled"] == 0
        assert stats["compile"]["cache_hits"] == 1

    def test_concurrent_identical_requests_compile_once(self, service):
        config_kwargs = {"routing_paths": 3, "num_factories": 2}

        def one_request(_):
            with Client(*service.address) as client:
                return client.compile(workload=WORKLOAD, **config_kwargs).source

        with ThreadPoolExecutor(max_workers=6) as pool:
            sources = list(pool.map(one_request, range(6)))
        assert sources.count("compiled") == 1
        assert all(s in ("compiled", "coalesced", "memo", "disk") for s in sources)
        with Client(*service.address) as client:
            stats = client.stats()["compile"]
        # across the whole burst exactly one compilation happened
        assert stats["coalesced"] + stats["cache_hits"] >= 5

    def test_unknown_workload_is_structured_error(self, service):
        with Client(*service.address) as client:
            with pytest.raises(ServiceError) as err:
                client.compile(workload="not_a_workload")
        assert err.value.code == protocol.E_UNKNOWN_WORKLOAD

    def test_unknown_op_and_bad_json(self, service):
        with Client(*service.address) as client:
            with pytest.raises(ServiceError) as err:
                client.request({"op": "frobnicate"})
            assert err.value.code == protocol.E_BAD_REQUEST
            # raw garbage on the wire still yields a structured response
            client._sock.sendall(b"this is not json\n")
            line = client._reader.readline()
            stats = client.stats()
        response = json.loads(line)
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.E_BAD_REQUEST
        # client-invented op names must not grow the metrics key space
        assert "frobnicate" not in stats["endpoints"]
        assert stats["endpoints"]["?"]["requests"] >= 2

    def test_request_id_is_echoed(self, service):
        with Client(*service.address) as client:
            reply = client.compile(
                workload=WORKLOAD, routing_paths=3, request_id="req-42"
            )
        assert reply.raw["id"] == "req-42"


class TestServiceOverload:
    def test_overload_surfaces_as_error_code(self):
        # max_pending=0 sheds every cold compile: deterministic overload
        with ServiceThread(jobs=1, max_pending=0) as thread:
            with Client(*thread.address) as client:
                with pytest.raises(ServiceError) as err:
                    client.compile(workload=WORKLOAD)
                stats = client.stats()
        assert err.value.code == protocol.E_OVERLOADED
        assert stats["compile"]["overloaded"] == 1


class TestServiceValidation:
    def test_corrupt_cache_entry_rejected_as_structured_error(self, tmp_path):
        # seed the on-disk cache with a tampered result for this exact job,
        # then ask a validating server for it: the replay validator must
        # reject the disk hit and the client must see the structured error
        circuit, config = tiny_circuit(), tiny_config()
        key = job_key(circuit, config)
        result = FaultTolerantCompiler(config).compile(circuit)
        payload = result.to_dict()
        payload["schedule"]["ops"][0]["start"] = -5.0  # structure violation
        cache_path = tmp_path / key[:2] / f"{key}.json"
        cache_path.parent.mkdir(parents=True)
        # checksum the tampered payload so the entry passes the cache's
        # integrity layer — this test targets replay validation, the layer
        # that catches corruption the checksum cannot (valid JSON, bad plan)
        from repro.sweep.cache import payload_checksum

        cache_path.write_text(
            json.dumps(
                {
                    "key": key,
                    "checksum": payload_checksum(payload),
                    "result": payload,
                }
            )
        )

        with ServiceThread(
            jobs=1, cache=CompileCache(tmp_path), validate=True
        ) as thread:
            with Client(*thread.address) as client:
                with pytest.raises(ServiceError) as err:
                    client.compile(workload=WORKLOAD, routing_paths=3)
                stats = client.stats()
        assert err.value.code == protocol.E_VALIDATION
        assert err.value.details["ok"] is False
        assert any(
            v["code"] == "structure" for v in err.value.details["violations"]
        )
        assert stats["compile"]["validation_failures"] == 1

    def test_validating_server_serves_good_results(self, tmp_path):
        with ServiceThread(
            jobs=1, cache=CompileCache(tmp_path), validate=True
        ) as thread:
            with Client(*thread.address) as client:
                cold = client.compile(workload=WORKLOAD, routing_paths=3)
                warm = client.compile(workload=WORKLOAD, routing_paths=3)
        assert cold.source == "compiled"
        assert warm.warm


class TestServiceShutdown:
    def test_shutdown_op_drains_server(self):
        thread = ServiceThread(jobs=1).start()
        with Client(*thread.address) as client:
            client.compile(workload=WORKLOAD, routing_paths=3)
            client.shutdown()
        thread._thread.join(timeout=30)
        assert not thread._thread.is_alive()

    def test_stats_shape(self):
        with ServiceThread(jobs=1) as thread:
            with Client(*thread.address) as client:
                client.ping()
                stats = client.stats()
        assert stats["cache"] is None
        assert stats["jobs"] == 1
        assert stats["endpoints"]["ping"]["requests"] == 1
        assert stats["endpoints"]["ping"]["p50_ms"] is not None
        assert stats["max_pending"] > 0
