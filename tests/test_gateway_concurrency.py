"""Concurrency, fairness and failure behaviour of the gateway.

Four properties from the production story, each pinned end-to-end:

* **Coalescing** — N clients racing on one content-addressed key cost
  the fleet exactly one compilation (one shard dispatch, one engine
  compile), and every client gets the identical result.
* **Fairness** — per-tenant token buckets mean a greedy tenant drains
  only its own allowance; a polite tenant is admitted throughout, and
  every 429 carries a usable ``Retry-After``.
* **Shard death** — a killed backend is a transparent remap while a
  healthy shard remains, a structured ``no-shards`` failure when none
  does, and a revived fleet serves the resubmitted key.  Never a hang.
* **Abuse** — malformed, oversized and slow-loris HTTP from raw sockets
  is answered with stable structured codes, and the gateway stays up.
"""

import json
import socket
import threading
import time

import pytest

from repro.compiler.config import CompilerConfig
from repro.compiler.pipeline import FaultTolerantCompiler
from repro.gateway import GatewayClient, GatewayCluster, GatewayError, GatewayThread, Keyring
from repro.service import Client as ServiceClient
from repro.service.client import RetryPolicy
from repro.sweep import job_key
from repro.workloads import load_benchmark

WORKLOAD = "ising_2d_2x2"

FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05)


def fleet_compiles(cluster):
    """Total engine compilations across every backend shard."""
    total = 0
    for backend in cluster.backends:
        with ServiceClient(*backend.address) as probe:
            total += probe.stats()["engine"]["compiled"]
    return total


def shard_dispatches(client):
    stats = client.stats()
    return {shard["shard"]: shard["dispatched"] for shard in stats["shards"]}


def wait_for_healthy_shards(client, count, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        healthy = sum(
            1 for shard in client.stats()["shards"] if shard["healthy"]
        )
        if healthy >= count:
            return
        time.sleep(0.05)
    raise AssertionError(f"{count} healthy shards not reached in {timeout}s")


def key_for(workload, **overrides):
    return job_key(load_benchmark(workload), CompilerConfig(**overrides))


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("gateway-herd")
    with GatewayCluster(
        shards=2, jobs=1, cache_dir=cache_dir, retry=FAST_RETRY
    ) as fleet:
        yield fleet


class TestCoalescing:
    def test_client_herd_on_one_key_costs_one_compilation(self, cluster):
        overrides = {"routing_paths": 3, "lookahead": False}
        with GatewayClient(*cluster.address) as probe:
            dispatched_before = sum(shard_dispatches(probe).values())
        compiled_before = fleet_compiles(cluster)

        results, errors = [], []

        def one_client():
            try:
                with GatewayClient(*cluster.address) as herd_client:
                    results.append(
                        herd_client.compile(workload=WORKLOAD, **overrides)
                    )
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        herd = [threading.Thread(target=one_client) for _ in range(10)]
        for thread in herd:
            thread.start()
        for thread in herd:
            thread.join(timeout=60)

        assert not errors
        assert len(results) == 10
        expected_key = key_for(WORKLOAD, **overrides)
        fingerprints = {
            json.dumps(payload["result"]["fingerprint"], sort_keys=True)
            for payload in results
        }
        assert {payload["status"] for payload in results} == {"done"}
        assert {payload["id"] for payload in results} == {expected_key}
        assert len(fingerprints) == 1
        # the whole herd cost the fleet exactly one compile
        assert fleet_compiles(cluster) == compiled_before + 1
        with GatewayClient(*cluster.address) as probe:
            dispatched_after = sum(shard_dispatches(probe).values())
        assert dispatched_after == dispatched_before + 1


class TestFairness:
    @pytest.fixture()
    def limited_gateway(self, tmp_path):
        """A rate-limited two-tenant gateway on a frozen token clock.

        The backend address is a dead port: admission decisions are made
        before any dispatch, so acceptance/shedding is fully observable
        without compiling anything.
        """
        clock = [0.0]
        keyring = Keyring({"key-greedy": "greedy", "key-polite": "polite"})
        with GatewayThread(
            backends=[("127.0.0.1", 1)],
            keyring=keyring,
            rate=5.0,
            burst=3.0,
            clock=lambda: clock[0],
            retry=FAST_RETRY,
            health_interval=0.05,
        ) as thread:
            yield thread, clock

    def test_greedy_tenant_cannot_starve_the_polite_one(self, limited_gateway):
        thread, clock = limited_gateway
        host, port = thread.address

        def submit(api_key, lookahead):
            with GatewayClient(host, port, api_key=api_key) as tenant_client:
                return tenant_client.submit(
                    workload=WORKLOAD, lookahead=lookahead
                )

        # greedy burns its whole burst...
        for _ in range(3):
            submit("key-greedy", True)
        # ...and every further request is 429 with a usable Retry-After
        for _ in range(5):
            with pytest.raises(GatewayError) as err:
                submit("key-greedy", True)
            assert err.value.status == 429
            assert err.value.code == "rate-limited"
            assert err.value.retry_after == pytest.approx(1.0 / 5.0)
        # the polite tenant's bucket is untouched: admitted throughout
        for _ in range(3):
            submit("key-polite", False)
        # refill honours the advertised Retry-After exactly
        clock[0] += 0.2
        submit("key-greedy", True)
        with pytest.raises(GatewayError):
            submit("key-greedy", True)

        with GatewayClient(host, port, api_key="key-polite") as stats_client:
            tenants = stats_client.stats()["gateway"]["tenants"]
        assert tenants["greedy"]["accepted"] == 4
        assert tenants["greedy"]["rate_limited"] == 6
        assert tenants["polite"]["accepted"] == 3
        assert tenants["polite"]["rate_limited"] == 0

    def test_unknown_key_is_401(self, limited_gateway):
        thread, _ = limited_gateway
        with GatewayClient(*thread.address, api_key="key-mallory") as bad:
            with pytest.raises(GatewayError) as err:
                bad.submit(workload=WORKLOAD)
        assert err.value.status == 401
        assert err.value.code == "unauthorized"


class TestShardDeath:
    @pytest.fixture()
    def fleet(self, tmp_path):
        with GatewayCluster(
            shards=2, jobs=1, cache_dir=tmp_path / "fleet", retry=FAST_RETRY,
            health_interval=0.05,
        ) as fleet:
            yield fleet

    def test_killed_target_shard_remaps_transparently(self, fleet):
        overrides = {"routing_paths": 4, "lookahead": False}
        key = key_for(WORKLOAD, **overrides)
        target = int(key[:16], 16) % 2
        direct = (
            FaultTolerantCompiler(CompilerConfig(**overrides))
            .compile(load_benchmark(WORKLOAD))
            .fingerprint()
        )
        fleet.kill_shard(target)
        with GatewayClient(*fleet.address) as client:
            payload = client.compile(
                workload=WORKLOAD, timeout=30, **overrides
            )
            dispatches = shard_dispatches(client)
        # transparent retry onto the surviving shard, result intact
        assert payload["status"] == "done"
        assert payload["result"]["fingerprint"] == direct
        assert dispatches[target] == 0
        assert dispatches[1 - target] == 1

    def test_kill_mid_flight_never_hangs(self, fleet):
        overrides = {"routing_paths": 5, "num_factories": 2}
        key = key_for(WORKLOAD, **overrides)
        target = int(key[:16], 16) % 2
        with GatewayClient(*fleet.address) as client:
            submitted = client.submit(workload=WORKLOAD, **overrides)
            # sever the owning shard while the job is (at most) in flight:
            # either the dispatch already finished, or the connection is
            # aborted and the router remaps — both must end terminal
            fleet.kill_shard(target)
            payload = client.wait(submitted["id"], timeout=30)
        assert payload["status"] == "done"

    def test_all_shards_down_is_a_structured_failure(self, fleet):
        fleet.kill_shard(0)
        fleet.kill_shard(1)
        overrides = {"routing_paths": 3, "num_factories": 2}
        with GatewayClient(*fleet.address) as client:
            payload = client.compile(
                workload=WORKLOAD, timeout=30, **overrides
            )
        # bounded, structured, never a hang
        assert payload["status"] == "failed"
        assert payload["error"]["code"] == "no-shards"

    def test_revived_fleet_serves_the_resubmitted_key(self, fleet):
        overrides = {"routing_paths": 3, "num_factories": 2}
        fleet.kill_shard(0)
        fleet.kill_shard(1)
        with GatewayClient(*fleet.address) as client:
            failed = client.compile(workload=WORKLOAD, timeout=30, **overrides)
            assert failed["status"] == "failed"
            fleet.revive_shard(0)
            fleet.revive_shard(1)
            wait_for_healthy_shards(client, 2)
            # resubmitting a failed key re-queues it from scratch
            payload = client.compile(workload=WORKLOAD, timeout=30, **overrides)
        assert payload["status"] == "done"
        assert payload["id"] == failed["id"]


class TestHttpAbuse:
    @pytest.fixture(scope="class")
    def gateway(self):
        """A bare gateway (dead backend) with a tight slow-loris bound."""
        with GatewayThread(
            backends=[("127.0.0.1", 1)],
            header_timeout=0.3,
            retry=FAST_RETRY,
            health_interval=0.05,
        ) as thread:
            yield thread

    def exchange(self, gateway, data, settle=0.0):
        """Send raw bytes, return (status, code) from the response."""
        with socket.create_connection(gateway.address, timeout=10) as sock:
            sock.sendall(data)
            if settle:
                time.sleep(settle)
            chunks = []
            sock.settimeout(10)
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        raw = b"".join(chunks)
        head, _, body = raw.partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        code = json.loads(body)["error"]["code"]
        return status, code

    def test_malformed_request_line(self, gateway):
        assert self.exchange(gateway, b"GARBAGE\r\n\r\n") == (
            400,
            "bad-request",
        )

    def test_malformed_header(self, gateway):
        assert self.exchange(
            gateway, b"GET /v1/ping HTTP/1.1\r\nnocolon\r\n\r\n"
        ) == (400, "bad-request")

    def test_oversized_body_is_413(self, gateway):
        request = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Content-Length: 9999999999\r\n\r\n"
        )
        assert self.exchange(gateway, request) == (413, "payload-too-large")

    def test_oversized_headers_are_431(self, gateway):
        padding = b"".join(
            b"X-Pad-%d: %s\r\n" % (i, b"y" * 4000) for i in range(10)
        )
        request = b"GET /v1/ping HTTP/1.1\r\n" + padding + b"\r\n"
        assert self.exchange(gateway, request) == (431, "headers-too-large")

    def test_slow_loris_is_cut_off_with_408(self, gateway):
        # a partial request line and then silence: the gateway must
        # answer (not hang) once the header timeout expires
        assert self.exchange(gateway, b"GET /v1/pi") == (
            408,
            "request-timeout",
        )

    def test_unknown_endpoint_and_method(self, gateway):
        assert self.exchange(
            gateway, b"GET /v1/nope HTTP/1.1\r\nConnection: close\r\n\r\n"
        ) == (404, "not-found")
        assert self.exchange(
            gateway, b"DELETE /v1/jobs HTTP/1.1\r\nConnection: close\r\n\r\n"
        ) == (405, "bad-request")

    def test_unknown_job_id_is_404(self, gateway):
        with GatewayClient(*gateway.address) as client:
            with pytest.raises(GatewayError) as err:
                client.get("f" * 64)
        assert err.value.status == 404
        assert err.value.code == "not-found"

    def test_gateway_survives_the_abuse(self, gateway):
        with GatewayClient(*gateway.address) as client:
            assert client.ping()["ok"]
