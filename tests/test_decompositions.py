"""Decompositions verified against explicit numpy unitaries."""

import math

import numpy as np
import pytest

from repro.ir import gates as g
from repro.ir.circuit import Circuit
from repro.synthesis.decompositions import (
    controlled_phase,
    controlled_rz,
    expand_swaps,
    swap_via_cnots,
    toffoli,
    xx_rotation,
    yy_rotation,
    zz_rotation,
)

I2 = np.eye(2, dtype=complex)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.diag([1, -1]).astype(complex)

SINGLE = {
    g.H: (X + Z) / np.sqrt(2),
    g.S: np.diag([1, 1j]),
    g.SDG: np.diag([1, -1j]),
    g.T: np.diag([1, np.exp(1j * np.pi / 4)]),
    g.TDG: np.diag([1, np.exp(-1j * np.pi / 4)]),
    g.X: X, g.Y: Y, g.Z: Z,
    g.SX: 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]]),
}


def gate_matrix(gate: g.Gate, n: int) -> np.ndarray:
    """Dense matrix of one gate on n qubits (qubit 0 = most significant)."""
    if gate.name in SINGLE or gate.name in (g.RZ, g.RX):
        if gate.name == g.RZ:
            mat = np.diag([np.exp(-0.5j * gate.param), np.exp(0.5j * gate.param)])
        elif gate.name == g.RX:
            c, s = np.cos(gate.param / 2), -1j * np.sin(gate.param / 2)
            mat = np.array([[c, s], [s, c]])
        else:
            mat = SINGLE[gate.name]
        ops = [I2] * n
        ops[gate.qubits[0]] = mat
        out = np.array([[1]], dtype=complex)
        for op in ops:
            out = np.kron(out, op)
        return out
    if gate.name in (g.CX, g.CZ, g.SWAP):
        dim = 2**n
        out = np.zeros((dim, dim), dtype=complex)
        a, b = gate.qubits
        for basis in range(dim):
            bits = [(basis >> (n - 1 - k)) & 1 for k in range(n)]
            new_bits = list(bits)
            amp = 1.0 + 0j
            if gate.name == g.CX and bits[a]:
                new_bits[b] ^= 1
            elif gate.name == g.CZ and bits[a] and bits[b]:
                amp = -1.0
            elif gate.name == g.SWAP:
                new_bits[a], new_bits[b] = new_bits[b], new_bits[a]
            idx = sum(bit << (n - 1 - k) for k, bit in enumerate(new_bits))
            out[idx, basis] = amp
        return out
    raise ValueError(gate.name)


def circuit_matrix(gates, n: int) -> np.ndarray:
    out = np.eye(2**n, dtype=complex)
    for gate in gates:
        out = gate_matrix(gate, n) @ out
    return out


def assert_equal_up_to_phase(a: np.ndarray, b: np.ndarray):
    index = np.unravel_index(np.argmax(np.abs(b)), b.shape)
    phase = a[index] / b[index]
    assert abs(abs(phase) - 1) < 1e-9
    np.testing.assert_allclose(a, phase * b, atol=1e-9)


class TestToffoli:
    def test_matches_ccx(self):
        mat = circuit_matrix(toffoli(0, 1, 2), 3)
        ccx = np.eye(8, dtype=complex)
        ccx[[6, 7], [6, 7]] = 0
        ccx[6, 7] = ccx[7, 6] = 1
        assert_equal_up_to_phase(mat, ccx)

    def test_seven_t_gates(self):
        names = [gate.name for gate in toffoli(0, 1, 2)]
        assert names.count("t") + names.count("tdg") == 7


class TestTwoBodyRotations:
    @pytest.mark.parametrize("theta", [0.3, math.pi / 4, -1.1])
    def test_zz(self, theta):
        mat = circuit_matrix(zz_rotation(theta, 0, 1), 2)
        zz = np.kron(Z, Z)
        expected = (
            np.cos(theta / 2) * np.eye(4) - 1j * np.sin(theta / 2) * zz
        )
        assert_equal_up_to_phase(mat, expected)

    @pytest.mark.parametrize("theta", [0.3, -0.7])
    def test_xx(self, theta):
        mat = circuit_matrix(xx_rotation(theta, 0, 1), 2)
        xx = np.kron(X, X)
        expected = np.cos(theta / 2) * np.eye(4) - 1j * np.sin(theta / 2) * xx
        assert_equal_up_to_phase(mat, expected)

    @pytest.mark.parametrize("theta", [0.3, -0.7])
    def test_yy(self, theta):
        mat = circuit_matrix(yy_rotation(theta, 0, 1), 2)
        yy = np.kron(Y, Y)
        expected = np.cos(theta / 2) * np.eye(4) - 1j * np.sin(theta / 2) * yy
        assert_equal_up_to_phase(mat, expected)


class TestControlledRotations:
    @pytest.mark.parametrize("theta", [0.5, math.pi / 2])
    def test_controlled_phase(self, theta):
        mat = circuit_matrix(controlled_phase(theta, 0, 1), 2)
        expected = np.diag([1, 1, 1, np.exp(1j * theta)]).astype(complex)
        assert_equal_up_to_phase(mat, expected)

    @pytest.mark.parametrize("theta", [0.5, -1.2])
    def test_controlled_rz(self, theta):
        mat = circuit_matrix(controlled_rz(theta, 0, 1), 2)
        expected = np.diag(
            [1, 1, np.exp(-0.5j * theta), np.exp(0.5j * theta)]
        ).astype(complex)
        assert_equal_up_to_phase(mat, expected)


class TestSwapExpansion:
    def test_swap_via_cnots(self):
        mat = circuit_matrix(swap_via_cnots(0, 1), 2)
        assert_equal_up_to_phase(mat, gate_matrix(g.swap(0, 1), 2))

    def test_expand_swaps_removes_swaps(self):
        qc = Circuit(2).swap(0, 1).h(0)
        out = expand_swaps(qc)
        assert out.count("swap") == 0
        assert out.count("cx") == 3
