"""Unit tests for repro.synthesis.clifford_t."""

import math

import pytest

from repro.ir.circuit import Circuit
from repro.ir.gates import Gate, RZ, rz, t
from repro.synthesis.clifford_t import (
    SynthesisModel,
    clifford_rz_replacement,
    decompose_rotations,
    rz_to_clifford_t,
    validate_clifford_t,
)


class TestSynthesisModel:
    def test_single_t_charges_one(self):
        model = SynthesisModel.single_t()
        assert model.t_cost(rz(0.3, 0)) == 1

    def test_explicit_t_always_one(self):
        model = SynthesisModel.fixed(10)
        assert model.t_cost(t(0)) == 1

    def test_clifford_rotation_costs_zero(self):
        model = SynthesisModel.single_t()
        assert model.t_cost(rz(math.pi / 2, 0)) == 0

    def test_fixed_model(self):
        model = SynthesisModel.fixed(7)
        assert model.t_cost(rz(0.3, 0)) == 7

    def test_fixed_rejects_zero(self):
        with pytest.raises(ValueError):
            SynthesisModel.fixed(0)

    def test_gridsynth_scaling(self):
        tight = SynthesisModel.gridsynth(epsilon=1e-10)
        loose = SynthesisModel.gridsynth(epsilon=1e-2)
        assert tight.t_cost(rz(0.3, 0)) > loose.t_cost(rz(0.3, 0))

    def test_gridsynth_epsilon_validation(self):
        with pytest.raises(ValueError):
            SynthesisModel.gridsynth(epsilon=2.0)

    def test_circuit_t_count(self):
        qc = Circuit(2).t(0).rz(0.3, 1).rz(math.pi, 0)
        assert SynthesisModel.single_t().circuit_t_count(qc) == 2


class TestExactExpansion:
    def test_clifford_replacements(self):
        assert clifford_rz_replacement(0.0) == []
        assert clifford_rz_replacement(math.pi / 2) == ["s"]
        assert clifford_rz_replacement(math.pi) == ["z"]
        assert clifford_rz_replacement(3 * math.pi / 2) == ["sdg"]

    def test_clifford_replacement_rejects_t_angle(self):
        with pytest.raises(ValueError):
            clifford_rz_replacement(math.pi / 4)

    def test_quarter_pi_is_t(self):
        gates = rz_to_clifford_t(math.pi / 4, 0)
        assert gates[0].name == "t"

    def test_three_quarter_pi(self):
        names = [gate.name for gate in rz_to_clifford_t(3 * math.pi / 4, 0)]
        assert names == ["t", "s"]

    def test_generic_angle_rejected(self):
        with pytest.raises(ValueError):
            rz_to_clifford_t(0.3, 0)


class TestDecomposeRotations:
    def test_output_is_clifford_t(self):
        qc = Circuit(2).rz(0.3, 0).rz(math.pi / 4, 1).rx(math.pi, 0)
        lowered = decompose_rotations(qc, SynthesisModel.fixed(3))
        assert validate_clifford_t(lowered)

    def test_t_count_preserved_by_model(self):
        qc = Circuit(1).rz(0.3, 0)
        lowered = decompose_rotations(qc, SynthesisModel.fixed(5))
        assert lowered.count("t") == 5

    def test_rx_gets_hadamard_sandwich(self):
        qc = Circuit(1).rx(math.pi / 4, 0)
        lowered = decompose_rotations(qc, SynthesisModel.single_t())
        assert lowered[0].name == "h"
        assert lowered[-1].name == "h"

    def test_non_rotation_gates_pass_through(self):
        qc = Circuit(2).h(0).cx(0, 1)
        lowered = decompose_rotations(qc, SynthesisModel.single_t())
        assert [gate.name for gate in lowered] == ["h", "cx"]


class TestValidate:
    def test_accepts_clifford_t(self):
        assert validate_clifford_t(Circuit(2).h(0).t(1).cx(0, 1))

    def test_rejects_generic_rotation(self):
        assert not validate_clifford_t(Circuit(1).rz(0.3, 0))

    def test_accepts_pi4_rotation(self):
        assert validate_clifford_t(Circuit(1).rz(math.pi / 4, 0))
