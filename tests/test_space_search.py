"""Unit tests for space search and the displacement machinery."""

import pytest

from repro.arch.grid import CellRole, Grid
from repro.routing.dijkstra import RoutingRequest, find_path
from repro.routing.path import Path
from repro.routing.space_search import (
    SpaceSearchError,
    _walk_path,
    apply_plan,
    clear_route,
    find_space,
)


def dense_grid() -> Grid:
    """3x3 block of data qubits centred in a 5x5 grid."""
    grid = Grid(5, 5)
    qid = 0
    for r in range(1, 4):
        for c in range(1, 4):
            grid.place(qid, (r, c))
            qid += 1
    return grid


class TestFindSpace:
    def test_free_neighbor_costs_nothing(self):
        grid = Grid(3, 3)
        grid.place(0, (1, 1))
        plan = find_space(grid, (1, 1))
        assert plan.num_moves == 0

    def test_evacuates_cheapest_neighbor(self):
        grid = dense_grid()
        plan = find_space(grid, (2, 2))  # centre qubit, all neighbours data
        assert plan.num_moves >= 1
        # The freed cell is one of the centre's neighbours.
        assert plan.freed_cell in grid.neighbors((2, 2))

    def test_apply_plan_clears_cell(self):
        grid = dense_grid()
        plan = find_space(grid, (2, 2))
        apply_plan(grid, plan)
        assert not grid.is_occupied(plan.freed_cell)

    def test_apply_stale_plan_rejected(self):
        grid = dense_grid()
        plan = find_space(grid, (2, 2))
        if plan.moves:
            qubit = plan.moves[0][0]
            grid.move(qubit, (0, 0))
            with pytest.raises(SpaceSearchError):
                apply_plan(grid, plan)

    def test_boxed_in_raises(self):
        grid = Grid(1, 3)
        grid.place(0, (0, 0))
        grid.place(1, (0, 1))
        grid.place(2, (0, 2))
        with pytest.raises(SpaceSearchError):
            find_space(grid, (0, 1))


class TestWalkPath:
    def test_walk_through_free_cells(self):
        grid = Grid(3, 3)
        grid.place(0, (0, 0))
        path = find_path(grid, RoutingRequest((0, 0), (2, 2)))
        moves = _walk_path(grid, 0, path)
        assert moves is not None
        assert moves[-1][2] == (2, 2)
        # Grid itself is not mutated by planning.
        assert grid.position_of(0) == (0, 0)

    def test_walk_displaces_blocker(self):
        grid = Grid(3, 3)
        grid.place(0, (0, 0))
        grid.place(1, (0, 1))
        path = Path(((0, 0), (0, 1), (0, 2)), cost=2.0, occupied_crossings=1)
        moves = _walk_path(grid, 0, path)
        assert moves is not None
        movers = {m[0] for m in moves}
        assert movers == {0, 1}

    def test_forbidden_cells_respected(self):
        grid = Grid(3, 3)
        grid.place(0, (0, 0))
        grid.place(1, (0, 1))
        path = Path(((0, 0), (0, 1), (0, 2)), cost=2.0, occupied_crossings=1)
        moves = _walk_path(grid, 0, path, forbidden=frozenset({(1, 1)}))
        assert moves is not None
        assert all(m[2] != (1, 1) for m in moves)

    def test_chain_push_through_dense_row(self):
        grid = Grid(1, 5)
        grid.place(0, (0, 0))
        grid.place(1, (0, 1))
        grid.place(2, (0, 2))
        path = Path(((0, 0), (0, 1)), cost=1.0, occupied_crossings=1)
        moves = _walk_path(grid, 0, path)
        # Row shift: 2 -> (0,3), 1 -> (0,2), then 0 -> (0,1).
        assert moves is not None
        assert ((2, (0, 2), (0, 3))) in moves


class TestClearRoute:
    def test_clears_parked_qubits(self):
        grid = Grid(3, 5)
        grid.place(9, (1, 2))
        path = Path(
            ((1, 0), (1, 1), (1, 2), (1, 3), (1, 4)),
            cost=8.0,
            occupied_crossings=1,
        )
        moves = clear_route(grid, path)
        assert moves is not None
        assert any(m[0] == 9 for m in moves)

    def test_no_moves_for_free_route(self):
        grid = Grid(3, 5)
        path = find_path(grid, RoutingRequest((1, 0), (1, 4)))
        assert clear_route(grid, path) == []

    def test_forbidden_destination_protected(self):
        grid = Grid(3, 5)
        grid.place(9, (1, 2))
        path = find_path(grid, RoutingRequest((1, 0), (1, 4)))
        moves = clear_route(grid, path, forbidden=frozenset({(1, 4)}))
        assert moves is not None
        assert all(m[2] != (1, 4) for m in moves)

    def test_port_cells_not_used_as_refuge(self):
        grid = Grid(3, 3)
        grid.set_role((0, 1), CellRole.PORT)
        grid.place(9, (1, 1))
        grid.place(8, (1, 0))
        grid.place(7, (1, 2))
        grid.place(6, (2, 1))
        path = Path(((1, 0), (1, 1), (1, 2)), cost=1.0, occupied_crossings=1)
        moves = clear_route(grid, path)
        if moves is not None:
            assert all(m[2] != (0, 1) for m in moves)


class TestAbandonedMover:
    """Regression coverage for the defensive bail-out where a displacement
    sweeps up the escorted qubit itself (a chain push entering the mover's
    frozen cell).  The plan must be abandoned cleanly — grid untouched —
    and the event must be visible through the module counter."""

    def test_rogue_displacement_aborts_walk_and_counts(self, monkeypatch):
        from repro.routing import space_search

        def rogue_displace(grid, cell, banned, keep_off, depth=0):
            # Behave like a buggy chain push: clear ``cell`` by dragging
            # EVERY occupant (including the mover at its frozen cell) one
            # column to the right.
            moves = []
            placed = sorted(
                grid.placed_qubits().items(), key=lambda kv: -kv[1][1]
            )  # rightmost first so each hop lands on a free cell
            for qubit, origin in placed:
                dest = (origin[0], origin[1] + 1)
                grid.move(qubit, dest)
                moves.append((qubit, origin, dest))
            return moves

        monkeypatch.setattr(space_search, "_displace_blocker", rogue_displace)
        grid = Grid(3, 4)
        grid.place(0, (0, 0))
        grid.place(1, (0, 1))  # blocker on the route
        path = Path(((0, 0), (0, 1), (0, 2)), cost=2.0, occupied_crossings=1)
        before = space_search.COUNTERS.abandoned_mover
        moves = _walk_path(grid, 0, path)
        assert moves is None  # plan abandoned, not silently corrupted
        assert space_search.COUNTERS.abandoned_mover == before + 1
        # the scratch block rolled the rogue displacement back
        assert grid.position_of(0) == (0, 0)
        assert grid.position_of(1) == (0, 1)

    def test_scheduler_reports_displacement_aborts(self):
        """A clean compile reports a zero delta (and the counter key)."""
        from repro.compiler.pipeline import compile_circuit
        from repro.workloads import ising_2d

        result = compile_circuit(ising_2d(2), routing_paths=3)
        assert result.aux_stats["displacement_aborts"] == 0.0
