"""Tiered-cache tests: the CacheBackend contract, each tier's policy
(memo LRU, disk budget + quarantine cap, remote checksum/breaker), the
cache peer protocol, and the tier interactions the design promises —
promotion on hit, replay-validated ingest of remote bytes, and outage
degrading to a miss with identical fingerprints."""

import json
import socket

import pytest

from repro.compiler.config import CompilerConfig
from repro.service import CachePeerThread, RemoteCache, RetryPolicy
from repro.sweep import (
    CompileCache,
    MemoryCache,
    SweepEngine,
    TieredCache,
    job_key,
    payload_checksum,
)
from repro.service import protocol
from repro.workloads import ising_2d


@pytest.fixture(scope="module")
def compiled():
    """One compiled job: (circuit, config, key, result) shared read-only."""
    circuit, config = ising_2d(2), CompilerConfig(routing_paths=3)
    engine = SweepEngine()
    result = engine.compile(circuit, config)
    engine.shutdown()
    return circuit, config, job_key(circuit, config), result


def _keys(n):
    return [f"{i:064x}" for i in range(n)]


class TestMemoryCache:
    def test_lru_bound_evicts_oldest(self, compiled):
        *_, result = compiled
        memo = MemoryCache(limit=2)
        k1, k2, k3 = _keys(3)
        for key in (k1, k2, k3):
            memo.put_result(key, result)
        assert len(memo) == 2
        assert memo.get_result(k1) is None  # oldest gone
        assert memo.get_result(k3) is result  # no serialization round-trip
        assert memo.evictions == 1
        snap = memo.stats()
        assert snap["entries"] == 2 and snap["limit"] == 2

    def test_hit_refreshes_recency(self, compiled):
        *_, result = compiled
        memo = MemoryCache(limit=2)
        k1, k2, k3 = _keys(3)
        memo.put_result(k1, result)
        memo.put_result(k2, result)
        assert memo.get_result(k1) is result  # k1 becomes most recent
        memo.put_result(k3, result)  # so k2 is the LRU victim
        assert memo.get_result(k2) is None
        assert memo.get_result(k1) is result

    def test_discard_and_counters(self, compiled):
        *_, result = compiled
        memo = MemoryCache(limit=4)
        key = _keys(1)[0]
        memo.put_result(key, result)
        assert memo.discard(key) is True
        assert memo.discard(key) is False
        assert memo.get_result(key) is None
        assert memo.hits == 0 and memo.misses == 1 and memo.puts == 1


class TestDiskTier:
    def test_dict_contract_roundtrip(self, tmp_path, compiled):
        *_, key, result = compiled
        cache = CompileCache(tmp_path)
        assert cache.get(key) is None
        cache.put(key, result.to_dict())
        assert cache.contains(key)
        restored = cache.get_result(key)
        assert restored.fingerprint() == result.fingerprint()
        snap = cache.stats()
        assert snap["stores"] == 1 and snap["evictions"] == 0

    def test_size_budget_evicts_oldest_first(self, tmp_path, compiled):
        *_, result = compiled
        payload = result.to_dict()
        probe = CompileCache(tmp_path / "probe")
        probe.put(_keys(1)[0], payload)
        entry_size = sum(
            p.stat().st_size for p in (tmp_path / "probe").rglob("*.json")
        )
        assert entry_size > 0
        cache = CompileCache(tmp_path / "lru", size_budget=int(2.5 * entry_size))
        keys = _keys(5)
        for key in keys:
            cache.put(key, payload)
        assert len(cache) <= 2
        assert cache.stats()["evictions"] >= 3
        assert cache.contains(keys[-1])  # newest entry survives
        assert not cache.contains(keys[0])

    def test_pinned_entry_never_evicted(self, tmp_path, compiled):
        """An entry currently being served must survive budget eviction."""
        *_, result = compiled
        payload = result.to_dict()
        cache = CompileCache(tmp_path, size_budget=1)  # everything over budget
        pinned, other = _keys(2)
        cache._pin(pinned)  # a read of this entry is in flight
        try:
            cache.put(pinned, payload)
            assert cache.contains(pinned)  # over budget, but pinned
            cache.put(other, payload)  # triggers eviction of all unpinned
            assert cache.contains(pinned)
            assert not cache.contains(other)
        finally:
            cache._unpin(pinned)
        cache.put(other, payload)  # unpinned now: evictable again
        assert not cache.contains(pinned)

    def test_quarantine_cap_trims_oldest(self, tmp_path, compiled):
        *_, result = compiled
        cache = CompileCache(tmp_path, quarantine_cap=3)
        for key in _keys(5):
            cache.quarantine_payload(key, result.to_dict(), reason="remote")
        files = list((tmp_path / "quarantine").glob("*.json"))
        assert len(files) == 3
        assert cache.stats()["quarantine_evictions"] == 2
        assert all(f.name.endswith(".remote.json") for f in files)


class TestCachePeer:
    def test_roundtrip_and_stats(self, tmp_path, compiled):
        *_, key, result = compiled
        with CachePeerThread(cache=CompileCache(tmp_path)) as peer:
            with RemoteCache(*peer.address) as remote:
                assert remote.ping()
                assert remote.get(key) is None
                remote.put_result(key, result)
                restored = remote.get_result(key)
                assert restored.fingerprint() == result.fingerprint()
                stats = remote.peer_stats()
                assert stats["entries"] == 1
                assert stats["requests"] >= 3
                assert stats["rejected_puts"] == 0

    def test_torn_upload_rejected(self, tmp_path, compiled):
        """A put whose checksum mismatches its payload must not land."""
        *_, key, result = compiled
        with CachePeerThread(cache=CompileCache(tmp_path)) as peer:
            host, port = peer.address
            request = {
                "op": "cache-put",
                "key": key,
                "checksum": "0" * 64,  # wrong on purpose
                "result": result.to_dict(),
            }
            with socket.create_connection((host, port), timeout=5.0) as sock:
                sock.sendall(protocol.encode_line(request))
                reply = protocol.decode_line(sock.makefile("rb").readline())
            assert not reply["ok"]
            assert reply["error"]["code"] == protocol.E_BAD_REQUEST
            with RemoteCache(host, port) as remote:
                assert remote.get(key) is None
                assert remote.peer_stats()["rejected_puts"] == 1

    def test_bad_key_rejected(self, tmp_path):
        with CachePeerThread(cache=CompileCache(tmp_path)) as peer:
            host, port = peer.address
            with socket.create_connection((host, port), timeout=5.0) as sock:
                sock.sendall(
                    protocol.encode_line({"op": "cache-get", "key": "../evil"})
                )
                reply = protocol.decode_line(sock.makefile("rb").readline())
            assert not reply["ok"]
            assert reply["error"]["code"] == protocol.E_BAD_REQUEST


def _dead_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _fast_remote(host, port, **kwargs):
    kwargs.setdefault("timeout", 0.2)
    kwargs.setdefault(
        "retry", RetryPolicy(attempts=1, base_delay=0.0, max_delay=0.0)
    )
    return RemoteCache(host, port, **kwargs)


class TestTierInteractions:
    def test_remote_hit_promotes_to_disk_and_memo(self, tmp_path, compiled):
        circuit, config, key, result = compiled
        with CachePeerThread(cache=CompileCache(tmp_path / "peer")) as peer:
            with RemoteCache(*peer.address) as seeder:
                seeder.put_result(key, result)
            disk = CompileCache(tmp_path / "local")
            engine = SweepEngine(
                cache=disk, remote=RemoteCache(*peer.address)
            )
            first = engine.compile(circuit, config)
            assert first.fingerprint() == result.fingerprint()
            assert engine.counters.compiled == 0
            assert engine.counters.remote_hits == 1
            assert disk.contains(key)  # promoted to the disk tier
            engine.compile(circuit, config)
            assert engine.counters.memo_hits == 1  # and to the memo tier
            tiers = engine.tier_stats()
            assert tiers["remote"]["hits"] == 1
            assert tiers["memo"]["hits"] == 1
            engine.shutdown()

    def test_poisoned_remote_entry_rejected_and_quarantined(
        self, tmp_path, compiled
    ):
        circuit, config, key, result = compiled
        poisoned = json.loads(json.dumps(result.to_dict()))
        poisoned["schedule"]["ops"].pop()  # replay validation must notice
        peer_cache = CompileCache(tmp_path / "peer")
        peer_cache.put(key, poisoned)  # checksum is consistent: only
        # replay validation can catch this
        with CachePeerThread(cache=peer_cache) as peer:
            disk = CompileCache(tmp_path / "local")
            engine = SweepEngine(
                cache=disk, remote=RemoteCache(*peer.address)
            )
            clean = engine.compile(circuit, config)
            # the poisoned entry was rejected, recompiled from scratch,
            # and the fingerprint is the clean one
            assert clean.fingerprint() == result.fingerprint()
            assert engine.counters.compiled == 1
            assert engine.counters.remote_hits == 0
            assert engine.tier_stats()["remote"]["rejected"] == 1
            quarantined = tmp_path / "local" / "quarantine" / f"{key}.remote.json"
            assert quarantined.is_file()
            engine.shutdown()

    def test_remote_outage_matches_no_remote_run(self, tmp_path, compiled):
        circuit, config, _, _ = compiled
        engine_down = SweepEngine(
            cache=CompileCache(tmp_path / "a"),
            remote=_fast_remote("127.0.0.1", _dead_port()),
        )
        engine_none = SweepEngine(cache=CompileCache(tmp_path / "b"))
        down = engine_down.compile(circuit, config)
        plain = engine_none.compile(circuit, config)
        assert down.to_dict() == plain.to_dict()
        assert engine_down.counters.compiled == 1
        assert engine_down.tier_stats()["remote"]["errors"] >= 1
        engine_down.shutdown()
        engine_none.shutdown()

    def test_breaker_skips_dead_peer_then_reprobes(self, compiled):
        *_, key, _ = compiled
        clock = {"now": 0.0}
        remote = _fast_remote(
            "127.0.0.1",
            _dead_port(),
            breaker_threshold=3,
            breaker_cooldown=5.0,
            sleep=lambda _s: None,
            clock=lambda: clock["now"],
        )
        for _ in range(3):
            assert remote.get(key) is None
        assert remote.breaker_trips == 1
        assert remote.get(key) is None  # breaker open: not even a connect
        assert remote.skipped == 1
        clock["now"] = 6.0  # cooldown elapsed: one probe goes through
        errors = remote.errors
        assert remote.get(key) is None
        assert remote.errors == errors + 1
        remote.close()

    def test_fill_and_promotion_serialize_once(self, compiled):
        """TieredCache computes the payload dict at most once per fill."""
        *_, key, result = compiled
        calls = {"n": 0}

        class Spy(MemoryCache):
            name = "spy"
            object_store = False

            def put_result(self, k, r, payload=None):
                assert payload is not None  # precomputed by the stack
                calls["n"] += 1
                super().put_result(k, r, payload)

        stack = TieredCache([MemoryCache(limit=4), Spy(limit=4), Spy(limit=4)])
        stack.fill(key, result)
        assert calls["n"] == 2
        hit = stack.lookup(key)
        assert hit is not None and hit[1] == "memo"


class TestStrategyIsolation:
    """The ``strategy`` knob must partition every cache tier: unlike
    ``backend`` it changes the compiled schedule, so a hit recorded under
    one strategy must never be served to another."""

    def test_job_key_distinguishes_strategies(self, compiled):
        circuit, config, key, _ = compiled
        assert job_key(circuit, config.with_(strategy="balanced")) != key
        # while backend stays deliberately excluded from the key
        assert job_key(circuit, config.with_(backend="pure")) == key

    def test_config_fingerprint_includes_strategy(self, compiled):
        from repro.sweep.jobs import config_fingerprint

        _, config, *_ = compiled
        assert config_fingerprint(config) != config_fingerprint(
            config.with_(strategy="balanced")
        )
        assert config_fingerprint(config) == config_fingerprint(
            config.with_(backend="numpy")
        )

    def test_no_tier_cross_serves_between_strategies(self, tmp_path, compiled):
        """Warm memo, disk and remote under one strategy; the other
        strategy must compile fresh through the full stack."""
        circuit, config, _, _ = compiled
        with CachePeerThread(cache=CompileCache(tmp_path / "peer")) as peer:
            engine = SweepEngine(
                cache=CompileCache(tmp_path / "local"),
                remote=RemoteCache(*peer.address),
            )
            engine.compile(circuit, config)  # warms all three tiers
            assert engine.counters.compiled == 1
            engine.compile(circuit, config.with_(strategy="balanced"))
            assert engine.counters.compiled == 2  # no tier answered
            assert engine.counters.memo_hits == 0
            tiers = engine.tier_stats()
            assert tiers["disk"]["hits"] == 0
            assert tiers["remote"]["hits"] == 0
            # both entries now coexist: each strategy hits its own
            engine.compile(circuit, config)
            engine.compile(circuit, config.with_(strategy="balanced"))
            assert engine.counters.compiled == 2
            assert engine.counters.memo_hits == 2
            engine.shutdown()


class TestCacheBenchSmoke:
    def test_fast_cache_bench_warm_fleet_compiles_nothing(self):
        from repro.perf import run_cache_bench

        report = run_cache_bench(fast=True, engines=2)
        phases = report.meta["cache_bench"]
        assert phases["warm_fleet"]["compiled"] == 0
        assert phases["warm_fleet"]["remote_hits"] == len(report.cases)
        assert phases["disk"]["disk_hits"] == len(report.cases)
        assert phases["memo"]["memo_hits"] == len(report.cases)
        assert phases["remote_down"]["compiled"] == len(report.cases)
        assert report.cases  # fingerprint rows for the drift gate
