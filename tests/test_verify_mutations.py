"""Mutation self-tests: every seeded corruption class must be caught.

This is the validator's own regression net: if a check is weakened or
skipped, the corresponding mutation stops being flagged and these tests
fail — even while every genuinely compiled schedule stays green."""

import pytest

from repro.compiler.config import CompilerConfig
from repro.compiler.pipeline import FaultTolerantCompiler
from repro.ir.circuit import Circuit
from repro.verify import (
    MUTATIONS,
    config_distill_times,
    run_self_test,
    validate_result,
)
from repro.workloads import load_benchmark


def _self_test(circuit, config):
    result = FaultTolerantCompiler(config).compile(circuit)
    # precondition: the uncorrupted schedule is valid
    assert validate_result(result, circuit, config).ok
    return run_self_test(
        result.schedule, circuit, config_distill_times(config), result.t_states
    )


@pytest.fixture(scope="module")
def benchmark_outcomes():
    circuit = load_benchmark("ising_2d_4x4")
    return _self_test(circuit, CompilerConfig(routing_paths=4, num_factories=2))


@pytest.fixture(scope="module")
def barrier_outcomes():
    circuit = Circuit(4, name="barriered")
    circuit.h(0).cx(0, 1).t(1).t(0)
    circuit.barrier()
    circuit.cx(2, 3).t(3).h(2).t(2)
    return _self_test(circuit, CompilerConfig(routing_paths=3))


class TestSelfTest:
    def test_every_applicable_mutation_caught(self, benchmark_outcomes):
        failed = [o for o in benchmark_outcomes if not o.ok]
        assert not failed, [
            (o.name, o.expected_code, o.found_codes) for o in failed
        ]

    def test_benchmark_covers_most_classes(self, benchmark_outcomes):
        applicable = {o.name for o in benchmark_outcomes if o.applicable}
        # everything except the barrier mutation applies to a plain benchmark
        assert applicable == set(MUTATIONS) - {"pull-across-barrier"}

    def test_barrier_circuit_covers_all_classes(self, barrier_outcomes):
        applicable = {o.name for o in barrier_outcomes if o.applicable}
        assert applicable == set(MUTATIONS)
        failed = [o for o in barrier_outcomes if not o.ok]
        assert not failed, [
            (o.name, o.expected_code, o.found_codes) for o in failed
        ]

    def test_expected_code_is_the_one_found(self, benchmark_outcomes):
        # each caught mutation reports its target class among the findings
        for outcome in benchmark_outcomes:
            if outcome.applicable:
                assert outcome.expected_code in outcome.found_codes

    def test_outcome_ok_semantics(self, benchmark_outcomes):
        for outcome in benchmark_outcomes:
            assert outcome.ok == (outcome.caught or not outcome.applicable)
