"""Failure-injection tests: every error path raises the right exception."""

import pytest

from repro.arch.grid import CellRole, Grid, GridError
from repro.arch.instruction_set import InstructionSet
from repro.arch.layout import LayoutError, build_layout
from repro.compiler.mapping import MappingError, grid_mapping
from repro.ir.circuit import Circuit
from repro.routing.dijkstra import NoPathError, RoutingRequest, find_path
from repro.routing.neighbor_moves import AlignmentError, apply_moves
from repro.scheduling.scheduler import LatticeSurgeryScheduler, SchedulingError


class TestGridFailures:
    def test_move_unplaced_qubit(self):
        grid = Grid(2, 2)
        with pytest.raises(GridError):
            grid.move(5, (0, 0))

    def test_remove_unplaced_qubit(self):
        grid = Grid(2, 2)
        with pytest.raises(GridError):
            grid.remove(5)

    def test_out_of_bounds_cell(self):
        grid = Grid(2, 2)
        with pytest.raises(GridError):
            grid.cell((5, 5))


class TestLayoutFailures:
    def test_oversized_r(self):
        with pytest.raises(LayoutError):
            build_layout(4, 100)

    def test_circuit_too_big_for_layout(self):
        layout = build_layout(4, 2)
        with pytest.raises(MappingError):
            grid_mapping(Circuit(25), layout)


class TestRoutingFailures:
    def test_walled_off_destination(self):
        grid = Grid(3, 3)
        for pos in ((0, 1), (1, 1), (2, 1)):
            grid.set_role(pos, CellRole.FACTORY)
        with pytest.raises(NoPathError):
            find_path(grid, RoutingRequest((0, 0), (0, 2)))

    def test_stale_alignment_moves(self):
        grid = Grid(3, 3)
        grid.place(0, (0, 0))
        with pytest.raises(AlignmentError):
            apply_moves(grid, [(0, (1, 1), (2, 2))])  # origin is wrong


class TestSchedulerFailures:
    def test_placement_collision_detected(self):
        layout = build_layout(4, 2)
        scheduler = LatticeSurgeryScheduler(
            layout.grid, InstructionSet.paper(), layout.port_positions[:1]
        )
        placement = {0: layout.data_slots[0], 1: layout.data_slots[0]}
        with pytest.raises(SchedulingError):
            scheduler.run(Circuit(2).h(0), placement)

    def test_impossible_layout_for_t_gate(self):
        """A 1x3 strip with every cell filled cannot host a magic state."""
        grid = Grid(1, 3)
        scheduler = LatticeSurgeryScheduler(
            grid, InstructionSet.paper(), [(0, 0)]
        )
        placement = {0: (0, 0), 1: (0, 1), 2: (0, 2)}
        with pytest.raises(SchedulingError):
            scheduler.run(Circuit(3).t(1), placement)


class TestRecoveryBehaviour:
    def test_scheduler_survives_dense_r2_with_t_gates(self):
        """The swap-through fallback keeps extreme layouts compilable."""
        from repro import compile_circuit
        from repro.workloads import ising_2d

        result = compile_circuit(ising_2d(4), routing_paths=2, num_factories=1)
        assert result.execution_time >= result.lower_bound

    def test_scheduler_is_reusable_after_failure(self):
        layout = build_layout(4, 2)
        scheduler = LatticeSurgeryScheduler(
            layout.grid, InstructionSet.paper(), layout.port_positions[:1]
        )
        bad = {0: layout.data_slots[0], 1: layout.data_slots[0]}
        with pytest.raises(SchedulingError):
            scheduler.run(Circuit(2).h(0), bad)
        good = {0: layout.data_slots[0], 1: layout.data_slots[1]}
        schedule = scheduler.run(Circuit(2).h(0).cx(0, 1), good)
        assert schedule.makespan > 0
