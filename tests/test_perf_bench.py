"""Tests for the ``repro bench`` performance harness."""

import json

import pytest

from repro.cli import main
from repro.perf import bench_cases, compare_reports, run_bench
from repro.perf.bench import BenchCase


class TestBenchCases:
    def test_fast_matrix_is_small(self):
        cases = bench_cases(fast=True)
        assert 0 < len(cases) <= 6

    def test_full_matrix_covers_fig9_fig11_models(self):
        workloads = {c.workload for c in bench_cases(fast=False)}
        assert any("ising" in w for w in workloads)
        assert any("heisenberg" in w for w in workloads)
        assert any("fermi_hubbard" in w for w in workloads)

    def test_workload_filter(self):
        cases = bench_cases(fast=True, workloads=["ising_2d_2x2"])
        assert cases and all(c.workload == "ising_2d_2x2" for c in cases)

    def test_case_key_format(self):
        case = BenchCase("ising_2d_2x2", 3, 1)
        assert case.key == "ising_2d_2x2/r3/f1"


class TestRunBench:
    def test_fast_run_produces_fingerprint(self):
        report = run_bench(fast=True, workloads=["ising_2d_2x2"])
        assert report.total_wall > 0
        row = report.cases["ising_2d_2x2/r3/f1"]
        assert row["makespan"] > 0
        assert row["num_ops"] > 0
        assert set(row["stats"]) >= {"moves_planned", "magic_states"}

    def test_deterministic_fingerprint_across_repeats(self):
        one = run_bench(fast=True, workloads=["heisenberg_2d_2x2"])
        two = run_bench(fast=True, workloads=["heisenberg_2d_2x2"], repeat=2)
        key = "heisenberg_2d_2x2/r3/f1"
        for field in ("makespan", "num_ops", "num_moves", "stats"):
            assert one.cases[key][field] == two.cases[key][field]

    def test_report_text_lists_all_cases(self):
        report = run_bench(fast=True)
        text = report.to_text()
        for key in report.cases:
            assert key in text
        assert "total wall time" in text


class TestCompare:
    def test_identical_reports_show_no_drift(self):
        report = run_bench(fast=True, workloads=["ising_2d_2x2"])
        lines = compare_reports(report.as_dict(), report)
        assert any("identical" in line for line in lines)

    def test_behaviour_drift_is_flagged(self):
        report = run_bench(fast=True, workloads=["ising_2d_2x2"])
        baseline = json.loads(json.dumps(report.as_dict()))
        key = next(iter(baseline["cases"]))
        baseline["cases"][key]["makespan"] += 1.0
        lines = compare_reports(baseline, report)
        assert any("DRIFT" in line for line in lines)


class TestCli:
    def test_bench_cli_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_test.json"
        code = main([
            "bench", "--fast", "--workload", "ising_2d_2x2",
            "--output", str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["cases"]
        assert data["meta"]["mode"] == "fast"

    def test_bench_cli_baseline_comparison(self, tmp_path, capsys):
        out = tmp_path / "BENCH_a.json"
        main(["bench", "--fast", "--workload", "ising_2d_2x2",
              "--output", str(out)])
        capsys.readouterr()
        code = main([
            "bench", "--fast", "--workload", "ising_2d_2x2",
            "--output", "-", "--baseline", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "identical to baseline" in captured
        assert "vs baseline" in captured
