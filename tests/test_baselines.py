"""Baseline model tests: Litinski blocks, LSQCA, DASCOT, lower bound."""

import pytest

from repro.baselines.common import BaselineResult
from repro.baselines.dascot import UNLIMITED, dascot_qubits, evaluate_dascot, factory_sweep
from repro.baselines.litinski import (
    BlockLayout,
    compact_block,
    evaluate_all_blocks,
    evaluate_block,
    fast_block,
    intermediate_block,
)
from repro.baselines.lower_bound import circuit_lower_bound, distillation_lower_bound
from repro.baselines.lsqca import evaluate_line_sam, evaluate_point_sam, line_sam_qubits
from repro.ir.circuit import Circuit
from repro.workloads import ising_2d


class TestLowerBound:
    def test_eq2(self):
        assert distillation_lower_bound(280, 11.0, 1) == pytest.approx(3080.0)
        assert distillation_lower_bound(280, 11.0, 4) == pytest.approx(770.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            distillation_lower_bound(10, 11.0, 0)
        with pytest.raises(ValueError):
            distillation_lower_bound(10, 0.0, 1)
        with pytest.raises(ValueError):
            distillation_lower_bound(-1, 11.0, 1)

    def test_circuit_bound(self):
        qc = ising_2d(2)
        assert circuit_lower_bound(qc) == pytest.approx(qc.count("rz") * 11.0)


class TestLitinskiBlocks:
    def test_modified_qubit_formulas(self):
        n = 100
        assert compact_block().qubits(n) == 303       # 3n+3
        assert intermediate_block().qubits(n) == 400  # 4n
        assert fast_block().qubits(n) == 406          # 4n+6

    def test_original_qubit_formulas(self):
        n = 100
        assert compact_block(modified=False).qubits(n) == 153  # 1.5n+3
        assert intermediate_block(modified=False).qubits(n) == 204

    def test_ppr_depths(self):
        assert compact_block().ppr_depth() == 4.0
        assert fast_block().ppr_depth() == 3.0

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            BlockLayout("huge", True).qubits(4)

    def test_time_sits_at_bound_with_one_factory(self):
        circuit = ising_2d(4)
        result = evaluate_block(circuit, fast_block(), num_factories=1)
        assert result.execution_time == pytest.approx(result.lower_bound)

    def test_time_floors_at_op_latency_with_many_factories(self):
        circuit = ising_2d(4)
        few = evaluate_block(circuit, fast_block(), num_factories=1)
        many = evaluate_block(circuit, fast_block(), num_factories=100)
        assert many.execution_time < few.execution_time
        assert many.execution_time >= many.t_states * 3.0  # serial PPRs

    def test_all_blocks_returns_three(self):
        results = evaluate_all_blocks(ising_2d(2))
        assert [r.name for r in results] == [
            "litinski-compact-modified",
            "litinski-intermediate-modified",
            "litinski-fast-modified",
        ]


class TestLsqca:
    def test_qubit_count_scales_linearly(self):
        assert line_sam_qubits(100) > line_sam_qubits(25)

    def test_one_factory_near_bound(self):
        circuit = ising_2d(4)
        result = evaluate_line_sam(circuit, num_factories=1)
        assert result.execution_time >= result.lower_bound
        assert result.execution_time <= 1.5 * result.lower_bound

    def test_factories_barely_help(self):
        """The sequential Line-SAM bottleneck (Fig. 14's flat CPI)."""
        circuit = ising_2d(10)
        one = evaluate_line_sam(circuit, num_factories=1)
        four = evaluate_line_sam(circuit, num_factories=4)
        # far from the 4x speedup a parallel machine would get
        assert four.execution_time > one.execution_time / 2.5

    def test_point_sam_slower_than_line_sam(self):
        circuit = ising_2d(4)
        line = evaluate_line_sam(circuit, num_factories=4)
        point = evaluate_point_sam(circuit, num_factories=4)
        assert point.execution_time >= line.execution_time

    def test_shorter_distillation_exposes_movement(self):
        circuit = ising_2d(4)
        slow = evaluate_line_sam(circuit, distill_time=11.0)
        fast = evaluate_line_sam(circuit, distill_time=2.0)
        assert fast.execution_time <= slow.execution_time
        # Movement dominates once states are cheap: the overhead factor
        # relative to the distillation bound blows up.
        assert fast.time_vs_lower_bound > slow.time_vs_lower_bound
        assert fast.execution_time > fast.lower_bound


class TestDascot:
    def test_qubits_are_one_to_three(self):
        assert dascot_qubits(100) == 400

    def test_unlimited_is_critical_path(self):
        circuit = ising_2d(4)
        result = evaluate_dascot(circuit, num_factories=UNLIMITED)
        assert result.lower_bound == 0.0
        limited = evaluate_dascot(circuit, num_factories=1)
        assert limited.execution_time > result.execution_time

    def test_retrofitted_bound_dominates(self):
        circuit = ising_2d(4)
        result = evaluate_dascot(circuit, num_factories=1)
        assert result.execution_time == pytest.approx(result.lower_bound)

    def test_factory_sweep_includes_unlimited(self):
        results = factory_sweep(ising_2d(2))
        assert results[-1].num_factories == UNLIMITED
        assert len(results) == 5

    def test_no_factory_qubits_counted(self):
        result = evaluate_dascot(ising_2d(2), num_factories=2)
        assert result.factory_qubits == 0


class TestBaselineResult:
    def test_metrics(self):
        result = BaselineResult(
            name="x", circuit_name="c", compute_qubits=100,
            factory_qubits=16, execution_time=200.0, num_operations=50,
            t_states=10, num_factories=1, lower_bound=110.0,
        )
        assert result.total_qubits == 116
        assert result.spacetime_volume(True) == pytest.approx(116 * 200.0)
        assert result.spacetime_volume(False) == pytest.approx(100 * 200.0)
        assert result.cpi == pytest.approx(4.0)
        assert result.time_vs_lower_bound == pytest.approx(200.0 / 110.0)
