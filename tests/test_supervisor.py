"""Tests for the supervised worker pool (repro.sweep.supervisor).

Covers the happy path, fault-hook kills and hangs, external SIGKILL of a
worker mid-job, per-job deadlines, retry-budget exhaustion surfacing as
structured JobCrashed / JobTimeout, worker-side exceptions (not retried —
the compiler is deterministic), and innocent-job requeueing when a fleet
recycle tears down jobs that did nothing wrong.

Worker functions must be importable from the spawned processes, so they
live at module scope.
"""

import os
import signal
import time

import pytest

from repro.sweep.supervisor import (
    FAULT_HANG,
    FAULT_KILL,
    JobCrashed,
    JobFailure,
    JobTimeout,
    SupervisedPool,
)


def square(payload):
    return payload * payload


def slow_square(payload):
    time.sleep(0.2)
    return payload * payload


def boom(payload):
    raise ValueError(f"cannot compile {payload!r}")


def _fault_once(fault):
    """A fault hook that fires on the first dispatch only."""
    fired = []

    def hook(job_seq, attempt):
        if not fired:
            fired.append(job_seq)
            return fault
        return None

    return hook


class TestHappyPath:
    def test_submit_and_result(self):
        with SupervisedPool(workers=2) as pool:
            futures = [pool.submit(square, n) for n in range(8)]
            assert [f.result(timeout=30) for f in futures] == [
                n * n for n in range(8)
            ]
            assert pool.stats.completed == 8
            assert pool.stats.restarts == 0

    def test_stats_dict_shape(self):
        with SupervisedPool(workers=1) as pool:
            pool.submit(square, 3).result(timeout=30)
            stats = pool.stats.as_dict()
        for field in ("submitted", "completed", "failed", "crashes",
                      "timeouts", "retries", "requeues", "restarts"):
            assert field in stats


class TestFaultRecovery:
    def test_scripted_kill_is_retried(self):
        with SupervisedPool(
            workers=1, fault_hook=_fault_once((FAULT_KILL,))
        ) as pool:
            assert pool.submit(square, 5).result(timeout=30) == 25
            assert pool.stats.crashes == 1
            assert pool.stats.retries == 1
            assert pool.stats.restarts >= 1

    def test_external_sigkill_is_retried(self):
        with SupervisedPool(workers=1, deadline=30.0) as pool:
            future = pool.submit(slow_square, 6)
            # murder the worker from outside while it sleeps in the job
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                pids = pool.worker_pids()
                if pids:
                    os.kill(pids[0], signal.SIGKILL)
                    break
                time.sleep(0.01)
            assert future.result(timeout=30) == 36
            assert pool.stats.crashes >= 1

    def test_deadline_kill_is_retried(self):
        with SupervisedPool(
            workers=1, deadline=0.5, fault_hook=_fault_once((FAULT_HANG, 30.0))
        ) as pool:
            assert pool.submit(square, 7).result(timeout=30) == 49
            assert pool.stats.timeouts == 1

    def test_crash_budget_exhausted_raises_job_crashed(self):
        def always_kill(job_seq, attempt):
            return (FAULT_KILL,)

        with SupervisedPool(
            workers=1, max_attempts=2, fault_hook=always_kill
        ) as pool:
            future = pool.submit(square, 8)
            with pytest.raises(JobCrashed) as err:
                future.result(timeout=60)
            assert err.value.attempts == 2
            assert err.value.code == "worker-crashed"
            assert pool.stats.crashes == 2

    def test_hang_budget_exhausted_raises_job_timeout(self):
        def always_hang(job_seq, attempt):
            return (FAULT_HANG, 30.0)

        with SupervisedPool(
            workers=1, deadline=0.3, max_attempts=2, fault_hook=always_hang
        ) as pool:
            future = pool.submit(square, 9)
            with pytest.raises(JobTimeout) as err:
                future.result(timeout=60)
            assert err.value.attempts == 2
            assert err.value.code == "deadline-exceeded"

    def test_worker_exception_not_retried(self):
        with SupervisedPool(workers=1) as pool:
            future = pool.submit(boom, "bad")
            with pytest.raises(RuntimeError, match="cannot compile"):
                future.result(timeout=30)
            # deterministic failure: one dispatch, no retries
            assert pool.stats.retries == 0
            assert pool.stats.crashes == 0
            # the pool keeps serving after a job-level failure
            assert pool.submit(square, 4).result(timeout=30) == 16

    def test_innocent_jobs_survive_recycle(self):
        """A fleet recycle requeues bystander jobs without burning attempts."""
        with SupervisedPool(
            workers=2, max_attempts=2, fault_hook=_fault_once((FAULT_KILL,))
        ) as pool:
            futures = [pool.submit(slow_square, n) for n in range(6)]
            assert [f.result(timeout=60) for f in futures] == [
                n * n for n in range(6)
            ]
            assert pool.stats.crashes == 1
            assert pool.stats.recycles == 1


class TestLifecycle:
    def test_shutdown_cancels_backlog(self):
        pool = SupervisedPool(workers=1)
        done = pool.submit(square, 2)
        assert done.result(timeout=30) == 4
        pool.shutdown(wait=True)
        with pytest.raises(RuntimeError):
            pool.submit(square, 3)

    def test_fleet_respawns_to_full_strength(self):
        with SupervisedPool(
            workers=2, fault_hook=_fault_once((FAULT_KILL,))
        ) as pool:
            pool.submit(square, 1).result(timeout=30)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and len(pool.worker_pids()) < 2:
                time.sleep(0.01)
            assert len(pool.worker_pids()) == 2
