"""OpenQASM 2 round-trip tests."""

import math

import pytest

from repro.ir import qasm
from repro.ir.circuit import Circuit, bell_pair
from repro.ir.qasm import QasmError
from repro.workloads import ising_2d


class TestDumps:
    def test_header_and_register(self):
        text = qasm.dumps(bell_pair())
        assert "OPENQASM 2.0;" in text
        assert "qreg q[2];" in text

    def test_gate_lines(self):
        text = qasm.dumps(bell_pair())
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text

    def test_angle_formatting(self):
        text = qasm.dumps(Circuit(1).rz(math.pi / 4, 0))
        assert "rz(pi/4) q[0];" in text

    def test_negative_angle(self):
        text = qasm.dumps(Circuit(1).rz(-math.pi / 2, 0))
        assert "rz(-pi/2)" in text or "rz(3*pi/2)" in text

    def test_measure_lines(self):
        text = qasm.dumps(Circuit(1).measure(0))
        assert "measure q[0] -> c[0];" in text


class TestLoads:
    def test_parse_simple(self):
        circuit = qasm.loads(qasm.dumps(bell_pair()))
        assert circuit.gate_counts() == {"h": 1, "cx": 1}

    def test_missing_header_rejected(self):
        with pytest.raises(QasmError):
            qasm.loads("qreg q[2]; h q[0];")

    def test_missing_qreg_rejected(self):
        with pytest.raises(QasmError):
            qasm.loads("OPENQASM 2.0; h q[0];")

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmError):
            qasm.loads("OPENQASM 2.0; qreg q[1]; frob q[0];")

    def test_angle_expressions(self):
        circuit = qasm.loads("OPENQASM 2.0; qreg q[1]; rz(3*pi/4) q[0];")
        assert circuit[0].param == pytest.approx(3 * math.pi / 4)

    def test_evil_angle_rejected(self):
        with pytest.raises(QasmError):
            qasm.loads("OPENQASM 2.0; qreg q[1]; rz(__import__) q[0];")

    def test_comments_stripped(self):
        text = "OPENQASM 2.0; // header\nqreg q[1];\nh q[0]; // gate\n"
        assert qasm.loads(text).count("h") == 1


class TestRoundTrip:
    @pytest.mark.parametrize("builder", [bell_pair, lambda: ising_2d(2)])
    def test_full_round_trip(self, builder):
        original = builder()
        recovered = qasm.loads(qasm.dumps(original))
        assert recovered.num_qubits == original.num_qubits
        assert recovered.gate_counts() == original.gate_counts()
        for a, b in zip(original, recovered):
            assert a.name == b.name
            assert a.qubits == b.qubits
            if a.param is not None:
                assert b.param == pytest.approx(a.param)

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "bell.qasm")
        qasm.dump_file(bell_pair(), path)
        assert qasm.load_file(path).gate_counts() == {"h": 1, "cx": 1}
