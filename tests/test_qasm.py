"""OpenQASM 2 round-trip tests."""

import math
import random

import pytest

from repro.compiler.pipeline import compile_circuit
from repro.ir import qasm
from repro.ir.circuit import Circuit, bell_pair
from repro.ir.qasm import QasmError
from repro.workloads import ising_2d


class TestDumps:
    def test_header_and_register(self):
        text = qasm.dumps(bell_pair())
        assert "OPENQASM 2.0;" in text
        assert "qreg q[2];" in text

    def test_gate_lines(self):
        text = qasm.dumps(bell_pair())
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text

    def test_angle_formatting(self):
        text = qasm.dumps(Circuit(1).rz(math.pi / 4, 0))
        assert "rz(pi/4) q[0];" in text

    def test_negative_angle(self):
        text = qasm.dumps(Circuit(1).rz(-math.pi / 2, 0))
        assert "rz(-pi/2)" in text or "rz(3*pi/2)" in text

    def test_measure_lines(self):
        text = qasm.dumps(Circuit(1).measure(0))
        assert "measure q[0] -> c[0];" in text


class TestLoads:
    def test_parse_simple(self):
        circuit = qasm.loads(qasm.dumps(bell_pair()))
        assert circuit.gate_counts() == {"h": 1, "cx": 1}

    def test_missing_header_rejected(self):
        with pytest.raises(QasmError):
            qasm.loads("qreg q[2]; h q[0];")

    def test_missing_qreg_rejected(self):
        with pytest.raises(QasmError):
            qasm.loads("OPENQASM 2.0; h q[0];")

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmError):
            qasm.loads("OPENQASM 2.0; qreg q[1]; frob q[0];")

    def test_angle_expressions(self):
        circuit = qasm.loads("OPENQASM 2.0; qreg q[1]; rz(3*pi/4) q[0];")
        assert circuit[0].param == pytest.approx(3 * math.pi / 4)

    def test_evil_angle_rejected(self):
        with pytest.raises(QasmError):
            qasm.loads("OPENQASM 2.0; qreg q[1]; rz(__import__) q[0];")

    def test_comments_stripped(self):
        text = "OPENQASM 2.0; // header\nqreg q[1];\nh q[0]; // gate\n"
        assert qasm.loads(text).count("h") == 1


class TestRoundTrip:
    @pytest.mark.parametrize("builder", [bell_pair, lambda: ising_2d(2)])
    def test_full_round_trip(self, builder):
        original = builder()
        recovered = qasm.loads(qasm.dumps(original))
        assert recovered.num_qubits == original.num_qubits
        assert recovered.gate_counts() == original.gate_counts()
        for a, b in zip(original, recovered):
            assert a.name == b.name
            assert a.qubits == b.qubits
            if a.param is not None:
                assert b.param == pytest.approx(a.param)

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "bell.qasm")
        qasm.dump_file(bell_pair(), path)
        assert qasm.load_file(path).gate_counts() == {"h": 1, "cx": 1}


class TestBarriers:
    """Barriers carry DAG pseudo-dependency edges since the scheduler
    serialises across them, so they must survive the round trip."""

    def circuit(self):
        circuit = Circuit(3, name="barriered")
        circuit.h(0).cx(0, 1)
        circuit.barrier(0, 1)
        circuit.t(1)
        circuit.barrier()  # whole register
        circuit.h(2)
        return circuit

    def test_dumps_emits_indexed_barrier(self):
        assert "barrier q[0],q[1];" in qasm.dumps(self.circuit())

    def test_dumps_emits_whole_register_barrier(self):
        assert "barrier q;" in qasm.dumps(self.circuit())

    def test_loads_preserves_barriers(self):
        recovered = qasm.loads(qasm.dumps(self.circuit()))
        barriers = [gate for gate in recovered if gate.name == "barrier"]
        assert [gate.qubits for gate in barriers] == [(0, 1), ()]

    def test_round_trip_gate_stream_identical(self):
        original = self.circuit()
        recovered = qasm.loads(qasm.dumps(original))
        assert [(g.name, g.qubits) for g in recovered] == [
            (g.name, g.qubits) for g in original
        ]

    def test_loaded_circuit_schedules_identically(self):
        # the bug this fixes: loads() used to drop barriers, so a
        # file-loaded circuit scheduled differently from the in-memory one
        original = self.circuit()
        recovered = qasm.loads(qasm.dumps(original))
        a = compile_circuit(original, routing_paths=3)
        b = compile_circuit(recovered, routing_paths=3)
        assert a.schedule.makespan == b.schedule.makespan
        assert [
            (op.kind, op.name, op.start, op.cells) for op in a.schedule
        ] == [(op.kind, op.name, op.start, op.cells) for op in b.schedule]


class TestWholeRegisterMeasure:
    def test_expands_to_per_qubit_measures(self):
        text = "OPENQASM 2.0; qreg q[3]; creg c[3]; measure q -> c;"
        circuit = qasm.loads(text)
        assert circuit.gate_counts() == {"measure": 3}
        assert [gate.qubits for gate in circuit] == [(0,), (1,), (2,)]

    def test_indexed_measure_still_works(self):
        text = "OPENQASM 2.0; qreg q[3]; creg c[3]; measure q[2] -> c[0];"
        circuit = qasm.loads(text)
        assert [gate.qubits for gate in circuit] == [(2,)]

    def test_measure_without_arrow_accepted(self):
        text = "OPENQASM 2.0; qreg q[2]; measure q[1];"
        assert [gate.qubits for gate in qasm.loads(text)] == [(1,)]

    def test_garbage_measure_rejected(self):
        with pytest.raises(QasmError):
            qasm.loads("OPENQASM 2.0; qreg q[2]; measure 17;")

    def test_multi_statement_line(self):
        text = (
            "OPENQASM 2.0; qreg q[2]; creg c[2]; "
            "h q[0]; measure q[0] -> c[0]; measure q[1] -> c[1];"
        )
        circuit = qasm.loads(text)
        assert circuit.gate_counts() == {"h": 1, "measure": 2}


class TestAngleRoundTrip:
    """Property tests: loads(dumps(c)) preserves every rz/rx angle,
    through both the tidy pi-multiple formatter and the repr fallback."""

    def _round_trip_angles(self, angles):
        circuit = Circuit(1)
        for theta in angles:
            circuit.rz(theta, 0)
            circuit.rx(theta, 0)
        recovered = qasm.loads(qasm.dumps(circuit))
        assert len(recovered) == len(circuit)
        for a, b in zip(circuit, recovered):
            assert b.name == a.name
            assert b.param == pytest.approx(a.param, abs=1e-12)

    def test_tidy_pi_multiples(self):
        angles = [
            k * math.pi / denom
            for denom in (1, 2, 3, 4, 6, 8, 16)
            for k in (-5, -1, 1, 2, 7)
        ]
        self._round_trip_angles(angles)

    def test_zero_and_full_turns(self):
        self._round_trip_angles([0.0, 2 * math.pi, -2 * math.pi, 64 * math.pi])

    def test_random_angles_repr_fallback(self):
        rng = random.Random(20260730)
        angles = [rng.uniform(-8 * math.pi, 8 * math.pi) for _ in range(50)]
        self._round_trip_angles(angles)

    def test_tiny_and_huge_magnitudes(self):
        self._round_trip_angles([1e-9, -1e-9, 1e3, -123.456789, 3e-5])

    def test_non_tidy_near_pi_multiples(self):
        # close to, but not exactly, tidy multiples: must use the fallback
        self._round_trip_angles(
            [math.pi / 4 + 1e-7, -math.pi / 2 - 1e-7, 3 * math.pi / 8 + 1e-6]
        )
