"""Fault-path tests for the compile service, end-to-end over real TCP.

Worker death mid-compile (SIGKILL), retry-budget exhaustion surfacing as
structured ``compile-failed``/``timeout`` frames, request deadlines,
client disconnect cleanup, and the fault counters in ``stats`` — each
against a live :class:`~repro.service.ServiceThread` with a real
supervised pool underneath.
"""

import socket
import struct
import time

import pytest

from repro.compiler.config import CompilerConfig
from repro.compiler.pipeline import FaultTolerantCompiler
from repro.faultinject import ScriptedWorkerFaults
from repro.service import Client, ServiceError, ServiceThread, protocol
from repro.sweep.supervisor import FAULT_HANG, FAULT_KILL
from repro.workloads import load_benchmark

WORKLOAD = "ising_2d_2x2"
CONFIG = {"routing_paths": 3}


def direct_fingerprint():
    circuit = load_benchmark(WORKLOAD)
    result = FaultTolerantCompiler(CompilerConfig(**CONFIG)).compile(circuit)
    return result.fingerprint()


@pytest.fixture
def faulty_service():
    """A service whose worker faults the test scripts per scenario."""
    faults = ScriptedWorkerFaults()
    with ServiceThread(
        jobs=1,
        cache=None,
        job_deadline=0.75,
        job_attempts=3,
        worker_faults=faults,
    ) as thread:
        yield thread, faults


class TestWorkerDeath:
    def test_killed_worker_retried_fingerprint_identical(self, faulty_service):
        thread, faults = faulty_service
        faults.arm({0: (FAULT_KILL,)})  # SIGKILL mid first dispatch
        with Client(*thread.address, timeout=60.0) as client:
            reply = client.compile(workload=WORKLOAD, **CONFIG)
            assert reply.source == "compiled"
            assert reply.fingerprint == direct_fingerprint()
            stats = client.stats()
        assert faults.fired == 1
        assert stats["pool"]["crashes"] == 1
        assert stats["pool"]["retries"] == 1
        assert stats["pool"]["restarts"] >= 1

    def test_crash_budget_exhausted_is_compile_failed(self, faulty_service):
        thread, faults = faulty_service
        faults.arm({0: (FAULT_KILL,), 1: (FAULT_KILL,), 2: (FAULT_KILL,)})
        with Client(*thread.address, timeout=60.0) as client:
            with pytest.raises(ServiceError) as err:
                client.compile(workload=WORKLOAD, **CONFIG)
            assert err.value.code == protocol.E_COMPILE_FAILED
            assert err.value.details["attempts"] == 3
            assert err.value.details["cause"] == "worker-crashed"
            # the server is still serving: the same request now succeeds
            faults.disarm()
            reply = client.compile(workload=WORKLOAD, **CONFIG)
            assert reply.fingerprint == direct_fingerprint()
            stats = client.stats()
        assert stats["compile"]["compile_failures"] == 1

    def test_hang_budget_exhausted_is_timeout(self, faulty_service):
        thread, faults = faulty_service
        faults.arm({i: (FAULT_HANG, 30.0) for i in range(3)})
        with Client(*thread.address, timeout=60.0) as client:
            with pytest.raises(ServiceError) as err:
                client.compile(workload=WORKLOAD, **CONFIG)
            assert err.value.code == protocol.E_TIMEOUT
            assert err.value.details["attempts"] == 3
            stats = client.stats()
        assert stats["compile"]["timeouts"] == 1
        assert stats["pool"]["timeouts"] == 3


class TestRequestDeadline:
    def test_client_requested_timeout_expires(self, faulty_service):
        thread, faults = faulty_service
        # one long stall, well within the job's own attempt budget: the
        # *request* budget must fire first
        faults.arm({0: (FAULT_HANG, 30.0)})
        with Client(*thread.address, timeout=60.0) as client:
            start = time.monotonic()
            with pytest.raises(ServiceError) as err:
                client.compile(workload=WORKLOAD, timeout=0.3, **CONFIG)
            assert err.value.code == protocol.E_TIMEOUT
            assert time.monotonic() - start < 10.0
            # connection stays usable after a timeout error frame
            faults.disarm()
            assert client.ping()["ok"]

    def test_invalid_timeout_field_rejected(self, faulty_service):
        thread, _ = faulty_service
        with Client(*thread.address, timeout=30.0) as client:
            with pytest.raises(ServiceError) as err:
                client.compile(workload=WORKLOAD, timeout=-1.0, **CONFIG)
            assert err.value.code == protocol.E_BAD_REQUEST


class TestDisconnectCleanup:
    def _wait_stat(self, thread, getter, want, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if getter(thread.service.broker.metrics) >= want:
                return True
            time.sleep(0.01)
        return False

    def test_vanishing_client_is_counted_and_cleaned(self, faulty_service):
        thread, faults = faulty_service
        faults.arm({0: (FAULT_HANG, 30.0)})  # keep the request in flight
        frame = protocol.encode_line(
            protocol.compile_request(workload=WORKLOAD, config=CONFIG)
        )
        with socket.create_connection(thread.address, timeout=10.0) as sock:
            sock.sendall(frame)
            time.sleep(0.1)  # let the dispatch start
        # close() above = EOF mid-request
        assert self._wait_stat(thread, lambda m: m.disconnects, 1)
        assert self._wait_stat(thread, lambda m: m.abandoned, 1)
        # slots and waiters were released: the next request succeeds
        faults.disarm()
        with Client(*thread.address, timeout=60.0) as client:
            reply = client.compile(workload=WORKLOAD, **CONFIG)
            assert reply.fingerprint == direct_fingerprint()
        assert thread.service.broker.pending == 0

    def test_rst_mid_frame_keeps_server_alive(self, faulty_service):
        thread, _ = faulty_service
        frame = protocol.encode_line(
            protocol.compile_request(workload=WORKLOAD, config=CONFIG)
        )
        with socket.create_connection(thread.address, timeout=10.0) as sock:
            sock.sendall(frame[: len(frame) // 2])
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        with Client(*thread.address, timeout=30.0) as client:
            assert client.ping()["ok"]


class TestStatsPlumbing:
    def test_stats_report_pool_and_fault_sections(self, faulty_service):
        thread, _ = faulty_service
        with Client(*thread.address, timeout=60.0) as client:
            client.compile(workload=WORKLOAD, **CONFIG)
            stats = client.stats()
        pool = stats["pool"]
        for key in ("submitted", "completed", "crashes", "timeouts",
                    "retries", "requeues", "restarts", "recycles"):
            assert key in pool
        assert pool["submitted"] == 1
        assert pool["completed"] == 1
        assert stats["faults"] == {"disconnects": 0, "abandoned_jobs": 0}
