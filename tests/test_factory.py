"""Unit tests for the magic-state factory model."""

import pytest

from repro.arch.factory import Factory, FactoryBank, FactoryConfig


class TestFactoryConfig:
    def test_defaults(self):
        config = FactoryConfig()
        assert config.distill_time == 11.0
        assert config.area == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            FactoryConfig(distill_time=0)
        with pytest.raises(ValueError):
            FactoryConfig(buffer_capacity=0)
        with pytest.raises(ValueError):
            FactoryConfig(area=0)


class TestSingleFactory:
    def test_first_state_at_distill_time(self):
        factory = Factory(0, (0, 0), FactoryConfig())
        assert factory.collect(0.0) == pytest.approx(11.0)

    def test_pipelined_production(self):
        factory = Factory(0, (0, 0), FactoryConfig())
        times = [factory.collect(0.0) for _ in range(5)]
        assert times == [pytest.approx(11.0 * (i + 1)) for i in range(5)]

    def test_late_consumer_gets_buffered_state(self):
        factory = Factory(0, (0, 0), FactoryConfig())
        first = factory.collect(100.0)
        # State was ready long before; availability is the consumer's time.
        assert first == pytest.approx(100.0)

    def test_buffer_backfills_to_horizon(self):
        factory = Factory(0, (0, 0), FactoryConfig(buffer_capacity=2))
        factory.collect(50.0)
        # Two more states should be ready (buffered) without extra waiting.
        assert factory.collect(50.0) == pytest.approx(50.0)
        assert factory.collect(50.0) == pytest.approx(50.0)

    def test_buffer_capacity_throttles(self):
        factory = Factory(0, (0, 0), FactoryConfig(buffer_capacity=1))
        factory.collect(200.0)
        factory.collect(200.0)  # buffered one
        third = factory.collect(200.0)
        assert third == pytest.approx(200.0 + 11.0)


class TestFactoryBank:
    def test_bank_requires_ports(self):
        with pytest.raises(ValueError):
            FactoryBank([])

    def test_aggregate_throughput(self):
        bank = FactoryBank([(0, 0), (0, 5)], FactoryConfig())
        times = sorted(bank.acquire(0.0)[0] for _ in range(4))
        assert times == [
            pytest.approx(11.0), pytest.approx(11.0),
            pytest.approx(22.0), pytest.approx(22.0),
        ]

    def test_round_robin_by_availability(self):
        bank = FactoryBank([(0, 0), (0, 5)], FactoryConfig())
        __, f1 = bank.acquire(0.0)
        __, f2 = bank.acquire(0.0)
        assert {f1.index, f2.index} == {0, 1}

    def test_total_area(self):
        bank = FactoryBank([(0, 0), (0, 5)], FactoryConfig(area=20))
        assert bank.total_area == 40

    def test_throughput_bound_is_eq2(self):
        bank = FactoryBank([(0, 0), (0, 5)], FactoryConfig(distill_time=11))
        assert bank.throughput_bound(100) == pytest.approx(100 * 11 / 2)

    def test_states_collected_counter(self):
        bank = FactoryBank([(0, 0)])
        for _ in range(3):
            bank.acquire(0.0)
        assert bank.states_collected == 3
