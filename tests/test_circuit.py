"""Unit tests for repro.ir.circuit."""

import math

import pytest

from repro.ir import gates as g
from repro.ir.circuit import Circuit, bell_pair, ghz_chain, random_clifford_t
from repro.ir.gates import GateError


class TestBuilder:
    def test_fluent_chaining(self):
        qc = Circuit(2).h(0).cx(0, 1).t(1)
        assert len(qc) == 3
        assert [gate.name for gate in qc] == ["h", "cx", "t"]

    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_out_of_range_qubit_rejected(self):
        qc = Circuit(2)
        with pytest.raises(GateError):
            qc.h(5)

    def test_getitem(self):
        qc = bell_pair()
        assert qc[0].name == "h"
        assert qc[1].name == "cx"

    def test_equality(self):
        assert bell_pair() == bell_pair()
        assert bell_pair() != Circuit(2).h(0)


class TestCounts:
    def test_gate_counts(self):
        qc = Circuit(3).h(0).h(1).cx(0, 1).t(2)
        assert qc.gate_counts() == {"h": 2, "cx": 1, "t": 1}

    def test_t_count_explicit(self):
        qc = Circuit(1).t(0).tdg(0)
        assert qc.t_count() == 2

    def test_t_count_rz(self):
        qc = Circuit(1).rz(math.pi / 4, 0).rz(math.pi / 2, 0)
        assert qc.t_count() == 1  # only the non-Clifford rotation counts

    def test_t_count_scaled(self):
        qc = Circuit(1).rz(0.3, 0)
        assert qc.t_count(t_per_rotation=30) == 30

    def test_two_qubit_count(self):
        qc = Circuit(3).cx(0, 1).cx(1, 2).h(0)
        assert qc.num_two_qubit_gates() == 2


class TestDepth:
    def test_serial_depth(self):
        qc = Circuit(1).h(0).t(0).h(0)
        assert qc.depth() == 3

    def test_parallel_depth(self):
        qc = Circuit(4).h(0).h(1).h(2).h(3)
        assert qc.depth() == 1

    def test_entangling_depth(self):
        assert bell_pair().depth() == 2

    def test_empty_depth(self):
        assert Circuit(2).depth() == 0


class TestCompose:
    def test_compose_offsets(self):
        left = Circuit(4).h(0)
        right = Circuit(2).cx(0, 1)
        left.compose(right, offset=2)
        assert left[1].qubits == (2, 3)

    def test_compose_rejects_overflow(self):
        left = Circuit(2)
        with pytest.raises(GateError):
            left.compose(bell_pair(), offset=1)


class TestInverse:
    def test_inverse_reverses_and_daggers(self):
        qc = Circuit(2).h(0).s(0).cx(0, 1)
        inv = qc.inverse()
        assert [gate.name for gate in inv] == ["cx", "sdg", "h"]

    def test_inverse_rejects_measure(self):
        qc = Circuit(1).measure(0)
        with pytest.raises(GateError):
            qc.inverse()


class TestRemap:
    def test_remap_relabels(self):
        qc = bell_pair().remap({0: 1, 1: 0})
        assert qc[1].qubits == (1, 0)

    def test_remap_can_grow(self):
        qc = bell_pair().remap({0: 3, 1: 4}, num_qubits=5)
        assert qc.num_qubits == 5


class TestFactories:
    def test_ghz_chain_structure(self):
        qc = ghz_chain(5)
        assert qc.count("h") == 1
        assert qc.count("cx") == 4

    def test_random_is_deterministic(self):
        a = random_clifford_t(4, 30, seed=3)
        b = random_clifford_t(4, 30, seed=3)
        assert a == b

    def test_random_seed_changes_output(self):
        a = random_clifford_t(4, 30, seed=3)
        b = random_clifford_t(4, 30, seed=4)
        assert a != b

    def test_measure_all(self):
        qc = Circuit(3).measure_all()
        assert qc.count("measure") == 3

    def test_summary_mentions_counts(self):
        assert "cx:1" in bell_pair().summary()
