"""Scheduler behaviour tests on small, hand-checkable circuits."""

import pytest

from repro.arch.instruction_set import InstructionSet
from repro.arch.layout import assign_factory_ports, build_layout
from repro.compiler.mapping import grid_mapping
from repro.ir.circuit import Circuit
from repro.scheduling.scheduler import LatticeSurgeryScheduler
from repro.workloads import ising_2d


def schedule_circuit(circuit, r=4, factories=1, isa=None):
    layout = build_layout(circuit.num_qubits, r)
    placement = grid_mapping(circuit, layout)
    ports = assign_factory_ports(layout, factories)
    scheduler = LatticeSurgeryScheduler(
        layout.grid, isa or InstructionSet.paper(), ports
    )
    return scheduler.run(circuit, placement), scheduler


class TestSingleGates:
    def test_pauli_costs_nothing(self):
        schedule, __ = schedule_circuit(Circuit(4).x(0).z(1))
        assert schedule.makespan == 0.0

    def test_hadamard_duration(self):
        schedule, __ = schedule_circuit(Circuit(4).h(0))
        assert schedule.makespan == pytest.approx(3.0)

    def test_s_gate_duration(self):
        schedule, __ = schedule_circuit(Circuit(4).s(0))
        assert schedule.makespan == pytest.approx(1.5)

    def test_serial_chain_adds_up(self):
        schedule, __ = schedule_circuit(Circuit(4).h(0).s(0))
        assert schedule.makespan == pytest.approx(4.5)

    def test_parallel_hadamards_overlap(self):
        schedule, __ = schedule_circuit(Circuit(4).h(0).h(3))
        assert schedule.makespan == pytest.approx(3.0)


class TestCnot:
    def test_cnot_includes_alignment_moves(self):
        schedule, __ = schedule_circuit(Circuit(4).cx(0, 1))
        gates = [op for op in schedule.ops if op.kind == "gate"]
        assert gates[-1].duration == pytest.approx(2.0)
        # operands start adjacent -> at least one move to reach diagonal
        assert schedule.num_moves >= 1

    def test_diagonal_operands_no_moves(self):
        # On r=22-style fully separated layouts, qubits 0 and 1 of a 2x2
        # block sit with a bus cell between them.
        qc = Circuit(4).cx(0, 3)  # diagonal corners of the 2x2 block
        layout = build_layout(4, 6)
        placement = grid_mapping(qc, layout)
        ports = assign_factory_ports(layout, 1)
        scheduler = LatticeSurgeryScheduler(
            layout.grid, InstructionSet.paper(), ports
        )
        schedule = scheduler.run(qc, placement)
        assert schedule.makespan >= 2.0


class TestMagicStates:
    def test_t_gate_waits_for_distillation(self):
        schedule, scheduler = schedule_circuit(Circuit(4).t(0))
        # 11d distillation + route + 2.5d consumption
        assert schedule.makespan >= 13.5
        assert scheduler.stats.magic_states == 1

    def test_t_gates_pipeline(self):
        qc = Circuit(4)
        for q in range(4):
            qc.t(q)
        schedule, scheduler = schedule_circuit(qc)
        assert scheduler.stats.magic_states == 4
        # Pipelined: far less than 4 x (11 + route + 2.5) serial latency.
        assert schedule.makespan < 4 * 20

    def test_rz_consumes_one_state_by_default(self):
        schedule, scheduler = schedule_circuit(Circuit(4).rz(0.3, 0))
        assert scheduler.stats.magic_states == 1

    def test_clifford_rz_consumes_none(self):
        import math

        schedule, scheduler = schedule_circuit(Circuit(4).rz(math.pi / 2, 0))
        assert scheduler.stats.magic_states == 0

    def test_more_factories_reduce_t_heavy_makespan(self):
        qc = Circuit(16)
        for q in range(16):
            qc.t(q)
        one, __ = schedule_circuit(qc, r=6, factories=1)
        four, __ = schedule_circuit(qc, r=6, factories=4)
        assert four.makespan < one.makespan


class TestInvariants:
    def test_all_gates_scheduled(self):
        qc = ising_2d(2)
        schedule, __ = schedule_circuit(qc, r=4)
        scheduled = {op.gate_index for op in schedule.ops if op.kind == "gate"}
        assert len(scheduled) == len(qc)

    def test_makespan_at_least_lower_bound(self):
        qc = ising_2d(2)
        schedule, __ = schedule_circuit(qc, r=4)
        n_t = qc.t_count()
        assert schedule.makespan >= n_t * 11.0

    def test_per_qubit_timelines_consistent(self):
        qc = ising_2d(2)
        schedule, __ = schedule_circuit(qc, r=4)
        schedule.validate()

    def test_determinism(self):
        qc = ising_2d(2)
        a, __ = schedule_circuit(qc, r=4)
        b, __ = schedule_circuit(qc, r=4)
        assert a.makespan == b.makespan
        assert len(a.ops) == len(b.ops)

    def test_grid_not_mutated_across_runs(self):
        qc = Circuit(4).h(0).cx(0, 1)
        layout = build_layout(4, 4)
        placement = grid_mapping(qc, layout)
        ports = assign_factory_ports(layout, 1)
        scheduler = LatticeSurgeryScheduler(
            layout.grid, InstructionSet.paper(), ports
        )
        scheduler.run(qc, placement)
        # template grid still empty
        assert not layout.grid.occupied_positions()

    def test_unit_isa_reduces_gate_latency(self):
        qc = ising_2d(2)
        paper, __ = schedule_circuit(qc, r=4, isa=InstructionSet.paper())
        unit, __ = schedule_circuit(qc, r=4, isa=InstructionSet.unit())
        assert unit.makespan <= paper.makespan
