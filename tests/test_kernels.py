"""Backend registry semantics and pure<->numpy kernel parity.

The numpy kernels are a pure speed play: every result — paths, tie-breaks,
redundant-move pairs, validator verdicts, behavioural fingerprints — must
be bit-identical to the pure-Python reference.  These tests pin each
backend in turn and compare outputs directly, and prove (via the
``kernels.invocations`` counters) that a numpy-pinned compile really
routes through the vectorized code paths instead of silently falling back.
"""

import random

import pytest

from repro import kernels
from repro.arch.grid import Grid
from repro.compiler import CompilerConfig, FaultTolerantCompiler
from repro.routing.dijkstra import find_paths_to_all, reachable_free_cells
from repro.workloads import ising_2d

HAVE_NUMPY = kernels.HAVE_NUMPY
needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


@pytest.fixture(autouse=True)
def _unpinned(monkeypatch):
    """Each test starts unpinned and with a clean environment override."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    kernels.set_backend(None)
    yield
    kernels.set_backend(None)


def random_grid(rng, rows=9, cols=9, fill=0.3):
    grid = Grid(rows, cols)
    qubit = 100
    for r in range(rows):
        for c in range(cols):
            if rng.random() < fill:
                grid.place(qubit, (r, c))
                qubit += 1
    return grid


class TestRegistry:
    def test_pure_always_available(self):
        assert "pure" in kernels.available()

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError):
            kernels.resolve("fortran")

    def test_set_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            kernels.set_backend("fortran")

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "pure")
        if HAVE_NUMPY:
            assert kernels.resolve("numpy") == "numpy"
        assert kernels.choose(10**9, 1, spec="pure") == "pure"

    def test_env_var_pins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "pure")
        assert kernels.resolve() == "pure"
        assert kernels.choose(10**9, 1) == "pure"

    def test_pin_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "pure")
        with kernels.use_backend("pure") as resolved:
            assert resolved == "pure"

    def test_auto_threshold_gating(self):
        if HAVE_NUMPY:
            assert kernels.choose(kernels.WAVE_MIN_CELLS,
                                  kernels.WAVE_MIN_CELLS) == "numpy"
        assert kernels.choose(kernels.WAVE_MIN_CELLS - 1,
                              kernels.WAVE_MIN_CELLS) == "pure"

    def test_auto_spec_preserves_surrounding_pin(self):
        with kernels.use_backend("pure"):
            # "auto" expresses no preference; the outer pin stays in force.
            with kernels.use_backend("auto"):
                assert kernels.choose(10**9, 1) == "pure"
            assert kernels.choose(10**9, 1) == "pure"

    def test_use_backend_restores_previous_pin(self):
        kernels.set_backend("pure")
        with kernels.use_backend("pure"):
            pass
        assert kernels.resolve() == "pure"
        kernels.set_backend(None)

    @needs_numpy
    def test_numpy_pin_without_numpy_is_an_error(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        with pytest.raises(ValueError, match="numpy"):
            kernels.resolve("numpy")

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            CompilerConfig(backend="fortran")

    def test_backend_never_in_sweep_cache_key(self):
        from repro.sweep.jobs import config_fingerprint

        assert config_fingerprint(CompilerConfig(backend="pure")) == \
            config_fingerprint(CompilerConfig(backend="auto"))


@needs_numpy
class TestKernelParity:
    """Direct pure-vs-numpy comparisons on randomized inputs."""

    def test_wave_paths_to_all_matches_pure(self):
        rng = random.Random(7)
        for trial in range(25):
            grid = random_grid(rng, fill=rng.choice([0.15, 0.35, 0.55]))
            cells = [(r, c) for r in range(grid.rows) for c in range(grid.cols)]
            source = rng.choice([p for p in cells if not grid.is_occupied(p)])
            goals = set(rng.sample(cells, rng.randint(1, 8)))
            avoid = set(rng.sample(cells, rng.randint(0, 4))) - {source}
            with kernels.use_backend("pure"):
                want = find_paths_to_all(grid, source, goals, avoid=avoid)
            with kernels.use_backend("numpy"):
                got = find_paths_to_all(grid, source, goals, avoid=avoid)
            assert {g: (p.cells, p.cost) for g, p in want.items()} == \
                {g: (p.cells, p.cost) for g, p in got.items()}, f"trial {trial}"

    def test_reachable_free_cells_matches_pure(self):
        rng = random.Random(11)
        for trial in range(25):
            grid = random_grid(rng, fill=0.3)
            source = (rng.randrange(grid.rows), rng.randrange(grid.cols))
            kwargs = {
                "max_distance": rng.choice([None, 2, 4]),
                "limit": rng.choice([None, 1, 3]),
            }
            with kernels.use_backend("pure"):
                want = reachable_free_cells(grid, source, **kwargs)
            with kernels.use_backend("numpy"):
                got = reachable_free_cells(grid, source, **kwargs)
            assert want == got, f"trial {trial} ({kwargs})"

    def test_redundant_pairs_match_pure(self):
        from repro.scheduling.redundant_moves import find_redundant_pairs

        compiled = FaultTolerantCompiler(
            CompilerConfig(routing_paths=3, eliminate_redundant_moves=False)
        ).compile(ising_2d(4))
        schedule = compiled.schedule
        with kernels.use_backend("pure"):
            want = find_redundant_pairs(schedule)
        kernels.invocations.clear()
        with kernels.use_backend("numpy"):
            got = find_redundant_pairs(schedule)
        assert kernels.invocations["redundant_moves"] == 1
        assert want == got

    @staticmethod
    def _interval_checks(schedule):
        from repro.verify.validator import ScheduleValidator

        validator = ScheduleValidator(schedule)
        validator.check_timelines()
        validator.check_cell_conflicts()
        validator.check_min_start()
        return validator.report

    def test_validator_verdicts_match_pure(self):
        result = FaultTolerantCompiler(
            CompilerConfig(routing_paths=3)
        ).compile(ising_2d(3))
        with kernels.use_backend("pure"):
            want = self._interval_checks(result.schedule)
        kernels.invocations.clear()
        with kernels.use_backend("numpy"):
            got = self._interval_checks(result.schedule)
        assert kernels.invocations["intervals_timeline"] >= 1
        assert want.ok and got.ok
        assert want.checks == got.checks

    def test_validator_violations_fall_back_to_pure_reports(self):
        """On any violation the numpy fast path defers to the pure scan, so
        reports (messages, ordering) are identical to a pure-only run."""
        from dataclasses import replace

        result = FaultTolerantCompiler(
            CompilerConfig(routing_paths=3)
        ).compile(ising_2d(3))
        ops = list(result.schedule.ops)
        # Pull one mid-schedule op back to t=0 to force timeline overlap.
        victim = next(i for i, op in enumerate(ops)
                      if op.qubits and op.start > 0)
        ops[victim] = replace(ops[victim], start=0.0, min_start=0.0)
        broken = type(result.schedule)(ops=ops)
        with kernels.use_backend("pure"):
            want = self._interval_checks(broken)
        with kernels.use_backend("numpy"):
            got = self._interval_checks(broken)
        assert not want.ok
        assert [v.message for v in want.violations] == \
            [v.message for v in got.violations]


class TestCompileParity:
    @needs_numpy
    def test_numpy_pinned_compile_is_bit_identical(self):
        circuit = ising_2d(4)
        pure = FaultTolerantCompiler(
            CompilerConfig(backend="pure")
        ).compile(circuit)
        numpy_r = FaultTolerantCompiler(
            CompilerConfig(backend="numpy")
        ).compile(circuit)
        assert pure.fingerprint() == numpy_r.fingerprint()
        assert pure.schedule.to_dict() == numpy_r.schedule.to_dict()

    @needs_numpy
    def test_numpy_backend_is_actually_exercised(self):
        """Tier-1 guard: a numpy-pinned compile must route through the
        vectorized kernels — never silently fall back to pure."""
        kernels.invocations.clear()
        FaultTolerantCompiler(
            CompilerConfig(backend="numpy")
        ).compile(ising_2d(4), validate=True)
        assert kernels.invocations["wave_to_all"] > 0
        assert kernels.invocations["intervals_timeline"] > 0
        assert kernels.invocations["intervals_cells"] > 0
        assert kernels.invocations["redundant_moves"] > 0

    def test_pure_pinned_compile_never_touches_numpy(self):
        kernels.invocations.clear()
        FaultTolerantCompiler(
            CompilerConfig(backend="pure")
        ).compile(ising_2d(3), validate=True)
        assert not kernels.invocations


class TestBenchBackend:
    def test_bench_meta_records_backend(self):
        from repro.perf.bench import run_bench

        report = run_bench(fast=True, workloads=["ising_2d_2x2"],
                           backend="pure")
        assert report.meta["backend"] == "pure"

    @needs_numpy
    def test_bench_fingerprints_identical_across_backends(self):
        from repro.perf.bench import FINGERPRINT_FIELDS, run_bench

        a = run_bench(fast=True, backend="pure").as_dict()
        b = run_bench(fast=True, backend="numpy").as_dict()
        for name in a["cases"]:
            for field in FINGERPRINT_FIELDS:
                assert a["cases"][name][field] == b["cases"][name][field], \
                    (name, field)
