"""Tests for the ablation experiment."""

from repro.experiments import ablations


class TestAblations:
    def test_all_variants_present(self):
        table = ablations.run(fast=True, models=["ising"])
        variants = {row["variant"] for row in table.rows}
        assert variants == {
            "full", "no-lookahead", "no-move-elimination", "no-factory-buffer",
        }

    def test_elimination_never_hurts(self):
        table = ablations.run(fast=True, models=["ising"])
        rows = {r["variant"]: r for r in table.rows}
        assert rows["full"]["exec_time_d"] <= (
            rows["no-move-elimination"]["exec_time_d"] + 1e-6
        )
