"""Unit tests for repro.ir.gates."""

import math

import pytest

from repro.ir import gates as g
from repro.ir.gates import Gate, GateError, is_multiple_of, normalize_angle


class TestNormalizeAngle:
    def test_identity_range(self):
        assert normalize_angle(1.0) == pytest.approx(1.0)

    def test_negative_wraps(self):
        assert normalize_angle(-math.pi / 2) == pytest.approx(3 * math.pi / 2)

    def test_two_pi_is_zero(self):
        assert normalize_angle(2 * math.pi) == pytest.approx(0.0)

    def test_large_angle(self):
        assert normalize_angle(5 * math.pi) == pytest.approx(math.pi)


class TestIsMultipleOf:
    def test_pi_is_multiple_of_half_pi(self):
        assert is_multiple_of(math.pi, math.pi / 2)

    def test_quarter_pi_not_multiple_of_half_pi(self):
        assert not is_multiple_of(math.pi / 4, math.pi / 2)

    def test_quarter_pi_is_multiple_of_quarter_pi(self):
        assert is_multiple_of(math.pi / 4, math.pi / 4)

    def test_noise_tolerated(self):
        assert is_multiple_of(math.pi / 2 + 1e-12, math.pi / 2)


class TestGateConstruction:
    def test_unknown_name_rejected(self):
        with pytest.raises(GateError):
            Gate("frobnicate", (0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(GateError):
            Gate(g.CX, (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(GateError):
            Gate(g.CX, (1, 1))

    def test_negative_qubit_rejected(self):
        with pytest.raises(GateError):
            Gate(g.H, (-1,))

    def test_param_required_for_rz(self):
        with pytest.raises(GateError):
            Gate(g.RZ, (0,))

    def test_param_forbidden_for_h(self):
        with pytest.raises(GateError):
            Gate(g.H, (0,), param=1.0)

    def test_builders(self):
        assert g.h(3).qubits == (3,)
        assert g.cx(0, 1).qubits == (0, 1)
        assert g.rz(0.5, 2).param == 0.5


class TestClassification:
    def test_h_is_clifford(self):
        assert g.h(0).is_clifford
        assert not g.h(0).is_t_like

    def test_t_is_t_like(self):
        assert g.t(0).is_t_like
        assert not g.t(0).is_clifford

    def test_clifford_rz(self):
        assert g.rz(math.pi / 2, 0).is_clifford
        assert g.rz(math.pi, 0).is_clifford
        assert not g.rz(math.pi / 2, 0).is_t_like

    def test_non_clifford_rz(self):
        assert g.rz(math.pi / 4, 0).is_t_like
        assert g.rz(0.3, 0).is_t_like

    def test_pauli_flags(self):
        assert g.x(0).is_pauli
        assert g.z(0).is_pauli
        assert not g.h(0).is_pauli

    def test_two_qubit(self):
        assert g.cx(0, 1).is_two_qubit
        assert not g.t(0).is_two_qubit


class TestDagger:
    def test_s_dagger(self):
        assert g.s(0).dagger().name == g.SDG
        assert g.sdg(0).dagger().name == g.S

    def test_t_dagger(self):
        assert g.t(0).dagger().name == g.TDG

    def test_self_inverse(self):
        for gate in (g.h(0), g.x(0), g.cx(0, 1), g.swap(0, 1)):
            assert gate.dagger() == gate

    def test_rz_dagger_negates(self):
        assert g.rz(0.7, 0).dagger().param == pytest.approx(-0.7)

    def test_measure_has_no_inverse(self):
        with pytest.raises(GateError):
            g.measure(0).dagger()


class TestRemap:
    def test_on_moves_qubits(self):
        gate = g.cx(0, 1).on(4, 7)
        assert gate.qubits == (4, 7)
        assert gate.name == g.CX

    def test_str_contains_name(self):
        assert "cx" in str(g.cx(0, 1))
        assert "rz" in str(g.rz(0.25, 3))
