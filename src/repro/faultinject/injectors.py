"""Scriptable fault injectors the chaos harness arms per scenario.

Both injectors are *armed* with a finite budget of faults and *disarm*
back to transparent pass-through, so one long-lived server can be driven
through hundreds of scenarios without restarting.  They are thread-safe:
the harness arms them from the test thread while the supervisor thread
(worker faults) and executor threads (disk faults) consult them.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..sweep.cache import FaultInjector
from ..sweep.supervisor import Fault


class ScriptedWorkerFaults:
    """A ``fault_hook`` whose verdicts come from a per-scenario script.

    The script maps *dispatch indices* (0-based, counted from the last
    :meth:`arm`) to fault verdicts — ``("kill",)`` or ``("hang", secs)``.
    Each scripted fault fires exactly once; unscripted dispatches run
    clean.  Retries count as dispatches too, so ``{0: kill, 1: kill}``
    burns two of a job's attempts.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._script: Dict[int, Tuple] = {}
        self._dispatches = 0
        self.fired = 0

    def arm(self, script: Dict[int, Tuple]) -> None:
        with self._lock:
            self._script = dict(script)
            self._dispatches = 0

    def disarm(self) -> None:
        with self._lock:
            self._script = {}

    def __call__(self, job_seq: int, attempt: int) -> Fault:
        with self._lock:
            index = self._dispatches
            self._dispatches += 1
            fault = self._script.pop(index, None)
            if fault is not None:
                self.fired += 1
            return fault


class ScriptedPeerFaults:
    """Remote-peer fault injector for :class:`~repro.service.CachePeer`.

    Armed with budgets of ``cache-get`` requests to sabotage: ``reset``
    makes the peer write half the response frame and hard-abort the
    connection; ``corrupt`` makes it serve a deliberately torn entry
    whose advertised checksum no longer matches the payload (the client
    must reject it and treat the lookup as a miss).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._conn_resets = 0
        self._corrupt_gets = 0
        self.resets = 0
        self.corruptions = 0

    def arm(self, conn_resets: int = 0, corrupt_gets: int = 0) -> None:
        with self._lock:
            self._conn_resets = conn_resets
            self._corrupt_gets = corrupt_gets

    def disarm(self) -> None:
        self.arm()

    def on_get(self, key: str) -> Optional[str]:
        """The chaos action for one ``cache-get``: None, "reset" or "corrupt"."""
        with self._lock:
            if self._conn_resets > 0:
                self._conn_resets -= 1
                self.resets += 1
                return "reset"
            if self._corrupt_gets > 0:
                self._corrupt_gets -= 1
                self.corruptions += 1
                return "corrupt"
            return None


class ScriptedDiskFaults(FaultInjector):
    """Disk-fault injector for :class:`~repro.sweep.cache.CompileCache`.

    Armed with budgets of reads/writes to fail (``OSError``, as a flaky
    disk would) and of just-written entries to truncate (a torn write
    that slipped past the atomic-rename journal, e.g. media corruption).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._fail_reads = 0
        self._fail_writes = 0
        self._truncate_writes = 0
        self.read_faults = 0
        self.write_faults = 0
        self.truncations = 0
        self.last_truncated: Optional[Path] = None

    def arm(
        self,
        fail_reads: int = 0,
        fail_writes: int = 0,
        truncate_writes: int = 0,
    ) -> None:
        with self._lock:
            self._fail_reads = fail_reads
            self._fail_writes = fail_writes
            self._truncate_writes = truncate_writes
            # a truncation belongs to the scenario that armed it — a stale
            # path from an earlier episode may have been legitimately
            # re-stored (good bytes) by a retry since
            self.last_truncated = None

    def disarm(self) -> None:
        self.arm()

    def on_read(self, path: Path) -> None:
        with self._lock:
            if self._fail_reads > 0:
                self._fail_reads -= 1
                self.read_faults += 1
                raise OSError(5, "injected read error", str(path))

    def on_write(self, path: Path) -> None:
        with self._lock:
            if self._fail_writes > 0:
                self._fail_writes -= 1
                self.write_faults += 1
                raise OSError(28, "injected write error", str(path))

    def after_write(self, path: Path) -> None:
        with self._lock:
            if self._truncate_writes <= 0:
                return
            self._truncate_writes -= 1
            self.truncations += 1
            self.last_truncated = path
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        except OSError:
            pass
