"""Deterministic fault injection for the compile service (chaos harness).

``repro chaos`` drives seeded campaigns of fault scenarios — worker kills
and stalls, injected disk read/write errors, truncated cache entries,
connections reset mid-frame, clients abandoning requests, a remote cache
peer resetting mid-frame or serving torn entries — against a real
in-process :class:`~repro.service.ServiceThread` backed by a real
:class:`~repro.service.CachePeerThread`, and checks the fault-tolerance
invariants after every scenario:

* no accepted request is ever lost: every request ends in a reply or a
  structured error frame with a stable code, never a hang or a raw
  connection drop;
* the server stays serving: a liveness probe must answer after every
  scenario;
* the cache is never observed poisoned: every successful reply's
  behavioural fingerprint matches the first one seen for its
  content-addressed job key (the server also replay-validates every
  response), and corrupt entries are quarantined, not served;
* chaos does not change results: after the campaign, the fast benchmark
  matrix is compiled through the battered server and compared against
  ``BENCH_routing.json``.

Determinism follows the fuzzing subsystem's splitmix64 seed scheme
(:mod:`repro.fuzz.rng`): scenario ``i`` of seed ``S`` is the same faults
against the same requests on every run and platform.
"""

from .injectors import (
    ScriptedDiskFaults,
    ScriptedPeerFaults,
    ScriptedWorkerFaults,
)
from .plan import CHAOS_MODES, ChaosScenario, plan_scenario
from .harness import ChaosReport, run_chaos

__all__ = [
    "CHAOS_MODES",
    "ChaosReport",
    "ChaosScenario",
    "ScriptedDiskFaults",
    "ScriptedPeerFaults",
    "ScriptedWorkerFaults",
    "plan_scenario",
    "run_chaos",
]
