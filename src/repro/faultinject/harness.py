"""The chaos campaign runner behind ``repro chaos``.

:func:`run_chaos` boots one real :class:`~repro.service.ServiceThread`
(supervised worker pool, crash-safe disk cache, remote cache peer,
replay validation ON) with all three scriptable injectors installed,
then drives ``scenarios`` seeded fault episodes through it sequentially.  After every scenario the
invariant oracles run; any violation is recorded with the scenario's
seed/index so ``repro chaos --seed S --scenarios i+1`` reproduces it.

The harness deliberately talks to the server only through the public
client (plus raw sockets for the connection-abuse modes) — it validates
the system boundary a real client sees, not internal state.
"""

from __future__ import annotations

import json
import random
import socket
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..compiler.result import FINGERPRINT_FIELDS
from ..service import (
    CachePeerThread,
    Client,
    RemoteCache,
    RetryPolicy,
    ServiceError,
    ServiceThread,
    protocol,
)
from ..gateway import (
    GATEWAY_ERROR_CODES,
    GatewayClient,
    GatewayError,
    GatewayThread,
)
from ..sweep import CompileCache, job_key
from ..workloads import load_benchmark
from .injectors import (
    ScriptedDiskFaults,
    ScriptedPeerFaults,
    ScriptedWorkerFaults,
)
from .plan import ChaosScenario, plan_scenario

#: per-job compile deadline the campaign server enforces — generous for
#: the tiny chaos workloads (sub-second compiles) yet short enough that
#: the worker-hang scenarios resolve quickly.
JOB_DEADLINE_S = 0.75


@dataclass
class ChaosReport:
    """Verdict of one chaos campaign."""

    seed: int
    scenarios: int
    outcomes: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    faults_fired: Dict[str, int] = field(default_factory=dict)
    server_stats: Optional[dict] = None
    bench_checked: int = 0
    bench_mismatches: List[str] = field(default_factory=list)
    wall: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.bench_mismatches

    def count(self, outcome: str) -> None:
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1

    def summary(self) -> str:
        outcome_bits = ", ".join(
            f"{count} {name}" for name, count in sorted(self.outcomes.items())
        )
        fault_bits = ", ".join(
            f"{count} {name}" for name, count in sorted(self.faults_fired.items())
        )
        lines = [
            f"chaos campaign: seed={self.seed} scenarios={self.scenarios} "
            f"wall={self.wall:.1f}s",
            f"  outcomes: {outcome_bits or 'none'}",
            f"  faults injected: {fault_bits or 'none'}",
            f"  post-chaos fingerprint check: {self.bench_checked} case(s), "
            f"{len(self.bench_mismatches)} mismatch(es)",
        ]
        if self.server_stats is not None:
            pool = self.server_stats.get("pool") or {}
            cache = self.server_stats.get("cache") or {}
            lines.append(
                "  server: "
                f"{pool.get('restarts', 0)} worker restart(s), "
                f"{pool.get('retries', 0)} job retry(s), "
                f"{cache.get('quarantined', 0)} quarantined cache entr(ies), "
                f"{cache.get('read_errors', 0)}/{cache.get('store_errors', 0)} "
                "cache read/store error(s)"
            )
        if self.violations:
            lines.append(f"  VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"    {v}" for v in self.violations[:20])
        for mismatch in self.bench_mismatches[:10]:
            lines.append(f"  BENCH MISMATCH: {mismatch}")
        lines.append(
            "  verdict: "
            + ("OK — all invariants held" if self.ok else "FAILED")
        )
        return "\n".join(lines)


def run_chaos(
    seed: int = 0,
    scenarios: int = 200,
    jobs: int = 2,
    cache_dir: Optional[str] = None,
    bench_baseline: Optional[str] = "BENCH_routing.json",
    progress=None,
) -> ChaosReport:
    """Run one seeded chaos campaign; see the module docstring.

    Args:
        seed / scenarios: the campaign identity — same seed and count,
            same episodes.
        jobs: worker processes in the battered server.
        cache_dir: on-disk cache root (default: a fresh temp dir, so
            campaigns are independent).
        bench_baseline: path to a ``BENCH_routing.json`` to fingerprint-
            check the fast matrix against after the chaos ('-' or None,
            or a missing file, skips that phase).
        progress: optional callable for per-scenario progress lines.
    """
    report = ChaosReport(seed=seed, scenarios=scenarios)
    started = time.monotonic()
    worker_faults = ScriptedWorkerFaults()
    disk_faults = ScriptedDiskFaults()
    peer_faults = ScriptedPeerFaults()
    if cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="repro-chaos-cache-")
    cache = CompileCache(cache_dir, faults=disk_faults)
    peer_dir = tempfile.mkdtemp(prefix="repro-chaos-peer-")
    second_dir = tempfile.mkdtemp(prefix="repro-chaos-shard2-")
    expected: Dict[str, dict] = {}  # job key -> first fingerprint seen

    with CachePeerThread(
        cache=CompileCache(peer_dir),
        faults=peer_faults,
        allow_shutdown=False,
    ) as peer, ServiceThread(
        jobs=jobs,
        cache=cache,
        remote=RemoteCache(*peer.address),
        validate=True,  # every response replay-validated: the strongest
        # possible "never serve a poisoned result" oracle
        max_pending=8,
        queue_wait=0.5,
        request_timeout=60.0,
        job_deadline=JOB_DEADLINE_S,
        job_attempts=3,
        worker_faults=worker_faults,
    ) as thread, ServiceThread(
        # a second, clean shard: the gateway episodes need somewhere to
        # remap to when the battered shard is declared dead
        jobs=1,
        cache=CompileCache(second_dir),
        remote=RemoteCache(*peer.address),
        validate=True,
        allow_shutdown=False,
        job_deadline=JOB_DEADLINE_S,
        job_attempts=3,
    ) as second, GatewayThread(
        backends=[thread.address, second.address],
        retry=RetryPolicy(attempts=3, base_delay=0.02, max_delay=0.2),
        rng=random.Random(seed * 2654435761 + 7),
        health_interval=0.05,
    ) as gateway:
        host, port = thread.address
        engine = thread.service.engine
        for index in range(scenarios):
            scenario = plan_scenario(seed, index)
            if progress is not None and index % 25 == 0:
                progress(
                    f"[chaos] scenario {index}/{scenarios} "
                    f"({len(report.violations)} violation(s) so far)"
                )
            _run_scenario(
                scenario, host, port, cache_dir, engine, gateway,
                worker_faults, disk_faults, peer_faults, expected, report,
            )
            if not _probe_alive(host, port):
                report.violations.append(
                    f"scenario {scenario.describe()}: server stopped "
                    "answering pings — aborting campaign"
                )
                break
            if not _gateway_alive(gateway):
                report.violations.append(
                    f"scenario {scenario.describe()}: gateway stopped "
                    "answering pings — aborting campaign"
                )
                break
        report.faults_fired = {
            "worker": worker_faults.fired,
            "disk-read": disk_faults.read_faults,
            "disk-write": disk_faults.write_faults,
            "truncation": disk_faults.truncations,
            "peer-reset": peer_faults.resets,
            "peer-torn": peer_faults.corruptions,
        }
        _bench_phase(report, host, port, bench_baseline)
        try:
            with Client(host, port, timeout=30.0) as client:
                report.server_stats = client.stats()
        except (ServiceError, OSError) as exc:
            report.violations.append(f"final stats probe failed: {exc}")
    report.wall = time.monotonic() - started
    return report


def _run_scenario(
    scenario: ChaosScenario,
    host: str,
    port: int,
    cache_dir: str,
    engine,
    gateway: GatewayThread,
    worker_faults: ScriptedWorkerFaults,
    disk_faults: ScriptedDiskFaults,
    peer_faults: ScriptedPeerFaults,
    expected: Dict[str, dict],
    report: ChaosReport,
) -> None:
    worker_faults.arm(scenario.worker_script)
    disk_faults.arm(
        fail_reads=scenario.fail_reads,
        fail_writes=scenario.fail_writes,
        truncate_writes=scenario.truncate_writes,
    )
    try:
        if scenario.mode == "gateway-disconnect":
            _gateway_disconnect_mid_poll(gateway, scenario)
            report.count("gateway-disconnect")
            # the abandoned job must still resolve for the next client
            _checked_gateway_compile(scenario, gateway, expected, report)
        elif scenario.mode == "shard-down":
            _shard_down_between_submit_and_poll(
                scenario, gateway, expected, report
            )
        elif scenario.mode == "conn-reset":
            _reset_mid_frame(host, port, scenario)
            report.count("conn-reset")
            # the same job must still be resolvable afterwards
            _checked_compile(scenario, host, port, expected, report)
        elif scenario.mode == "abandon":
            _send_and_abandon(host, port, scenario)
            report.count("abandoned")
            _checked_compile(scenario, host, port, expected, report)
        elif scenario.mode == "truncate-entry":
            _checked_compile(scenario, host, port, expected, report)
            _check_truncation_quarantined(
                scenario, host, port, cache_dir, disk_faults, expected, report
            )
        elif scenario.mode in ("peer-reset", "peer-torn"):
            # warm every tier (including the peer), then purge the local
            # memo + disk entries so the retry must resolve through the
            # remote peer — with its fault budget armed
            _checked_compile(scenario, host, port, expected, report)
            engine.purge(
                expected_fingerprint(scenario.workload, scenario.config)
            )
            peer_faults.arm(
                conn_resets=scenario.peer_resets,
                corrupt_gets=scenario.peer_corrupts,
            )
            report.count(scenario.mode)
            _checked_compile(scenario, host, port, expected, report)
        else:
            _checked_compile(scenario, host, port, expected, report)
    finally:
        worker_faults.disarm()
        disk_faults.disarm()
        peer_faults.disarm()


def _chaos_client(host: str, port: int, scenario: ChaosScenario) -> Client:
    # seeded retry jitter: the campaign's wall-clock profile is stable too
    return Client(
        host,
        port,
        timeout=30.0,
        retry=RetryPolicy(attempts=4, base_delay=0.02, max_delay=0.2),
        rng=random.Random(scenario.index * 2654435761 + 1),
    )


def _checked_compile(
    scenario: ChaosScenario,
    host: str,
    port: int,
    expected: Dict[str, dict],
    report: ChaosReport,
) -> None:
    """One client request + the lost-request and fingerprint oracles."""
    try:
        with _chaos_client(host, port, scenario) as client:
            reply = client.compile(
                workload=scenario.workload, **scenario.config
            )
    except ServiceError as exc:
        # a structured error frame is an acceptable outcome — the request
        # was not lost — as long as the code is from the stable set
        if exc.code in protocol.ERROR_CODES:
            report.count(f"error:{exc.code}")
        else:
            report.violations.append(
                f"scenario {scenario.describe()}: unknown error code "
                f"{exc.code!r}"
            )
        return
    except (OSError, ConnectionError) as exc:
        report.violations.append(
            f"scenario {scenario.describe()}: request lost without a "
            f"structured error ({type(exc).__name__}: {exc})"
        )
        return
    report.count("ok")
    seen = expected.get(reply.key)
    if seen is None:
        expected[reply.key] = reply.fingerprint
    elif seen != reply.fingerprint:
        report.violations.append(
            f"scenario {scenario.describe()}: fingerprint diverged for "
            f"key {reply.key[:12]} — cache poisoned or nondeterminism"
        )


def _reset_mid_frame(host: str, port: int, scenario: ChaosScenario) -> None:
    """Send half a request frame, then hard-reset the connection."""
    frame = protocol.encode_line(
        protocol.compile_request(
            workload=scenario.workload, config=scenario.config
        )
    )
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(frame[: max(1, len(frame) // 2)])
        # SO_LINGER(on, 0): close sends RST instead of FIN — the rudest
        # way a client can vanish mid-frame
        sock.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            __import__("struct").pack("ii", 1, 0),
        )


def _send_and_abandon(host: str, port: int, scenario: ChaosScenario) -> None:
    """Send a complete request, then disconnect without reading the reply."""
    frame = protocol.encode_line(
        protocol.compile_request(
            workload=scenario.workload, config=scenario.config
        )
    )
    with socket.create_connection((host, port), timeout=10.0) as sock:
        sock.sendall(frame)


def _checked_gateway_compile(
    scenario: ChaosScenario,
    gateway: GatewayThread,
    expected: Dict[str, dict],
    report: ChaosReport,
) -> None:
    """One gateway request + the same lost-request/fingerprint oracles.

    The job key the gateway hands back is the very key direct service
    requests use, so gateway episodes feed the same ``expected`` map —
    the cross-system parity oracle.
    """
    try:
        with GatewayClient(*gateway.address) as client:
            payload = client.compile(
                timeout=30.0, workload=scenario.workload, **scenario.config
            )
    except GatewayError as exc:
        if exc.code in GATEWAY_ERROR_CODES:
            report.count(f"error:{exc.code}")
        else:
            report.violations.append(
                f"scenario {scenario.describe()}: unknown gateway error "
                f"code {exc.code!r}"
            )
        return
    except (OSError, ConnectionError, TimeoutError) as exc:
        report.violations.append(
            f"scenario {scenario.describe()}: gateway request lost without "
            f"a structured error ({type(exc).__name__}: {exc})"
        )
        return
    if payload["status"] == "failed":
        code = (payload.get("error") or {}).get("code")
        if code in GATEWAY_ERROR_CODES:
            report.count(f"error:{code}")
        else:
            report.violations.append(
                f"scenario {scenario.describe()}: gateway job failed with "
                f"unknown code {code!r}"
            )
        return
    report.count("gateway-ok")
    key = payload["id"]
    fingerprint = payload["result"]["fingerprint"]
    seen = expected.get(key)
    if seen is None:
        expected[key] = fingerprint
    elif seen != fingerprint:
        report.violations.append(
            f"scenario {scenario.describe()}: gateway fingerprint diverged "
            f"for key {key[:12]} — cache poisoned or nondeterminism"
        )


def _gateway_disconnect_mid_poll(
    gateway: GatewayThread, scenario: ChaosScenario
) -> None:
    """Submit over HTTP, start a poll, then EOF without reading the reply."""
    with GatewayClient(*gateway.address) as client:
        payload = client.submit(workload=scenario.workload, **scenario.config)
    key = payload["id"]
    request = (
        f"GET /v1/jobs/{key} HTTP/1.1\r\n"
        f"Host: chaos\r\nConnection: keep-alive\r\n\r\n"
    ).encode("ascii")
    with socket.create_connection(gateway.address, timeout=10.0) as sock:
        # half the poll request, then vanish mid-exchange
        sock.sendall(request[: len(request) // 2])


def _shard_down_between_submit_and_poll(
    scenario: ChaosScenario,
    gateway: GatewayThread,
    expected: Dict[str, dict],
    report: ChaosReport,
) -> None:
    """Kill the shard that owns the job after submit, before the poll.

    The contract: the poll must reach a terminal verdict — either the
    router remapped the job to the surviving shard (transparent retry)
    or the job failed with a structured code.  A hang or a torn result
    is a violation.
    """
    key = expected_fingerprint(scenario.workload, scenario.config)
    target = int(key[:16], 16) % 2
    try:
        with GatewayClient(*gateway.address) as client:
            submitted = client.submit(
                workload=scenario.workload, **scenario.config
            )
            gateway.kill_shard(target)
            payload = client.wait(submitted["id"], timeout=30.0)
    except (GatewayError, OSError, ConnectionError, TimeoutError) as exc:
        report.violations.append(
            f"scenario {scenario.describe()}: shard-down poll died "
            f"({type(exc).__name__}: {exc})"
        )
        gateway.revive_shard(target)
        _await_healthy_shards(gateway)
        return
    report.count("shard-down")
    if payload["status"] == "failed":
        code = (payload.get("error") or {}).get("code")
        if code not in GATEWAY_ERROR_CODES:
            report.violations.append(
                f"scenario {scenario.describe()}: shard-down failed with "
                f"unknown code {code!r}"
            )
    else:
        fingerprint = payload["result"]["fingerprint"]
        seen = expected.get(payload["id"])
        if seen is None:
            expected[payload["id"]] = fingerprint
        elif seen != fingerprint:
            report.violations.append(
                f"scenario {scenario.describe()}: shard-down fingerprint "
                f"diverged for key {payload['id'][:12]}"
            )
    gateway.revive_shard(target)
    _await_healthy_shards(gateway)
    # the fleet must be whole again and the key resolvable end-to-end
    _checked_gateway_compile(scenario, gateway, expected, report)


def _await_healthy_shards(
    gateway: GatewayThread, count: int = 2, timeout: float = 10.0
) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with GatewayClient(*gateway.address) as client:
                shards = client.stats()["shards"]
        except (GatewayError, OSError, ConnectionError):
            shards = []
        if sum(1 for shard in shards if shard["healthy"]) >= count:
            return
        time.sleep(0.05)


def _gateway_alive(gateway: GatewayThread) -> bool:
    try:
        with GatewayClient(*gateway.address) as probe:
            return bool(probe.ping().get("ok"))
    except (GatewayError, OSError, ConnectionError):
        return False


def _check_truncation_quarantined(
    scenario: ChaosScenario,
    host: str,
    port: int,
    cache_dir: str,
    disk_faults: ScriptedDiskFaults,
    expected: Dict[str, dict],
    report: ChaosReport,
) -> None:
    """The truncated entry must be quarantined on read, never served."""
    truncated = disk_faults.last_truncated
    if truncated is None or not Path(truncated).is_file():
        return  # warm hit: nothing was stored, nothing was truncated
    key = truncated.name[: -len(".json")]
    # an independent reader over the same directory must refuse the entry
    reader = CompileCache(cache_dir)
    if reader.load(key) is not None:
        report.violations.append(
            f"scenario {scenario.describe()}: truncated cache entry "
            f"{key[:12]} was served instead of quarantined"
        )
        return
    if reader.quarantined != 1:
        report.violations.append(
            f"scenario {scenario.describe()}: truncated cache entry "
            f"{key[:12]} missed but not quarantined"
        )
        return
    report.count("quarantined")
    # and the server still answers for that job (memo or recompile)
    _checked_compile(scenario, host, port, expected, report)


def _probe_alive(host: str, port: int) -> bool:
    try:
        with Client(host, port, timeout=30.0) as probe:
            return bool(probe.ping().get("ok"))
    except (ServiceError, OSError, ConnectionError):
        return False


def _bench_phase(
    report: ChaosReport, host: str, port: int, baseline_path: Optional[str]
) -> None:
    """Compile the fast matrix through the battered server and compare."""
    if baseline_path in (None, "-"):
        return
    path = Path(baseline_path)
    if not path.is_file():
        return
    try:
        baseline = json.loads(path.read_text())
        cases = baseline["cases"]
    except (ValueError, KeyError, OSError) as exc:
        report.bench_mismatches.append(f"unreadable baseline {path}: {exc}")
        return
    from ..perf import bench_cases

    for case in bench_cases(fast=True):
        want = cases.get(case.key)
        if want is None:
            continue
        try:
            with Client(host, port, timeout=60.0) as client:
                reply = client.compile(
                    workload=case.workload,
                    routing_paths=case.routing_paths,
                    num_factories=case.num_factories,
                )
        except (ServiceError, OSError, ConnectionError) as exc:
            report.bench_mismatches.append(f"{case.key}: request failed: {exc}")
            continue
        report.bench_checked += 1
        for field_name in FINGERPRINT_FIELDS:
            if reply.fingerprint.get(field_name) != want.get(field_name):
                report.bench_mismatches.append(
                    f"{case.key}: {field_name} "
                    f"{reply.fingerprint.get(field_name)!r} != baseline "
                    f"{want.get(field_name)!r}"
                )


def expected_fingerprint(workload: str, config: Dict[str, int]) -> str:
    """The content-addressed job key a chaos request resolves to.

    Exposed for tests that want to pre-compute which cache file a
    scenario will touch.
    """
    from ..compiler.config import CompilerConfig

    return job_key(load_benchmark(workload), CompilerConfig(**config))
