"""Seeded scenario plans for the chaos harness.

One :class:`ChaosScenario` is a fully materialised fault episode: which
job to request, which fault to inject, and the exact script each injector
should be armed with.  :func:`plan_scenario` derives it from the fuzzing
subsystem's splitmix64 stream (:func:`repro.fuzz.rng.scenario_rng`), so
scenario ``i`` of seed ``S`` is identical on every run, platform and
iteration count — the same prefix-stability contract ``repro fuzz``
keeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..fuzz.rng import FuzzRng, scenario_rng
from ..sweep.supervisor import FAULT_HANG, FAULT_KILL

#: tiny workloads the campaign requests (compiles must stay sub-second).
CHAOS_WORKLOADS = (
    "ising_2d_2x2",
    "heisenberg_2d_2x2",
    "fermi_hubbard_2d_2x2",
    "ising_2d_4x4",
)

#: fault modes with their campaign weights.
CHAOS_MODES: Tuple[Tuple[str, int], ...] = (
    ("clean", 20),  # no fault: baseline behaviour interleaved with chaos
    ("worker-kill", 20),  # SIGKILL the worker at a scripted dispatch
    ("worker-hang", 10),  # stall the worker past the compile deadline
    ("disk-write-error", 10),  # cache store raises OSError
    ("disk-read-error", 10),  # cache load raises OSError
    ("truncate-entry", 10),  # corrupt the on-disk entry after it lands
    ("conn-reset", 10),  # client resets the connection mid-frame
    ("abandon", 10),  # client sends a request and vanishes
    ("peer-reset", 10),  # cache peer resets the connection mid-frame
    ("peer-torn", 10),  # cache peer serves a torn remote entry
    ("gateway-disconnect", 5),  # HTTP client EOFs mid-poll on the gateway
    ("shard-down", 5),  # backend shard dies between submit and poll
)


@dataclass
class ChaosScenario:
    """One planned fault episode of a chaos campaign."""

    index: int
    mode: str
    workload: str
    config: Dict[str, int]
    #: dispatch-index -> fault verdict for :class:`ScriptedWorkerFaults`.
    worker_script: Dict[int, Tuple] = field(default_factory=dict)
    #: budgets for :class:`ScriptedDiskFaults`.
    fail_reads: int = 0
    fail_writes: int = 0
    truncate_writes: int = 0
    #: budgets for :class:`ScriptedPeerFaults` (remote cache peer).
    peer_resets: int = 0
    peer_corrupts: int = 0

    def describe(self) -> str:
        knobs = "/".join(
            f"{k.split('_')[0]}{v}" for k, v in sorted(self.config.items())
        )
        return f"#{self.index} {self.mode} {self.workload} {knobs}"


def plan_scenario(seed: int, index: int) -> ChaosScenario:
    """Materialise scenario ``index`` of the campaign seeded with ``seed``."""
    rng = scenario_rng(seed, index).fork("chaos")
    mode = rng.weighted_choice(
        [name for name, _ in CHAOS_MODES], [w for _, w in CHAOS_MODES]
    )
    scenario = ChaosScenario(
        index=index,
        mode=mode,
        workload=rng.choice(CHAOS_WORKLOADS),
        config={
            "routing_paths": rng.randint(3, 6),
            "num_factories": rng.randint(1, 2),
        },
    )
    if mode == "worker-kill":
        scenario.worker_script = _kill_script(rng)
    elif mode == "worker-hang":
        # stall well past the server's per-job deadline so the supervisor
        # must kill the worker; the retry (unscripted) runs clean
        scenario.worker_script = {0: (FAULT_HANG, 30.0)}
    elif mode == "disk-write-error":
        scenario.fail_writes = rng.randint(1, 2)
    elif mode == "disk-read-error":
        scenario.fail_reads = rng.randint(1, 2)
    elif mode == "truncate-entry":
        scenario.truncate_writes = 1
    elif mode == "peer-reset":
        scenario.peer_resets = rng.randint(1, 2)
    elif mode == "peer-torn":
        scenario.peer_corrupts = 1
    return scenario


def _kill_script(rng: FuzzRng) -> Dict[int, Tuple]:
    """Kill the first dispatch; sometimes the retry too (budget is 3)."""
    script: Dict[int, Tuple] = {0: (FAULT_KILL,)}
    if rng.random() < 0.25:
        script[1] = (FAULT_KILL,)
    return script
