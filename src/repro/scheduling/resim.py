"""Re-time a schedule after structural edits (list-scheduling replay).

After redundant-move elimination the remaining operations keep their order
but can generally start earlier.  ``resimulate`` replays the op list with
the same resource rules the scheduler used — per-qubit timelines, per-cell
locks and external release times (``min_start``, which preserves magic-state
availability) — assigning each op the earliest feasible start.
"""

from __future__ import annotations

from typing import Dict, List

from ..arch.grid import Position
from ..perf.profiler import profiled
from .events import Schedule, ScheduledOp


@profiled("optimize.resim")
def resimulate(schedule: Schedule) -> Schedule:
    """Earliest-start replay of ``schedule`` preserving op order semantics."""
    qubit_free: Dict[int, float] = {}
    cell_free: Dict[Position, float] = {}
    new_ops: List[ScheduledOp] = []
    append = new_ops.append
    qget = qubit_free.get
    cget = cell_free.get
    _move_kinds = ("move", "evict", "restore")
    for op in schedule.ops:
        qubits = op.qubits
        cells = op.cells
        # inline op.resource_cells(): moves lock only their destination
        if len(cells) == 2 and op.kind in _move_kinds:
            resources = cells[1:]
        else:
            resources = cells
        start = op.min_start
        for q in qubits:
            t = qget(q, 0.0)
            if t > start:
                start = t
        for c in resources:
            t = cget(c, 0.0)
            if t > start:
                start = t
        timed = op if start == op.start else op.shifted(start)
        append(timed)
        end = start + op.duration
        for q in qubits:
            qubit_free[q] = end
        for c in resources:
            cell_free[c] = end
    return Schedule(ops=new_ops)


def optimize_schedule(schedule: Schedule):
    """Full scheduling-stage optimisation: prune inverse moves, then re-time.

    With the ``REPRO_VALIDATE`` environment variable set, the re-timed
    schedule is replay-checked on the spot (qubit timelines, cell locks,
    ``min_start`` floors) — a debug assertion that localises a broken
    optimisation pass to this stage rather than to some downstream metric.

    Returns:
        (optimised schedule, elimination report)
    """
    from ..verify.validator import env_forced
    from .redundant_moves import eliminate_redundant_moves

    pruned, report = eliminate_redundant_moves(schedule)
    optimised = resimulate(pruned)
    if env_forced():
        optimised.validate()
    return optimised, report
