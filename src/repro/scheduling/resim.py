"""Re-time a schedule after structural edits (list-scheduling replay).

After redundant-move elimination the remaining operations keep their order
but can generally start earlier.  ``resimulate`` replays the op list with
the same resource rules the scheduler used — per-qubit timelines, per-cell
locks and external release times (``min_start``, which preserves magic-state
availability) — assigning each op the earliest feasible start.
"""

from __future__ import annotations

from typing import Dict, List

from ..arch.grid import Position
from .events import Schedule, ScheduledOp


def resimulate(schedule: Schedule) -> Schedule:
    """Earliest-start replay of ``schedule`` preserving op order semantics."""
    qubit_free: Dict[int, float] = {}
    cell_free: Dict[Position, float] = {}
    new_ops: List[ScheduledOp] = []
    for op in schedule.ops:
        start = op.min_start
        resources = op.resource_cells()
        for q in op.qubits:
            start = max(start, qubit_free.get(q, 0.0))
        for c in resources:
            start = max(start, cell_free.get(c, 0.0))
        timed = op.shifted(start)
        new_ops.append(timed)
        for q in op.qubits:
            qubit_free[q] = timed.end
        for c in resources:
            cell_free[c] = timed.end
    return Schedule(ops=new_ops)


def optimize_schedule(schedule: Schedule):
    """Full scheduling-stage optimisation: prune inverse moves, then re-time.

    With the ``REPRO_VALIDATE`` environment variable set, the re-timed
    schedule is replay-checked on the spot (qubit timelines, cell locks,
    ``min_start`` floors) — a debug assertion that localises a broken
    optimisation pass to this stage rather than to some downstream metric.

    Returns:
        (optimised schedule, elimination report)
    """
    from ..verify.validator import env_forced
    from .redundant_moves import eliminate_redundant_moves

    pruned, report = eliminate_redundant_moves(schedule)
    optimised = resimulate(pruned)
    if env_forced():
        optimised.validate()
    return optimised, report
