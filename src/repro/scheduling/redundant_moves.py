"""Redundant move elimination (paper Sec. V-D).

Greedy per-gate planning frequently produces *inverse move pairs*: a qubit
is pushed from r_i to r_j (e.g. evicted out of a route) and later moved
straight back with no intervening use — ``U†(ri->rj) U(rj->ri) = I``.  This
scheduling-stage pass finds such pairs in the committed schedule, removes
them, and re-times the remaining operations (see
:mod:`repro.scheduling.resim`), shortening execution without changing the
computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .. import kernels
from ..arch.grid import Position
from ..ir import gates as g
from ..perf.profiler import profiled
from .events import Schedule, ScheduledOp


@dataclass(frozen=True)
class EliminationReport:
    """Outcome of one elimination pass."""

    removed_pairs: int
    ops_before: int
    ops_after: int

    @property
    def moves_removed(self) -> int:
        return 2 * self.removed_pairs


def _is_move(op: ScheduledOp) -> bool:
    return (
        op.kind in ("move", "evict", "restore")
        and op.name == g.MOVE
        and len(op.cells) == 2
    )


def find_redundant_pairs(schedule: Schedule) -> List[Tuple[int, int]]:
    """Indices (into ``schedule.ops``) of cancellable inverse move pairs.

    A pair (i, j), i < j, cancels when:

    * both are unit moves of the same qubit, with op_j exactly inverting
      op_i (``A -> B`` then ``B -> A``);
    * no other op between them involves that qubit (the qubit never used
      position B for work);
    * no op between them locks cell A or cell B (nothing routed through
      either endpoint, so leaving the qubit parked at A is safe).
    """
    ops = schedule.ops
    if kernels.choose(len(ops), kernels.REDUNDANT_MIN_OPS) == "numpy":
        from ..kernels import numpy_impl

        return numpy_impl.redundant_move_pairs(ops, _is_move)
    pairs: List[Tuple[int, int]] = []
    claimed: Set[int] = set()
    # Pending unmatched move per qubit: (index, origin, dest).
    pending: Dict[int, Tuple[int, Position, Position]] = {}
    # A pending pair is invalidated by later activity; rather than growing a
    # dirty-set per pending qubit (quadratic in schedule length), track the
    # last op index that used each qubit / locked each cell and compare
    # against the pending move's index.
    last_use: Dict[int, int] = {}
    last_touch: Dict[Position, int] = {}

    for idx, op in enumerate(ops):
        if _is_move(op):
            (qubit,) = op.qubits
            origin, dest = op.cells
            prior = pending.get(qubit)
            if (
                prior is not None
                and last_use.get(qubit, -1) <= prior[0]
                and prior[1] == dest
                and prior[2] == origin
                and last_touch.get(origin, -1) <= prior[0]
                and last_touch.get(dest, -1) <= prior[0]
                and prior[0] not in claimed
            ):
                pairs.append((prior[0], idx))
                claimed.add(prior[0])
                claimed.add(idx)
                pending.pop(qubit, None)
                # Cancelled pairs vanish from the schedule, so they do not
                # invalidate other qubits' pending moves.
                continue
            pending[qubit] = (idx, origin, dest)
            last_touch[origin] = idx
            last_touch[dest] = idx
            continue
        for qubit in op.qubits:
            last_use[qubit] = idx
        for cell in op.cells:
            last_touch[cell] = idx
    return pairs


@profiled("optimize.eliminate")
def eliminate_redundant_moves(schedule: Schedule) -> Tuple[Schedule, EliminationReport]:
    """Remove inverse move pairs; the result needs re-timing via resim.

    Returns the pruned (still original-timed) schedule and a report.
    """
    pairs = find_redundant_pairs(schedule)
    drop: Set[int] = set()
    for i, j in pairs:
        drop.add(i)
        drop.add(j)
    kept = [op for idx, op in enumerate(schedule.ops) if idx not in drop]
    pruned = Schedule(ops=kept)
    report = EliminationReport(
        removed_pairs=len(pairs),
        ops_before=len(schedule.ops),
        ops_after=len(kept),
    )
    return pruned, report
