"""Schedule data structures produced by the lattice-surgery scheduler."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..arch.grid import Position

#: note prefix tagging ops that carry / consume a distilled magic state;
#: the factory index follows (e.g. ``"magic-state from f2"``).  Route hops
#: and the final consume op both carry it, so the validity engine can
#: attribute every consumption to its producing factory.
MAGIC_NOTE_PREFIX = "magic-state from f"


@dataclass(slots=True)
class ScheduledOp:
    """One scheduled lattice-surgery operation.

    Treated as immutable everywhere (re-timing copies via :meth:`shifted`);
    not ``frozen=True`` because the scheduler constructs tens of thousands
    of these per compile and the frozen ``object.__setattr__`` init is ~6x
    slower than plain slot assignment.

    Attributes:
        uid: unique, monotonically increasing id in schedule order.
        kind: operation class — "gate", "move", "route", "evict".
        name: gate mnemonic (for kind="gate") or "move"/"route".
        qubits: program qubits whose timelines this op occupies.
        cells: grid cells locked for the op's duration (ancillas, route).
        start: start time in units of d.
        duration: latency in units of d.
        min_start: external release time (e.g. magic state availability);
            resimulation must not start the op earlier.
        gate_index: DAG node index of the originating gate, if any.
        note: free-form annotation for debugging / reports.
    """

    uid: int
    kind: str
    name: str
    qubits: Tuple[int, ...]
    cells: Tuple[Position, ...]
    start: float
    duration: float
    min_start: float = 0.0
    gate_index: Optional[int] = None
    note: str = ""

    @property
    def end(self) -> float:
        return self.start + self.duration

    def resource_cells(self) -> Tuple[Position, ...]:
        """Cells this op actually locks for its duration.

        Data-qubit moves lock only their destination: a contiguous chain of
        patches can shift together in one move cycle (the vacated origin is
        immediately reusable by the patch behind), so serialising on the
        origin would forbid the standard simultaneous row shift.  Gates,
        routes and everything else lock every listed cell.
        """
        if self.kind in ("move", "evict", "restore") and len(self.cells) == 2:
            return self.cells[1:]
        return self.cells

    def magic_factory(self) -> Optional[int]:
        """Index of the factory whose state this op carries/consumes.

        Parsed from the ``note`` tag the scheduler writes on magic-state
        route hops and consume ops; None for everything else.
        """
        if not self.note.startswith(MAGIC_NOTE_PREFIX):
            return None
        suffix = self.note[len(MAGIC_NOTE_PREFIX):]
        try:
            return int(suffix)
        except ValueError:
            return None

    def shifted(self, new_start: float) -> "ScheduledOp":
        """Copy with a different start time (used by resimulation)."""
        if new_start == self.start:
            return self
        return ScheduledOp(
            uid=self.uid, kind=self.kind, name=self.name, qubits=self.qubits,
            cells=self.cells, start=new_start, duration=self.duration,
            min_start=self.min_start, gate_index=self.gate_index,
            note=self.note,
        )

    def to_dict(self) -> dict:
        """JSON-safe representation; :meth:`from_dict` restores it exactly."""
        return {
            "uid": self.uid,
            "kind": self.kind,
            "name": self.name,
            "qubits": list(self.qubits),
            "cells": [list(c) for c in self.cells],
            "start": self.start,
            "duration": self.duration,
            "min_start": self.min_start,
            "gate_index": self.gate_index,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScheduledOp":
        return cls(
            uid=data["uid"],
            kind=data["kind"],
            name=data["name"],
            qubits=tuple(data["qubits"]),
            cells=tuple(tuple(c) for c in data["cells"]),
            start=data["start"],
            duration=data["duration"],
            min_start=data.get("min_start", 0.0),
            gate_index=data.get("gate_index"),
            note=data.get("note", ""),
        )

    def __str__(self) -> str:
        qubits = ",".join(map(str, self.qubits))
        return f"[{self.start:7.1f} +{self.duration:4.1f}] {self.name:6s} q({qubits})"


@dataclass
class Schedule:
    """An ordered list of :class:`ScheduledOp` plus summary statistics."""

    ops: List[ScheduledOp] = field(default_factory=list)

    def append(self, op: ScheduledOp) -> None:
        self.ops.append(op)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[ScheduledOp]:
        return iter(self.ops)

    @property
    def makespan(self) -> float:
        """Total execution time in units of d."""
        best = 0.0
        for op in self.ops:
            end = op.start + op.duration
            if end > best:
                best = end
        return best

    def count_kind(self, kind: str) -> int:
        return sum(1 for op in self.ops if op.kind == kind)

    @property
    def num_moves(self) -> int:
        """Move operations inserted by the compiler (incl. evictions)."""
        return sum(1 for op in self.ops if op.kind in ("move", "evict", "restore"))

    @property
    def num_gates(self) -> int:
        return self.count_kind("gate")

    def kind_histogram(self) -> Dict[str, int]:
        return dict(Counter(op.kind for op in self.ops))

    def name_histogram(self) -> Dict[str, int]:
        return dict(Counter(op.name for op in self.ops))

    def busy_time(self) -> float:
        """Sum of all op durations (an activity measure, not the makespan)."""
        return sum(op.duration for op in self.ops)

    def ops_for_qubit(self, qubit: int) -> List[ScheduledOp]:
        return [op for op in self.ops if qubit in op.qubits]

    def validate(self) -> None:
        """Check per-qubit timelines and cell footprints; raise on conflict.

        Thin wrapper over the :mod:`repro.verify` replay validator's
        resource checks (the full engine adds DAG and magic-state audits —
        use :func:`repro.verify.validate_schedule` for those).
        """
        from ..verify.validator import ScheduleValidator

        validator = ScheduleValidator(self)
        validator.check_timelines()
        validator.check_cell_conflicts()
        validator.check_min_start()
        if not validator.report.ok:
            raise ValueError(validator.report.summary())

    def to_dict(self) -> dict:
        """JSON-safe representation (the sweep cache's on-disk form)."""
        return {"ops": [op.to_dict() for op in self.ops]}

    @classmethod
    def from_dict(cls, data: dict) -> "Schedule":
        return cls(ops=[ScheduledOp.from_dict(op) for op in data["ops"]])

    def timeline_text(self, limit: int = 40) -> str:
        """Human-readable dump of the first ``limit`` ops."""
        lines = [str(op) for op in self.ops[:limit]]
        if len(self.ops) > limit:
            lines.append(f"... ({len(self.ops) - limit} more ops)")
        return "\n".join(lines)
