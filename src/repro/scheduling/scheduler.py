"""Event-driven lattice-surgery scheduler (the core of Sec. V).

The scheduler consumes a Clifford+T circuit as a DAG and produces a
:class:`~repro.scheduling.events.Schedule` of lattice-surgery operations on
a routing-path-parameterised layout, tracking three resource classes:

* **qubit timelines** — each program qubit is busy during its gates/moves;
* **cell locks** — bus/ancilla cells are busy while a merge, move or magic
  state transit uses them (this produces the routing congestion behind the
  U-shaped curves of Fig. 9);
* **factory pipelines** — each 15-to-1 factory emits one state per 11d,
  pipelined, so routing of one state hides behind distillation of the next
  (the latency-hiding window of Sec. I).

Greedy list scheduling: among DAG-ready gates, always schedule the one with
the earliest feasible start (ties broken by circuit order), planning any
moves needed to satisfy the Fig. 7 placement constraints via the heuristics
of :mod:`repro.routing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..arch.factory import FactoryBank, FactoryConfig
from ..arch.grid import Grid, Position
from ..arch.instruction_set import NEEDS_ANCILLA, InstructionSet
from ..ir import gates as g
from ..ir.circuit import Circuit
from ..ir.dag import DagCircuit, DagNode, ReadyFrontier
from ..perf import profiler as _profiler
from ..perf.profiler import profiled
from ..routing.dijkstra import (
    NoPathError,
    RoutingRequest,
    find_path,
    find_path_to_any,
    find_paths_to_all,
    reachable_free_cells,
)
from ..routing import space_search
from ..routing.neighbor_moves import AlignmentError, plan_cnot_alignment
from ..routing.space_search import (
    SpaceSearchError,
    _displace_blocker,
    _walk_path,
    _walk_path_inner,
    find_space,
)
from ..strategies import Strategy, get_strategy
from ..synthesis.clifford_t import SynthesisModel
from .events import Schedule, ScheduledOp


class SchedulingError(RuntimeError):
    """Raised when a gate cannot be placed on the layout."""


@dataclass
class SchedulerStats:
    """Aggregate counters filled in during scheduling.

    The :meth:`as_dict` keys are part of every behavioural fingerprint
    (``BENCH_routing.json``, the service responses, the cache/chaos drift
    gates) — never add or rename them casually.  Diagnostic counters that
    must not perturb fingerprints live in :meth:`aux_dict` instead and
    surface as ``CompilationResult.aux_stats``.
    """

    moves_planned: int = 0
    evictions: int = 0
    magic_states: int = 0
    route_hops: int = 0
    route_stall_time: float = 0.0
    space_searches: int = 0
    # -- diagnostic counters (aux_dict only; excluded from fingerprints) ----
    eviction_causes: Dict[str, int] = field(default_factory=dict)
    restores: int = 0
    restore_cycle_breaks: int = 0
    displacement_aborts: int = 0

    def count_eviction(self, cause: str) -> None:
        self.eviction_causes[cause] = self.eviction_causes.get(cause, 0) + 1

    def as_dict(self) -> Dict[str, float]:
        return {
            "moves_planned": self.moves_planned,
            "evictions": self.evictions,
            "magic_states": self.magic_states,
            "route_hops": self.route_hops,
            "route_stall_time": self.route_stall_time,
            "space_searches": self.space_searches,
        }

    def aux_dict(self) -> Dict[str, float]:
        """Diagnostic counters: eviction attribution and churn control."""
        aux: Dict[str, float] = {
            f"evictions_{cause}": float(count)
            for cause, count in sorted(self.eviction_causes.items())
        }
        aux["restores"] = float(self.restores)
        aux["restore_cycle_breaks"] = float(self.restore_cycle_breaks)
        aux["displacement_aborts"] = float(self.displacement_aborts)
        return aux


class LatticeSurgeryScheduler:
    """Schedules one circuit onto one layout.

    Args:
        grid: layout grid (cloned internally; the input is not mutated).
        instruction_set: latency model (paper or unit-cost).
        factory_ports: boundary cells where each factory delivers states.
        factory_config: distillation timing/buffering parameters.
        synthesis: T-cost model for non-Clifford rotations.
        lookahead: enable gate-dependent drift goals (Sec. V-A).
        strategy: placement/delivery strategy instance or registry name
            (see :mod:`repro.strategies`); default reproduces the
            historical behaviour bit-for-bit.
    """

    #: evict/restore round-trips of one (qubit, origin) pair before the
    #: restore is abandoned and the qubit stays at its refuge.  A pair
    #: cycling this often is parked on a live delivery corridor and
    #: restoring it only feeds the next eviction (the ising_2d_10x10 storm
    #: restored one qubit onto the same route cell 107 times).  Tuned
    #: empirically: low limits strand qubits on *future* routes and the
    #: resulting delivery stalls cost more makespan than the churn saved
    #: (limit 3: +280 d on ising_2d_10x10 despite -45 % evictions); 30
    #: only clips the pathological tail and improves makespan AND
    #: evictions together.
    RESTORE_CYCLE_LIMIT = 30

    def __init__(
        self,
        grid: Grid,
        instruction_set: InstructionSet,
        factory_ports: Sequence[Position],
        factory_config: Optional[FactoryConfig] = None,
        synthesis: Optional[SynthesisModel] = None,
        lookahead: bool = True,
        strategy: Optional[Strategy] = None,
    ) -> None:
        self._template_grid = grid
        self.isa = instruction_set
        self.synthesis = synthesis or SynthesisModel.single_t()
        self.lookahead = lookahead
        if isinstance(strategy, str):
            strategy = get_strategy(strategy)
        self.strategy = strategy if strategy is not None else get_strategy("default")
        config = factory_config or FactoryConfig(distill_time=instruction_set.distill)
        self.bank = FactoryBank(list(factory_ports), config)
        # runtime state (reset per run)
        self.grid: Grid = grid
        self._qubit_free: Dict[int, float] = {}
        self._cell_free: Dict[Position, float] = {}
        self._schedule = Schedule()
        self._uid = 0
        self.stats = SchedulerStats()

    # -- public API -----------------------------------------------------------

    @profiled("schedule.run")
    def run(self, circuit: Circuit, placement: Dict[int, Position]) -> Schedule:
        """Schedule ``circuit`` with program qubits initially at ``placement``."""
        self._reset(placement)
        dag = DagCircuit(circuit)
        # Earliest-start-first among ready gates, circuit order as tiebreak.
        # The frontier's lazy heap makes the pick O(log n) per gate; it is
        # exact because a gate's earliest feasible start only moves later as
        # other gates occupy its qubits.
        frontier = ReadyFrontier(dag, priority=self._earliest_start)
        self._dag = dag
        while not frontier.exhausted:
            node = frontier.pop_best()
            self._schedule_node(node)
            frontier.complete(node.index)
        self.stats.displacement_aborts = (
            space_search.COUNTERS.abandoned_mover - self._displacement_base
        )
        return self._schedule

    # -- internals --------------------------------------------------------------

    def _reset(self, placement: Dict[int, Position]) -> None:
        self.grid = self._template_grid.clone()
        # Factory delivery cells must stay clear: evictions and chain
        # pushes may transit them but never park a data qubit there.
        from ..arch.grid import CellRole

        for factory in self.bank.factories:
            if self.grid.role(factory.port) == CellRole.BUS:
                self.grid.set_role(factory.port, CellRole.PORT)
        for qubit, pos in placement.items():
            if self.grid.occupant(pos) is not None:
                raise SchedulingError(f"placement collision at {pos}")
            self.grid.place(qubit, pos)
        self._qubit_free = {q: 0.0 for q in placement}
        self._cell_free = {}
        self._home = dict(placement)
        self._schedule = Schedule()
        self._uid = 0
        self._node_end = {}
        self._barrier_floor = 0.0
        self.stats = SchedulerStats()
        # per-(qubit, origin) restore ledger for the churn cycle breaker
        self._restore_counts: Dict[Tuple[int, Position], int] = {}
        self._displacement_base = space_search.COUNTERS.abandoned_mover
        self.strategy.begin_run(self)

    def _earliest_start(self, node: DagNode) -> float:
        """Earliest feasible start: when every operand qubit falls free."""
        qubit_free = self._qubit_free
        best = 0.0
        for q in node.qubits:
            t = qubit_free.get(q, 0.0)
            if t > best:
                best = t
        return best

    def _record(
        self,
        kind: str,
        name: str,
        qubits: Tuple[int, ...],
        cells: Tuple[Position, ...],
        start: float,
        duration: float,
        min_start: float = 0.0,
        gate_index: Optional[int] = None,
        note: str = "",
    ) -> ScheduledOp:
        # Hand-inlined "schedule.record" seam: this is the single hottest
        # function in the compiler and the @profiled wrapper's extra call
        # layer is measurable at ~55k records per bench suite.
        prof = _profiler._ACTIVE
        if prof is not None:
            prof.enter("schedule.record")
        try:
            # A pending barrier floor rides along as min_start so the
            # Sec. V-D re-timing pass cannot pull the op back across it.
            if self._barrier_floor > min_start:
                min_start = self._barrier_floor
            if start < min_start:
                start = min_start
            op = ScheduledOp(
                self._uid, kind, name, qubits, cells, start, duration,
                min_start, gate_index, note,
            )
            self._uid += 1
            self._schedule.ops.append(op)
            end = start + duration
            if gate_index is not None and end > self._node_end.get(gate_index, 0.0):
                self._node_end[gate_index] = end
            qubit_free = self._qubit_free
            for q in qubits:
                if end > qubit_free.get(q, 0.0):
                    qubit_free[q] = end
            cell_free = self._cell_free
            # inline op.resource_cells(): moves lock only their destination
            if len(cells) == 2 and kind in ("move", "evict", "restore"):
                cells = cells[1:]
            for c in cells:
                if end > cell_free.get(c, 0.0):
                    cell_free[c] = end
            return op
        finally:
            if prof is not None:
                prof.exit()

    def _cells_ready(self, cells: Sequence[Position]) -> float:
        cell_free = self._cell_free
        ready = 0.0
        for c in cells:
            t = cell_free.get(c, 0.0)
            if t > ready:
                ready = t
        return ready

    def _execute_moves(
        self,
        moves: Sequence[Tuple[int, Position, Position]],
        cursor: float,
        kind: str = "move",
        gate_index: Optional[int] = None,
        cause: Optional[str] = None,
    ) -> float:
        """Apply planned unit moves to the grid and the schedule, serially.

        ``cause`` attributes evictions (kind == "evict") in the aux
        counters: "route_clear", "port_squatter" or "space_search".
        Returns the completion time of the last move.
        """
        grid = self.grid
        qubit_free = self._qubit_free
        cell_free = self._cell_free
        move_time = self.isa.move
        stats = self.stats
        track = self.strategy.tracks_moves
        for qubit, origin, dest in moves:
            actual = grid.position_of(qubit)
            if actual != origin:
                raise SchedulingError(
                    f"stale move plan for qubit {qubit}: at {actual}, expected {origin}"
                )
            start = cursor
            t = qubit_free.get(qubit, 0.0)
            if t > start:
                start = t
            t = cell_free.get(dest, 0.0)
            if t > start:
                start = t
            grid.move(qubit, dest)
            op = self._record(
                kind,
                g.MOVE,
                (qubit,),
                (origin, dest),
                start,
                move_time,
                gate_index=gate_index,
            )
            cursor = op.start + move_time
            stats.moves_planned += 1
            if kind == "evict":
                stats.evictions += 1
                stats.count_eviction(cause or "other")
            if track and qubit != self._MAGIC_ID:
                self.strategy.note_move(qubit, kind)
        return cursor

    def _restore_evictions(
        self,
        moves: Sequence[Tuple[int, Position, Position]],
        exclude: Tuple[int, ...] = (),
        gate_index: Optional[int] = None,
    ) -> None:
        """Send temporarily displaced qubits back to their home cells.

        Evictions (route clearing, space search) are transient: replaying
        them in reverse keeps the layout stable so locality never degrades
        over the course of a long program.  Restores that have become
        impossible (home cell re-occupied, e.g. by a deliberately moved
        CNOT operand) are skipped; inverse pairs that turn out to be
        unnecessary are cancelled later by the Sec. V-D pass.

        Churn cycle breaker: a qubit whose origin sits on a live delivery
        corridor gets evicted by every magic state passing through, and
        restoring it re-arms the next eviction — the feedback loop behind
        eviction storms on port-adjacent cells.  After
        :data:`RESTORE_CYCLE_LIMIT` restores of the same (qubit, origin)
        pair the restore is abandoned: the qubit keeps its refuge, the
        corridor stays clear, and later gates (or the post-CNOT rehome)
        relocate it on demand.
        """
        track = self.strategy.tracks_moves
        for qubit, origin, dest in reversed(list(moves)):
            if qubit in exclude:
                continue
            try:
                current = self.grid.position_of(qubit)
            except Exception:
                continue
            if current != dest or self.grid.is_occupied(origin):
                continue
            pair = (qubit, origin)
            cycles = self._restore_counts.get(pair, 0)
            if cycles >= self.RESTORE_CYCLE_LIMIT:
                self.stats.restore_cycle_breaks += 1
                continue
            self._restore_counts[pair] = cycles + 1
            start = self._qubit_free.get(qubit, 0.0)
            t = self._cell_free.get(origin, 0.0)
            if t > start:
                start = t
            self.grid.move(qubit, origin)
            self._record(
                "restore", g.MOVE, (qubit,), (dest, origin), start,
                self.isa.move, gate_index=gate_index,
            )
            self.stats.moves_planned += 1
            self.stats.restores += 1
            if track:
                self.strategy.note_move(qubit, "restore")

    # -- per-gate handlers -------------------------------------------------------

    def _schedule_node(self, node: DagNode) -> None:
        gate = node.gate
        name = gate.name
        if name in (g.BARRIER,):
            return
        # Barrier edges link gates on *disjoint* qubits, so the qubit
        # timelines alone cannot serialise them: raise the operands' free
        # times to the barrier predecessors' completion and remember the
        # floor (it becomes min_start for every op this node records).
        floor = 0.0
        for pred in node.barrier_predecessors:
            end = self._node_end.get(pred, 0.0)
            if end > floor:
                floor = end
        self._barrier_floor = floor
        if floor > 0.0:
            for q in gate.qubits:
                if floor > self._qubit_free.get(q, 0.0):
                    self._qubit_free[q] = floor
        if gate.is_pauli:
            start = max(self._qubit_free.get(q, 0.0) for q in gate.qubits)
            self._record("gate", name, gate.qubits, (), start, self.isa.pauli,
                         gate_index=node.index)
            return
        if name in (g.CX, g.CZ):
            self._schedule_cnot(node)
            return
        if name == g.SWAP:
            self._schedule_swap(node)
            return
        if gate.is_t_like:
            self._schedule_t_like(node)
            return
        if name in NEEDS_ANCILLA:
            self._schedule_with_ancilla(node)
            return
        # in-place ops: S/Sdg, Clifford rz/rx, measure
        (qubit,) = gate.qubits
        start = self._qubit_free.get(qubit, 0.0)
        self._record(
            "gate", name, gate.qubits, (), start,
            self.isa.duration(gate), gate_index=node.index,
        )

    def _partner_drift_goal(self, node: DagNode, qubit: int) -> Optional[Position]:
        """Where ``qubit`` should drift: its next partner, else its home.

        This is the gate-dependent look-ahead of Fig. 4; the home-cell
        fallback keeps repeated alignments from marching the data block
        toward one corner of the grid.  The default strategy's drift
        choice; others may rank destinations differently.
        """
        home = self._home.get(qubit)
        if not self.lookahead:
            return home
        nxt = self._dag.next_gate_on_qubit(node.index, qubit)
        if nxt is None or not nxt.gate.is_two_qubit:
            return home
        partner = next((q for q in nxt.qubits if q != qubit), None)
        if partner is None:
            return home
        try:
            return self.grid.position_of(partner)
        except Exception:
            return home

    @profiled("schedule.cnot")
    def _schedule_cnot(self, node: DagNode) -> None:
        control, target = node.gate.qubits
        strategy = self.strategy
        goals = (
            strategy.drift_goal(self, node, control),
            strategy.drift_goal(self, node, target),
        )
        prefer = strategy.cnot_prefer(self, control, target)
        try:
            plan = plan_cnot_alignment(
                self.grid, control, target, goals, prefer=prefer
            )
        except AlignmentError as exc:
            raise SchedulingError(f"CNOT({control},{target}) unalignable: {exc}") from exc
        cursor = max(
            self._qubit_free.get(control, 0.0), self._qubit_free.get(target, 0.0)
        )
        cursor = self._execute_moves(plan.moves, cursor, gate_index=node.index)
        start = max(
            cursor,
            self._qubit_free.get(control, 0.0),
            self._qubit_free.get(target, 0.0),
            self._cells_ready((plan.ancilla,)),
        )
        self._record(
            "gate",
            node.gate.name,
            (control, target),
            (plan.ancilla,),
            start,
            self.isa.cnot,
            gate_index=node.index,
        )
        self._restore_evictions(
            plan.moves, exclude=(control, target), gate_index=node.index
        )
        # Keep the layout stable: operands head home unless their very
        # next gate is another two-qubit interaction nearby (in which case
        # the Fig. 4 drift is the better choice).
        for operand in (control, target):
            self._rehome(operand, node)

    @profiled("schedule.swap")
    def _schedule_swap(self, node: DagNode) -> None:
        """SWAP as a pair of grid relocations when both cells allow it.

        On the lattice a swap of two patches is three CNOTs; when the two
        qubits are the only constraint we exchange their positions with two
        move cycles (cheaper and equivalent for scheduling purposes when an
        intermediate free cell exists), falling back to 3x CNOT latency.
        """
        a, b = node.gate.qubits
        pos_a, pos_b = self.grid.position_of(a), self.grid.position_of(b)
        spare = next(
            (p for p in self.grid.free_neighbors(pos_a) if p != pos_b), None
        )
        start = max(self._qubit_free.get(a, 0.0), self._qubit_free.get(b, 0.0))
        if spare is None:
            self._record("gate", g.SWAP, (a, b), (), start,
                         3 * self.isa.cnot, gate_index=node.index)
            return
        moves = [(a, pos_a, spare), (b, pos_b, pos_a), (a, spare, pos_b)]
        self._execute_moves(moves, start, gate_index=node.index)

    @profiled("schedule.ancilla")
    def _schedule_with_ancilla(self, node: DagNode) -> None:
        """H / SX: needs one free neighbouring ancilla (space search if none)."""
        (qubit,) = node.gate.qubits
        pos = self.grid.position_of(qubit)
        cursor = self._qubit_free.get(qubit, 0.0)
        free = self.grid.free_neighbors(pos)
        if free:
            ancilla = min(free, key=lambda c: self._cell_free.get(c, 0.0))
        else:
            try:
                plan = find_space(self.grid, pos)
            except SpaceSearchError as exc:
                raise SchedulingError(f"no ancilla space for {node.gate}: {exc}") from exc
            self.stats.space_searches += 1
            cursor = self._execute_moves(plan.moves, cursor, kind="evict",
                                         gate_index=node.index,
                                         cause="space_search")
            ancilla = plan.freed_cell
        start = max(cursor, self._qubit_free.get(qubit, 0.0),
                    self._cells_ready((ancilla,)))
        self._record(
            "gate",
            node.gate.name,
            (qubit,),
            (ancilla,),
            start,
            self.isa.duration(node.gate),
            gate_index=node.index,
        )
        if not free:
            self._restore_evictions(plan.moves, gate_index=node.index)

    #: sentinel program-qubit id for in-flight magic states.
    _MAGIC_ID = 10**9

    def _plan_swap_through(self, port: Position, goals: Set[Position]):
        """Swap-through delivery plan (always succeeds given a path).

        The magic state exchanges places with each data qubit it meets —
        a lattice-surgery patch swap per crossing — so no eviction or free
        spill cell is required.  Crossed qubits end up shifted one cell
        toward the port.  Returns (drop, transit) in the same move-list
        format as :meth:`_route_magic_state`, with swap crossings encoded
        as data-qubit moves (origin -> the state's previous cell).
        """
        try:
            best = find_path_to_any(
                self.grid, port, goals, allow_occupied=True, penalty_weight=2
            )
        except NoPathError:
            return None, []
        if self.grid.is_occupied(port):
            return None, []
        transit = []
        with self.grid.scratch() as scratch:
            prev = best.cells[0]
            for cell in best.cells[1:]:
                occupant = scratch.occupant(cell)
                if occupant is not None:
                    scratch.move(occupant, prev)
                    transit.append((occupant, cell, prev))
                transit.append((self._MAGIC_ID, prev, cell))
                prev = cell
        return best.destination, transit

    @profiled("route.magic")
    def _route_magic_state(self, port: Position, qubit: int, goals: Set[Position]):
        """Plan the transit of one magic state from ``port`` to a drop-off.

        The state is walked across the grid like a qubit (it is one — a
        patch in the |m> state), using the full displacement ladder to
        shove parked data qubits out of the way.  Tries every goal in
        ascending path-cost order, preferring routes through free cells.

        Returns:
            (drop_cell, moves) where moves interleave evictions and the
            state's own hops (qubit id ``_MAGIC_ID``), or (None, []) when
            no goal is reachable.
        """
        # One single-source sweep covers every goal; the penalty ladders run
        # only for goals with no free-only route, again one sweep per weight.
        free_paths = find_paths_to_all(
            self.grid, port, goals, allow_occupied=False
        )
        blocked = {g for g in goals if g not in free_paths}
        # Penalty variants: higher weights hug free corridors and cross
        # the data block only for the final cut-in, which keeps the
        # displacement shallow.
        penalised = {
            weight: find_paths_to_all(
                self.grid, port, blocked,
                allow_occupied=True, penalty_weight=weight,
            )
            for weight in ((1, 8, 32) if blocked else ())
        }
        candidates = []
        seen = set()
        for goal in sorted(goals):
            path = free_paths.get(goal)
            if path is not None:
                candidates.append(path)
                continue  # free-only route found; penalised ones are moot
            for weight in (1, 8, 32):
                path = penalised[weight].get(goal)
                if path is None:
                    continue
                if path.cells not in seen:
                    seen.add(path.cells)
                    candidates.append(path)
        for path in self.strategy.order_delivery(self, candidates):
            with self.grid.scratch() as scratch:
                if scratch.is_occupied(port):
                    # A stray data qubit is resting on the delivery cell;
                    # shove it aside before the state can emerge.
                    cleared = _displace_blocker(
                        scratch, port, frozenset(), set(path.cells), 0
                    )
                    if cleared is None:
                        continue
                    prefix = cleared
                else:
                    prefix = []
                scratch.place(self._MAGIC_ID, port)
                moves = _walk_path_inner(
                    scratch,
                    self._MAGIC_ID,
                    path,
                    banned=frozenset(),
                    keep_off=set(),
                    depth=0,
                )
            if moves is not None:
                return path.destination, prefix + moves
        return None, []

    def _rehome(self, qubit: int, node: DagNode) -> None:
        """Walk ``qubit`` back to its home slot when that is free and safe.

        Keeps the static mapping intact across the program so congestion
        does not accumulate.  Skipped when the qubit's next interaction is
        adjacent to its current spot (the drift is then deliberate), when
        the home cell is taken, or when no clean path exists.
        """
        home = self._home.get(qubit)
        if home is None:
            return
        pos = self.grid.position_of(qubit)
        if pos == home or self.grid.is_occupied(home):
            return
        if not self.strategy.should_rehome(self, qubit, node):
            return
        nxt = self._dag.next_gate_on_qubit(node.index, qubit)
        if nxt is not None and nxt.gate.is_two_qubit:
            partner = next((q for q in nxt.qubits if q != qubit), None)
            if partner is not None:
                try:
                    partner_pos = self.grid.position_of(partner)
                    if Grid.manhattan(pos, partner_pos) <= Grid.manhattan(
                        home, partner_pos
                    ):
                        return  # already well placed for the next gate
                except Exception:
                    pass
        try:
            path = find_path(
                self.grid,
                RoutingRequest(source=pos, destination=home, allow_occupied=False),
            )
        except NoPathError:
            return
        moves = _walk_path(self.grid, qubit, path)
        if moves is None:
            return
        self._execute_moves(moves, self._qubit_free.get(qubit, 0.0),
                            gate_index=node.index)

    def _surface_qubit(
        self, qubit: int, cursor: float, node: DagNode
    ) -> Optional[float]:
        """Walk ``qubit`` to the nearest free region (small-r fallback).

        Used when a magic state cannot be delivered into a deeply buried
        position: the consumer comes to the state instead of the state
        fighting through the whole data block.  Returns the new cursor, or
        None when every refuge walk is blocked by bystanders — the caller
        then falls back to swap-through delivery rather than giving up
        (fuzzer-found: raising here wedged dense r=2 blocks whose ports
        pinned the escape lanes).
        """
        pos = self.grid.position_of(qubit)
        # The parkable filter must be the BFS predicate, not a post-filter:
        # with ``limit`` counting every free routable cell, a cluster of
        # factory ports (routable, never parkable) near the qubit could
        # fill the whole window and starve the search while perfectly good
        # refuges sat one ring further out (fuzzer-found at r=2 with four
        # factories).
        candidates = reachable_free_cells(
            self.grid, pos, predicate=self.grid.parkable, limit=6
        )
        for __, refuge in candidates:
            try:
                path = find_path(
                    self.grid,
                    RoutingRequest(source=pos, destination=refuge,
                                   allow_occupied=True),
                )
            except NoPathError:
                continue
            moves = _walk_path(self.grid, qubit, path)
            if moves is None:
                continue
            return self._execute_moves(moves, cursor, gate_index=node.index)
        return None

    def _clear_port(self, port: Position, cursor: float, node: DagNode) -> float:
        """Shove a squatting data qubit off a factory port.

        Ports are transit-only, but swap-through deliveries shift crossed
        qubits one cell toward the port — and when a qubit gets crossed
        twice in one transit, the post-consume restore skips it (its
        recorded origin no longer matches) and it can end up parked on the
        port itself, bricking the factory for every later state
        (fuzzer-found at r=2 with four factories).  Any squatter is
        transient by construction, so evicting it to the nearest parkable
        refuge is always semantically safe.
        """
        squatter = self.grid.occupant(port)
        if squatter is None:
            return cursor
        candidates = reachable_free_cells(
            self.grid, port, predicate=self.grid.parkable, limit=6
        )
        for __, refuge in candidates:
            try:
                path = find_path(
                    self.grid,
                    RoutingRequest(source=port, destination=refuge,
                                   allow_occupied=True),
                )
            except NoPathError:
                continue
            moves = _walk_path(self.grid, squatter, path)
            if moves is None:
                continue
            return self._execute_moves(
                moves, cursor, kind="evict", gate_index=node.index,
                cause="port_squatter",
            )
        return cursor  # leave it; delivery will fail with its own error

    @profiled("schedule.t")
    def _schedule_t_like(self, node: DagNode) -> None:
        """T / Tdg / non-Clifford rotation: consume magic state(s)."""
        (qubit,) = node.gate.qubits
        n_states = self.synthesis.t_cost(node.gate)
        for _ in range(max(1, n_states)):
            self._consume_one_state(node, qubit)

    def _consume_one_state(self, node: DagNode, qubit: int) -> None:
        pos = self.grid.position_of(qubit)
        cursor = self._qubit_free.get(qubit, 0.0)
        space_moves: List[Tuple[int, Position, Position]] = []
        goals = {
            p for p in self.grid.free_neighbors(pos) if self.grid.routable(p)
        }
        if not goals:
            try:
                plan = find_space(self.grid, pos)
            except SpaceSearchError as exc:
                raise SchedulingError(
                    f"no magic-state drop-off near qubit {qubit}: {exc}"
                ) from exc
            self.stats.space_searches += 1
            cursor = self._execute_moves(plan.moves, cursor, kind="evict",
                                         gate_index=node.index,
                                         cause="space_search")
            space_moves = list(plan.moves)
            goals = {plan.freed_cell}

        ready, factory = self.bank.acquire(cursor)
        self.stats.magic_states += 1
        cursor = self._clear_port(factory.port, cursor, node)
        drop, transit = self._route_magic_state(factory.port, qubit, goals)
        if drop is None:
            # Deeply buried consumer (very small r): bring the data qubit
            # itself toward free space, then retry the delivery.  When the
            # qubit cannot move either, keep the original goals and let the
            # swap-through fallback below force a lane.
            surfaced = self._surface_qubit(qubit, cursor, node)
            if surfaced is not None:
                cursor = surfaced
                pos = self.grid.position_of(qubit)
                goals = {
                    p
                    for p in self.grid.free_neighbors(pos)
                    if self.grid.routable(p)
                }
                if not goals:
                    plan = find_space(self.grid, pos)
                    cursor = self._execute_moves(plan.moves, cursor, kind="evict",
                                                 gate_index=node.index,
                                                 cause="space_search")
                    space_moves += list(plan.moves)
                    goals = {plan.freed_cell}
                drop, transit = self._route_magic_state(factory.port, qubit, goals)
        if drop is None:
            # Guaranteed-progress fallback for extreme layouts (r=2): the
            # state swaps *through* the data block.  Each occupied crossing
            # is a patch swap (3 move cycles); crossed qubits shift one
            # cell toward the port and stay there.
            drop, transit = self._plan_swap_through(factory.port, goals)
        if drop is None:
            raise SchedulingError(
                f"magic state unroutable from {factory.port} to qubit {qubit}"
            )

        # Replay the transit plan.  Evictions of parked data qubits are
        # ordinary moves; the state's own hops are conveyor-style (each
        # locks one cell pair for 1d), so successive states pipeline along
        # the same bus and the routing latency hides behind the next
        # state's distillation window.
        delivered = ready
        evictions: List[Tuple[int, Position, Position]] = []
        for move in transit:
            mover, origin, dest = move
            if mover == self._MAGIC_ID:
                hop_start = max(delivered, self._cells_ready((origin, dest)))
                if not evictions and origin == factory.port:
                    self.stats.route_stall_time += max(0.0, hop_start - ready)
                hop = self._record(
                    "route",
                    g.MOVE,
                    (),
                    (origin, dest),
                    hop_start,
                    self.isa.move,
                    min_start=ready,
                    gate_index=node.index,
                    note=f"magic-state from f{factory.index}",
                )
                delivered = hop.end
                self.stats.route_hops += 1
            else:
                self._execute_moves(
                    [move], 0.0, kind="evict", gate_index=node.index,
                    cause="route_clear",
                )
                evictions.append(move)

        start = max(
            delivered,
            self._qubit_free.get(qubit, 0.0),
            self._cells_ready((drop,)),
        )
        self._record(
            "gate",
            node.gate.name,
            (qubit,),
            (drop,),
            start,
            self.isa.t_consume,
            min_start=ready,
            gate_index=node.index,
            note=f"magic-state from f{factory.index}",
        )
        self._restore_evictions(evictions, gate_index=node.index)
        self._restore_evictions(space_moves, gate_index=node.index)
