"""Scheduling: event-driven lattice-surgery scheduler and optimisations."""

from .events import Schedule, ScheduledOp
from .redundant_moves import EliminationReport, eliminate_redundant_moves, find_redundant_pairs
from .resim import optimize_schedule, resimulate
from .scheduler import LatticeSurgeryScheduler, SchedulerStats, SchedulingError

__all__ = [
    "EliminationReport",
    "LatticeSurgeryScheduler",
    "Schedule",
    "ScheduledOp",
    "SchedulerStats",
    "SchedulingError",
    "eliminate_redundant_moves",
    "find_redundant_pairs",
    "optimize_schedule",
    "resimulate",
]
