"""One-call boot of a complete gateway fleet (peer + shards + gateway).

:class:`GatewayCluster` wires together what a production deployment runs
as separate processes: one ``cache-serve`` peer, N backend
:class:`~repro.service.server.CompileService` shards (each with its own
worker pool and disk cache, all pointed at the shared peer so compiles
are shared fleet-wide), and the :class:`~repro.gateway.server.Gateway`
in front.  The CLI, the bench, the chaos harness and the tests all boot
fleets through this class so the topology is defined exactly once.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any, List, Optional, Tuple

from ..service import CachePeerThread, RemoteCache, ServiceThread
from ..sweep import CompileCache
from .auth import Keyring
from .jobstore import JobStore
from .server import GatewayThread


class GatewayCluster:
    """A gateway over ``shards`` backend compile services, in one process.

    Args:
        shards: number of backend compile services.
        jobs: worker processes per backend.
        cache_dir: root directory for all state (per-shard disk caches,
            the shared peer's cache, the gateway's SQLite job store);
            default is a fresh temp dir.  Reusing the same directory
            across cluster lifetimes is the restart story: disk caches,
            the peer and the job store all pick up where they left off.
        validate: replay-validate every backend response.
        store: prebuilt :class:`JobStore` (overrides the default
            ``<cache_dir>/gateway-jobs.sqlite``).
        keyring / rate / burst / max_pending: gateway admission knobs.
        gateway_kwargs: anything else forwarded to :class:`Gateway`
            (retry policy, rng, timeouts, ...).
    """

    def __init__(
        self,
        shards: int = 2,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        validate: bool = False,
        store: Optional[JobStore] = None,
        keyring: Optional[Keyring] = None,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        max_pending: int = 64,
        job_deadline: Optional[float] = None,
        job_attempts: int = 2,
        **gateway_kwargs: Any,
    ) -> None:
        if shards < 1:
            raise ValueError("a gateway needs at least one shard")
        self.shards = shards
        self.jobs = jobs
        self.cache_dir = Path(
            cache_dir
            if cache_dir is not None
            else tempfile.mkdtemp(prefix="repro-gateway-")
        )
        self.validate = validate
        self._store = store
        self._keyring = keyring
        self._rate = rate
        self._burst = burst
        self._max_pending = max_pending
        self._job_deadline = job_deadline
        self._job_attempts = job_attempts
        self._gateway_kwargs = gateway_kwargs
        self.peer: Optional[CachePeerThread] = None
        self.backends: List[ServiceThread] = []
        self.gateway_thread: Optional[GatewayThread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "GatewayCluster":
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        try:
            self.peer = CachePeerThread(
                cache=CompileCache(self.cache_dir / "peer"),
                allow_shutdown=False,
            )
            self.peer.start()
            for index in range(self.shards):
                backend = ServiceThread(
                    jobs=self.jobs,
                    cache=CompileCache(self.cache_dir / f"shard-{index}"),
                    remote=RemoteCache(*self.peer.address),
                    validate=self.validate,
                    allow_shutdown=False,
                    job_deadline=self._job_deadline,
                    job_attempts=self._job_attempts,
                )
                backend.start()
                self.backends.append(backend)
            store = self._store
            if store is None:
                store = JobStore(str(self.cache_dir / "gateway-jobs.sqlite"))
            self.gateway_thread = GatewayThread(
                backends=[backend.address for backend in self.backends],
                store=store,
                keyring=self._keyring,
                rate=self._rate,
                burst=self._burst,
                max_pending=self._max_pending,
                **self._gateway_kwargs,
            )
            self.gateway_thread.start()
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self) -> None:
        if self.gateway_thread is not None:
            self.gateway_thread.stop()
            self.gateway_thread = None
        for backend in self.backends:
            backend.stop()
        self.backends = []
        if self.peer is not None:
            self.peer.stop()
            self.peer = None

    def __enter__(self) -> "GatewayCluster":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- conveniences --------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        assert self.gateway_thread is not None, "cluster is not started"
        return self.gateway_thread.address

    def kill_shard(self, index: int) -> None:
        """Sever shard ``index`` at the router (SIGKILL as seen from the
        gateway; the backend thread itself keeps running)."""
        assert self.gateway_thread is not None
        self.gateway_thread.kill_shard(index)

    def revive_shard(self, index: int) -> None:
        assert self.gateway_thread is not None
        self.gateway_thread.revive_shard(index)
