"""Multi-tenant HTTP/WebSocket gateway over the sharded compile fleet.

The front door the ROADMAP's production story needs: API-key tenants,
token-bucket admission, an async job model whose job ids *are* the sweep
layer's content-addressed cache keys, a crash-safe SQLite job store, and
key-hash sharding across N backend compile services that all share one
cache peer.  See ``docs/architecture.md`` ("Gateway & multi-tenancy").
"""

from .auth import ANONYMOUS_TENANT, Keyring, TokenBucket
from .client import GatewayClient, GatewayError
from .cluster import GatewayCluster
from .http11 import (
    DEFAULT_HEADER_TIMEOUT,
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    MAX_REQUEST_LINE,
    HttpError,
    Request,
)
from .jobstore import DONE, FAILED, JobRecord, JobStore, StoreCrash
from .metrics import GatewayMetrics
from .server import (
    DEFAULT_GATEWAY_PORT,
    E_NO_SHARDS,
    E_NOT_FOUND,
    E_RATE_LIMITED,
    E_UNAUTHORIZED,
    GATEWAY_ERROR_CODES,
    Gateway,
    GatewayThread,
)
from .shards import NoShardsError, Shard, ShardRouter

__all__ = [
    "ANONYMOUS_TENANT",
    "DEFAULT_GATEWAY_PORT",
    "DEFAULT_HEADER_TIMEOUT",
    "DONE",
    "E_NO_SHARDS",
    "E_NOT_FOUND",
    "E_RATE_LIMITED",
    "E_UNAUTHORIZED",
    "FAILED",
    "GATEWAY_ERROR_CODES",
    "Gateway",
    "GatewayClient",
    "GatewayCluster",
    "GatewayError",
    "GatewayMetrics",
    "GatewayThread",
    "HttpError",
    "JobRecord",
    "JobStore",
    "Keyring",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "MAX_REQUEST_LINE",
    "NoShardsError",
    "Request",
    "Shard",
    "ShardRouter",
    "StoreCrash",
    "TokenBucket",
]
