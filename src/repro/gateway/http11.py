"""Hand-rolled HTTP/1.1 and WebSocket framing for the gateway.

The gateway speaks plain HTTP/1.1 over asyncio streams the same way the
compile service speaks newline-JSON: a small, explicit codec with hard
byte bounds and stable error codes, no ``http.server`` and no external
dependencies.  This module owns only the wire format — request parsing
with slow-loris and oversize defenses, response rendering, and the RFC
6455 WebSocket handshake/frame codec the job-status stream uses.  Policy
(auth, rate limits, routing) lives in :mod:`repro.gateway.server`.

Abuse bounds (all answered with a structured JSON error and a stable
``code``, then the connection is closed):

* request line longer than :data:`MAX_REQUEST_LINE` -> 400 ``bad-request``
* header block longer than :data:`MAX_HEADER_BYTES` -> 431 ``headers-too-large``
* body longer than :data:`MAX_BODY_BYTES` -> 413 ``payload-too-large``
* a client dribbling bytes slower than the header timeout (slow loris)
  -> 408 ``request-timeout``
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: maximum request-line length (method + path + version).
MAX_REQUEST_LINE = 8 * 1024

#: maximum total header bytes per request.
MAX_HEADER_BYTES = 32 * 1024

#: maximum request body bytes (QASM sources can be large; same bound as
#: the line protocol's MAX_LINE_BYTES).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: seconds a client gets to deliver the complete head (request line +
#: headers) and, separately, the complete body — the slow-loris bound.
DEFAULT_HEADER_TIMEOUT = 10.0

#: the RFC 6455 handshake GUID.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: WebSocket opcodes the gateway uses.
WS_TEXT = 0x1
WS_CLOSE = 0x8
WS_PING = 0x9
WS_PONG = 0xA

_REASONS = {
    200: "OK",
    202: "Accepted",
    101: "Switching Protocols",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request the gateway rejects at the HTTP layer.

    Carries the response status, a stable machine-readable ``code`` (the
    gateway's closed error-code set lives in :mod:`repro.gateway.server`)
    and optional extra response headers (e.g. ``Retry-After``).
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.headers = headers or {}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)  # lower-cased keys
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        return self.header("connection", "keep-alive").lower() != "close"

    def json(self) -> dict:
        """The body parsed as one JSON object (400 ``bad-request`` otherwise)."""
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(
                400, "bad-request", f"body is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise HttpError(400, "bad-request", "body must be a JSON object")
        return payload


async def read_request(
    reader: asyncio.StreamReader,
    header_timeout: float = DEFAULT_HEADER_TIMEOUT,
    max_body: int = MAX_BODY_BYTES,
) -> Optional[Request]:
    """Read and parse one request; None on a clean EOF between requests.

    Raises :class:`HttpError` on every malformed or abusive frame; the
    caller answers it and closes the connection.  The timeout covers the
    whole head and, separately, the whole body — a client trickling one
    byte per second (slow loris) is cut off with 408 instead of pinning
    the connection handler forever.
    """
    try:
        head = await asyncio.wait_for(
            _read_head(reader), timeout=header_timeout
        )
    except asyncio.TimeoutError:
        raise HttpError(
            408, "request-timeout", "request head not received in time"
        ) from None
    if head is None:
        return None
    method, path, headers = head
    body = b""
    length_text = headers.get("content-length", "")
    if length_text:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(
                400, "bad-request", "invalid Content-Length"
            ) from None
        if length < 0:
            raise HttpError(400, "bad-request", "invalid Content-Length")
        if length > max_body:
            raise HttpError(
                413,
                "payload-too-large",
                f"body of {length} bytes exceeds the {max_body}-byte bound",
            )
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=header_timeout
            )
        except asyncio.IncompleteReadError:
            return None  # client hung up mid-body: nothing to answer
        except asyncio.TimeoutError:
            raise HttpError(
                408, "request-timeout", "request body not received in time"
            ) from None
    return Request(method=method, path=path, headers=headers, body=body)


async def _read_head(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str]]]:
    """Read the request line + header block; None on EOF before any byte."""
    line = await _read_line(reader, MAX_REQUEST_LINE, "request line")
    if line is None:
        return None
    try:
        method, path, version = line.split(" ", 2)
    except ValueError:
        raise HttpError(400, "bad-request", "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(400, "bad-request", f"unsupported version {version!r}")
    headers: Dict[str, str] = {}
    total = 0
    while True:
        header = await _read_line(reader, MAX_HEADER_BYTES, "header line")
        if header is None:
            return None  # EOF inside the header block
        if header == "":
            break
        total += len(header)
        if total > MAX_HEADER_BYTES:
            raise HttpError(
                431, "headers-too-large", "header block exceeds the byte bound"
            )
        name, sep, value = header.partition(":")
        if not sep:
            raise HttpError(400, "bad-request", "malformed header line")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), path, headers


async def _read_line(
    reader: asyncio.StreamReader, limit: int, what: str
) -> Optional[str]:
    """One CRLF (or LF) terminated line as text; None on immediate EOF."""
    try:
        raw = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raw = exc.partial
    except asyncio.LimitOverrunError:
        raise HttpError(400, "bad-request", f"{what} too long") from None
    if len(raw) > limit:
        status, code = (
            (431, "headers-too-large") if what == "header line"
            else (400, "bad-request")
        )
        raise HttpError(status, code, f"{what} too long")
    try:
        return raw.rstrip(b"\r\n").decode("ascii")
    except UnicodeDecodeError:
        raise HttpError(400, "bad-request", f"{what} is not ASCII") from None


def render_response(
    status: int,
    payload: Optional[dict] = None,
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one JSON response to its wire form."""
    body = b""
    if payload is not None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def error_body(code: str, message: str) -> dict:
    """The JSON body of every gateway error response."""
    return {"ok": False, "error": {"code": code, "message": message}}


# -- WebSocket (RFC 6455) ------------------------------------------------------


def websocket_accept(key: str) -> str:
    """The Sec-WebSocket-Accept value for a handshake ``key``."""
    digest = hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def websocket_handshake(request: Request) -> bytes:
    """The 101 response bytes upgrading ``request``, or raise 400."""
    if request.header("upgrade").lower() != "websocket":
        raise HttpError(400, "bad-request", "not a WebSocket upgrade request")
    key = request.header("sec-websocket-key")
    if not key:
        raise HttpError(400, "bad-request", "missing Sec-WebSocket-Key")
    lines = [
        "HTTP/1.1 101 Switching Protocols",
        "Upgrade: websocket",
        "Connection: Upgrade",
        f"Sec-WebSocket-Accept: {websocket_accept(key)}",
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def encode_ws_frame(
    payload: bytes, opcode: int = WS_TEXT, mask: Optional[bytes] = None
) -> bytes:
    """One WebSocket frame (FIN set).  Servers send unmasked; clients
    must pass a 4-byte ``mask``."""
    head = bytes([0x80 | opcode])
    mask_bit = 0x80 if mask is not None else 0
    length = len(payload)
    if length < 126:
        head += bytes([mask_bit | length])
    elif length < 1 << 16:
        head += bytes([mask_bit | 126]) + struct.pack(">H", length)
    else:
        head += bytes([mask_bit | 127]) + struct.pack(">Q", length)
    if mask is None:
        return head + payload
    masked = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return head + mask + masked


async def read_ws_frame(
    reader: asyncio.StreamReader, max_payload: int = MAX_BODY_BYTES
) -> Tuple[int, bytes]:
    """Read one frame, unmasking if needed; returns ``(opcode, payload)``.

    Raises :class:`ConnectionError` on EOF mid-frame and
    :class:`HttpError` (400) on an over-long payload.
    """
    try:
        b0, b1 = await reader.readexactly(2)
        length = b1 & 0x7F
        if length == 126:
            (length,) = struct.unpack(">H", await reader.readexactly(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", await reader.readexactly(8))
        if length > max_payload:
            raise HttpError(400, "bad-request", "WebSocket frame too large")
        mask = await reader.readexactly(4) if b1 & 0x80 else None
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError("WebSocket peer hung up mid-frame") from exc
    if mask is not None:
        payload = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return b0 & 0x0F, payload
