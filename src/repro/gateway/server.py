"""The gateway: HTTP/WebSocket front door over the sharded compile fleet.

The :class:`Gateway` is one asyncio process that owns identity (API-key
auth), admission (per-tenant token buckets, bounded in-flight dispatch),
the persistent job store, and the shard router.  It compiles nothing:
jobs are forwarded to backend :class:`~repro.service.server.CompileService`
processes over the newline-JSON protocol, and every result it serves is
byte-identical to what ``repro compile`` produces for the same request —
the job id *is* the sweep layer's content-addressed cache key, computed
locally with the same :func:`~repro.sweep.jobs.job_key` the backends use.

Endpoints (all JSON):

``POST /v1/jobs``
    Submit a compile request (``workload`` or ``qasm``, plus optional
    ``config`` / ``optimize`` / ``full``).  Answers 202 with the job id,
    or 200 immediately when the store already holds the finished result
    (zero compilations).  Deterministic rejects (bad QASM, unknown
    workload, bad config) are answered 400/404 synchronously and never
    become jobs.
``GET /v1/jobs/<id>``
    Poll one job; 404 ``not-found`` for unknown ids.
``GET /v1/ws``
    WebSocket upgrade; the client sends ``{"watch": "<id>"}`` text
    frames and receives status frames until the job is terminal.
``GET /v1/stats``
    Per-tenant counters, latency percentiles, per-shard dispatch, job
    totals and the persistent session ledger.
``GET /v1/ping``
    Liveness probe (no auth).

Error responses reuse the service protocol's closed code set plus the
gateway-specific codes below; every failure is a structured JSON body
with a stable ``code``.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__
from ..service import protocol
from ..service.client import RetryPolicy
from ..sweep.jobs import job_key
from .auth import ANONYMOUS_TENANT, Keyring, TokenBucket
from .http11 import (
    DEFAULT_HEADER_TIMEOUT,
    HttpError,
    Request,
    WS_CLOSE,
    WS_PING,
    WS_PONG,
    WS_TEXT,
    encode_ws_frame,
    error_body,
    read_request,
    read_ws_frame,
    render_response,
    websocket_handshake,
)
from .jobstore import DONE, FAILED, JobStore
from .metrics import GatewayMetrics
from .shards import NoShardsError, ShardRouter

#: default TCP port of ``repro gateway`` (next to the service's 7787).
DEFAULT_GATEWAY_PORT = 7790

# -- gateway-specific error codes (extending the protocol's closed set) --------

E_UNAUTHORIZED = "unauthorized"  #: missing or unknown API key
E_RATE_LIMITED = "rate-limited"  #: token bucket empty; see ``Retry-After``
E_NOT_FOUND = "not-found"  #: unknown endpoint or job id
E_NO_SHARDS = "no-shards"  #: every backend shard is down

#: the closed set of error codes the gateway can emit: the service
#: protocol's codes (forwarded verbatim from backends) plus the HTTP
#: layer's and the gateway's own.
GATEWAY_ERROR_CODES = protocol.ERROR_CODES + (
    E_UNAUTHORIZED,
    E_RATE_LIMITED,
    E_NOT_FOUND,
    E_NO_SHARDS,
    "request-timeout",
    "payload-too-large",
    "headers-too-large",
)

#: request body fields ``POST /v1/jobs`` accepts.
JOB_FIELDS = ("workload", "qasm", "config", "optimize", "full")

#: HTTP status for each deterministic compile-request reject.
_REJECT_STATUS = {
    protocol.E_BAD_REQUEST: 400,
    protocol.E_BAD_CONFIG: 400,
    protocol.E_BAD_CIRCUIT: 400,
    protocol.E_UNKNOWN_WORKLOAD: 404,
}

#: backend sources that cost zero compilations.
_WARM_SOURCES = ("memo", "disk", "remote", "coalesced")


class Gateway:
    """The multi-tenant front door; see the module docstring.

    Args:
        backends: ``(host, port)`` of each backend compile service.
        host / port: the listening address (``port=0`` → ephemeral).
        store: a prebuilt :class:`JobStore` (tests inject fake clocks /
            fault hooks); mutually exclusive with ``store_path``.
        store_path: SQLite file for a store the gateway builds itself;
            ``":memory:"`` (the default) keeps everything in-process.
        keyring: API-key → tenant mapping; None runs open (every caller
            is the ``anonymous`` tenant).
        rate / burst: per-tenant token-bucket parameters (requests/s and
            bucket depth); ``rate=None`` disables rate limiting.
        max_pending: bound on concurrently dispatched jobs; submissions
            beyond it that would start a *new* compilation are shed with
            503 ``overloaded``.
        retry / rng: shard-dispatch backoff policy and its jitter source.
        clock: token-bucket clock (tests pass a fake).
        header_timeout: slow-loris bound for request heads/bodies.
        request_timeout: per-dispatch bound against a backend shard.
    """

    def __init__(
        self,
        backends: List[Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = DEFAULT_GATEWAY_PORT,
        store: Optional[JobStore] = None,
        store_path: str = ":memory:",
        keyring: Optional[Keyring] = None,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        max_pending: int = 64,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        clock=time.monotonic,
        header_timeout: float = DEFAULT_HEADER_TIMEOUT,
        request_timeout: float = 120.0,
        health_interval: float = 0.25,
    ) -> None:
        self.host = host
        self.port = port
        self.keyring = keyring
        self.max_pending = max_pending
        self.header_timeout = header_timeout
        self.store = store if store is not None else JobStore(store_path)
        self.limiter: Optional[TokenBucket] = None
        if rate is not None:
            self.limiter = TokenBucket(
                rate=rate,
                burst=burst if burst is not None else max(1.0, rate),
                clock=clock,
            )
        self.router = ShardRouter(
            backends,
            retry=retry,
            rng=rng,
            request_timeout=request_timeout,
            health_interval=health_interval,
        )
        self.metrics = GatewayMetrics()
        self._tasks: Dict[str, asyncio.Task] = {}
        self._watchers: Dict[str, asyncio.Event] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping: Optional[asyncio.Event] = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        assert self._server is not None, "gateway is not started"
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.router.start_health_loop()
        # crash recovery: every job the previous process left non-terminal
        # is re-dispatched (claim() re-adopts rows already 'dispatched')
        for record in self.store.pending():
            self._ensure_dispatch(record.key)

    async def serve_until_stopped(self) -> None:
        assert self._server is not None and self._stopping is not None
        async with self._server:
            await self._stopping.wait()
        await self.router.stop()
        for task in list(self._tasks.values()):
            task.cancel()

    def request_stop(self) -> None:
        if self._stopping is not None:
            self._stopping.set()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connections += 1
        try:
            while True:
                try:
                    request = await read_request(
                        reader, header_timeout=self.header_timeout
                    )
                except HttpError as exc:
                    self.metrics.http_error(exc.code)
                    writer.write(
                        render_response(
                            exc.status,
                            error_body(exc.code, str(exc)),
                            exc.headers,
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                self.metrics.requests += 1
                if request.header("upgrade").lower() == "websocket":
                    await self._serve_websocket(request, reader, writer)
                    return
                started = time.monotonic()
                try:
                    status, payload, headers = await self._route(request)
                except HttpError as exc:
                    self.metrics.http_error(exc.code)
                    status = exc.status
                    payload = error_body(exc.code, str(exc))
                    headers = exc.headers
                self.metrics.observe_latency(time.monotonic() - started)
                writer.write(
                    render_response(
                        status, payload, headers, keep_alive=request.keep_alive
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    return
        except asyncio.CancelledError:
            pass  # gateway shutdown cancelled this connection
        except (ConnectionError, OSError):
            pass  # client hung up; nothing to answer
        finally:
            writer.close()

    async def _route(
        self, request: Request
    ) -> Tuple[int, dict, Dict[str, str]]:
        method, path = request.method, request.path.split("?", 1)[0]
        if path == "/v1/ping":
            if method != "GET":
                raise HttpError(405, protocol.E_BAD_REQUEST, "use GET")
            return (
                200,
                {
                    "ok": True,
                    "version": __version__,
                    "protocol": protocol.PROTOCOL_VERSION,
                },
                {},
            )
        if path == "/v1/jobs":
            if method != "POST":
                raise HttpError(405, protocol.E_BAD_REQUEST, "use POST")
            return await self._submit_job(request)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                raise HttpError(405, protocol.E_BAD_REQUEST, "use GET")
            return self._poll_job(request, path[len("/v1/jobs/"):])
        if path == "/v1/stats":
            if method != "GET":
                raise HttpError(405, protocol.E_BAD_REQUEST, "use GET")
            self._authenticate(request)
            return 200, {"ok": True, **self._stats()}, {}
        raise HttpError(404, E_NOT_FOUND, f"no such endpoint {path!r}")

    # -- auth & admission ---------------------------------------------------

    def _authenticate(self, request: Request) -> str:
        """The tenant behind ``request`` (401 on missing/unknown key)."""
        if self.keyring is None:
            return ANONYMOUS_TENANT
        presented: Optional[str] = None
        auth = request.header("authorization")
        if auth.lower().startswith("bearer "):
            presented = auth[7:].strip()
        if not presented:
            presented = request.header("x-api-key") or None
        tenant = self.keyring.tenant_for(presented)
        if tenant is None:
            raise HttpError(
                401, E_UNAUTHORIZED, "missing or unknown API key"
            )
        return tenant

    def _admit(self, tenant: str) -> None:
        """Spend one rate-limit token (429 + Retry-After when empty)."""
        if self.limiter is None:
            return
        allowed, retry_after = self.limiter.acquire(tenant)
        if not allowed:
            self.metrics.tenant(tenant).rate_limited += 1
            raise HttpError(
                429,
                E_RATE_LIMITED,
                f"tenant {tenant!r} is over its request rate",
                headers={"Retry-After": f"{retry_after:.3f}"},
            )

    # -- job submission / polling -------------------------------------------

    async def _submit_job(
        self, request: Request
    ) -> Tuple[int, dict, Dict[str, str]]:
        tenant = self._authenticate(request)
        self._admit(tenant)
        body = request.json()
        unknown = sorted(set(body) - set(JOB_FIELDS))
        if unknown:
            raise HttpError(
                400,
                protocol.E_BAD_REQUEST,
                f"unknown field(s) {', '.join(unknown)}; "
                f"allowed: {', '.join(JOB_FIELDS)}",
            )
        message = protocol.compile_request(
            workload=body.get("workload"),
            qasm_source=body.get("qasm"),
            config=body.get("config"),
            optimize=bool(body.get("optimize")),
            full=bool(body.get("full")),
        )
        # deterministic rejects (bad QASM, unknown workload, bad config)
        # never become jobs: resolve the request — and its content
        # address — right here, with the exact parser the backends use
        loop = asyncio.get_running_loop()
        try:
            key = await loop.run_in_executor(None, self._resolve_key, message)
        except protocol.ProtocolError as exc:
            raise HttpError(
                _REJECT_STATUS.get(exc.code, 400), exc.code, str(exc)
            ) from exc
        counters = self.metrics.tenant(tenant)
        record = self.store.get(key)
        if record is not None and record.status == DONE:
            counters.accepted += 1
            counters.warm_hits += 1
            return 200, {"ok": True, **record.public()}, {}
        needs_dispatch = (
            record is None or record.status == FAILED
        ) and key not in self._tasks
        if needs_dispatch and len(self._tasks) >= self.max_pending:
            counters.shed += 1
            raise HttpError(
                503,
                protocol.E_OVERLOADED,
                f"gateway has {len(self._tasks)} jobs in flight",
                headers={"Retry-After": "1"},
            )
        counters.accepted += 1
        record = self.store.submit(key, tenant, message)
        if record.status == DONE:
            counters.warm_hits += 1
            return 200, {"ok": True, **record.public()}, {}
        self._ensure_dispatch(key)
        return 202, {"ok": True, **record.public()}, {}

    @staticmethod
    def _resolve_key(message: Dict[str, Any]) -> str:
        circuit, config, _ = protocol.parse_compile_request(message)
        return job_key(circuit, config)

    def _poll_job(
        self, request: Request, key: str
    ) -> Tuple[int, dict, Dict[str, str]]:
        self._authenticate(request)
        record = self.store.get(key)
        if record is None:
            raise HttpError(404, E_NOT_FOUND, f"no job {key[:16]}...")
        return 200, {"ok": True, **record.public()}, {}

    def _stats(self) -> dict:
        return {
            "gateway": self.metrics.snapshot(),
            "shards": self.router.snapshot(),
            "jobs": self.store.counts(),
            "sessions": self.store.tenants(),
            "in_flight": len(self._tasks),
        }

    # -- dispatch -----------------------------------------------------------

    def _ensure_dispatch(self, key: str) -> None:
        task = self._tasks.get(key)
        if task is None or task.done():
            self._tasks[key] = asyncio.ensure_future(self._dispatch(key))

    async def _dispatch(self, key: str) -> None:
        """Drive one job to a terminal state via the shard router.

        Exactly one dispatch task exists per key at a time — every client
        submitting the same key piggybacks on it, so identical requests
        coalesce here before the backend broker even sees them.
        """
        try:
            record = self.store.claim(key)
            if record is None:  # already terminal (restart replay race)
                return
            self._notify(key)
            counters = self.metrics.tenant(record.tenant)
            try:
                response = await self.router.dispatch(key, dict(record.request))
            except NoShardsError as exc:
                self.store.fail(
                    key, {"code": E_NO_SHARDS, "message": str(exc)}
                )
                counters.failed += 1
                return
            if response.get("ok"):
                payload = {
                    name: value
                    for name, value in response.items()
                    if name not in ("ok", "op", "id")
                }
                if payload.get("key", key) != key:
                    # a backend disagreeing on the content address would
                    # poison the store — fail loudly instead
                    self.store.fail(
                        key,
                        {
                            "code": protocol.E_INTERNAL,
                            "message": "backend job key mismatch",
                        },
                    )
                    counters.failed += 1
                    return
                self.store.complete(key, payload)
                counters.completed += 1
                if payload.get("source") in _WARM_SOURCES:
                    counters.warm_hits += 1
            else:
                error = response.get("error") or {
                    "code": protocol.E_INTERNAL,
                    "message": "backend returned no error payload",
                }
                self.store.fail(key, error)
                counters.failed += 1
        finally:
            self._tasks.pop(key, None)
            self._notify(key)

    # -- watchers -----------------------------------------------------------

    def _notify(self, key: str) -> None:
        event = self._watchers.pop(key, None)
        if event is not None:
            event.set()

    async def _wait_for_update(self, key: str, timeout: float) -> None:
        event = self._watchers.setdefault(key, asyncio.Event())
        try:
            await asyncio.wait_for(event.wait(), timeout)
        except asyncio.TimeoutError:
            pass

    # -- WebSocket ----------------------------------------------------------

    async def _serve_websocket(
        self,
        request: Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Stream job status frames; see the module docstring."""
        if request.path.split("?", 1)[0] != "/v1/ws":
            raise HttpError(404, E_NOT_FOUND, "WebSocket endpoint is /v1/ws")
        self._authenticate(request)
        writer.write(websocket_handshake(request))
        await writer.drain()
        self.metrics.ws_streams += 1
        while True:
            try:
                opcode, payload = await read_ws_frame(reader)
            except (ConnectionError, HttpError):
                return
            if opcode == WS_CLOSE:
                writer.write(encode_ws_frame(b"", WS_CLOSE))
                await writer.drain()
                return
            if opcode == WS_PING:
                writer.write(encode_ws_frame(payload, WS_PONG))
                await writer.drain()
                continue
            if opcode != WS_TEXT:
                continue
            try:
                command = json.loads(payload.decode("utf-8"))
                key = command["watch"]
            except (ValueError, KeyError, UnicodeDecodeError):
                writer.write(
                    encode_ws_frame(
                        json.dumps(
                            error_body(
                                protocol.E_BAD_REQUEST,
                                'expected {"watch": "<job id>"}',
                            )
                        ).encode()
                    )
                )
                await writer.drain()
                continue
            await self._stream_job(key, writer)

    async def _stream_job(
        self, key: str, writer: asyncio.StreamWriter
    ) -> None:
        """Send status frames for ``key`` until it reaches a terminal state."""
        last_status: Optional[str] = None
        while True:
            record = self.store.get(key)
            if record is None:
                writer.write(
                    encode_ws_frame(
                        json.dumps(
                            error_body(E_NOT_FOUND, f"no job {key[:16]}...")
                        ).encode()
                    )
                )
                await writer.drain()
                return
            if record.status != last_status:
                last_status = record.status
                writer.write(
                    encode_ws_frame(
                        json.dumps(
                            {"ok": True, **record.public()}, sort_keys=True
                        ).encode()
                    )
                )
                await writer.drain()
            if record.terminal:
                return
            await self._wait_for_update(key, timeout=1.0)


# -- background-thread harness -------------------------------------------------


class GatewayThread:
    """A gateway running on a dedicated background thread.

    Usage::

        with GatewayThread(backends=[service.address]) as gw:
            client = GatewayClient(*gw.address)
            ...

    Mirrors :class:`~repro.service.server.ServiceThread`; the chaos
    harness and the tests use :meth:`kill_shard` / :meth:`revive_shard`
    to drive the shard-death seam from outside the gateway's loop.
    """

    def __init__(self, **gateway_kwargs: Any) -> None:
        gateway_kwargs.setdefault("port", 0)
        self._kwargs = gateway_kwargs
        self._gateway: Optional[Gateway] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-gateway", daemon=True
        )

    def _run(self) -> None:
        async def _main() -> None:
            try:
                self._gateway = Gateway(**self._kwargs)
                await self._gateway.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as exc:
                self._startup_error = exc
                raise
            finally:
                self._ready.set()
            await self._gateway.serve_until_stopped()

        try:
            asyncio.run(_main())
        except BaseException as exc:
            if self._startup_error is None and not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    def start(self) -> "GatewayThread":
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._startup_error is not None:
            raise RuntimeError(
                f"gateway failed to start: {self._startup_error}"
            ) from self._startup_error
        if self._gateway is None or self._loop is None:
            raise RuntimeError("gateway failed to start (timeout)")
        return self

    @property
    def address(self) -> Tuple[str, int]:
        if self._gateway is None:
            raise RuntimeError("gateway is not started")
        return self._gateway.address

    @property
    def gateway(self) -> Gateway:
        if self._gateway is None:
            raise RuntimeError("gateway is not started")
        return self._gateway

    def kill_shard(self, index: int) -> None:
        """Sever shard ``index`` as if its backend were SIGKILLed."""
        assert self._loop is not None
        self._loop.call_soon_threadsafe(
            self.gateway.router.force_down, index
        )

    def revive_shard(self, index: int) -> None:
        """Let the health loop re-admit shard ``index``."""
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self.gateway.router.revive, index)

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.gateway.request_stop)
        self._thread.join(timeout=30)
        if self._gateway is not None:
            self._gateway.store.close()

    def __enter__(self) -> "GatewayThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
