"""Tenant identity and per-tenant token-bucket rate limiting.

The gateway's identity layer is deliberately small: an API key maps to a
tenant name, keys are compared in constant time, and every admission
decision (including the 429 ``Retry-After`` hint) comes from one
:class:`TokenBucket` per tenant with an injectable clock — tests drive it
with a fake clock and never sleep.
"""

from __future__ import annotations

import hmac
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

#: tenant assigned when the gateway runs without a key file (open mode).
ANONYMOUS_TENANT = "anonymous"


class Keyring:
    """API key -> tenant mapping loaded from a key file.

    The file format is one ``tenant:key`` pair per line; blank lines and
    ``#`` comments are ignored.  A gateway constructed with ``None``
    instead of a keyring runs open (every request is the anonymous
    tenant) — that mode is for dev loops and tests, not deployments.
    """

    def __init__(self, keys: Dict[str, str]) -> None:
        if not keys:
            raise ValueError("keyring needs at least one key")
        self._tenants_by_key = dict(keys)

    @classmethod
    def load(cls, path) -> "Keyring":
        keys: Dict[str, str] = {}
        for lineno, line in enumerate(
            Path(path).read_text().splitlines(), start=1
        ):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            tenant, sep, key = line.partition(":")
            if not sep or not tenant.strip() or not key.strip():
                raise ValueError(
                    f"{path}:{lineno}: expected 'tenant:key', got {line!r}"
                )
            keys[key.strip()] = tenant.strip()
        return cls(keys)

    def __len__(self) -> int:
        return len(self._tenants_by_key)

    def tenant_for(self, presented: Optional[str]) -> Optional[str]:
        """The tenant owning ``presented``, or None for unknown/missing.

        Every stored key is compared with :func:`hmac.compare_digest`,
        and all keys are always scanned, so the comparison leaks neither
        content nor which key almost matched.
        """
        if not presented:
            return None
        match: Optional[str] = None
        for key, tenant in self._tenants_by_key.items():
            if hmac.compare_digest(key.encode(), presented.encode()):
                match = tenant
        return match


class TokenBucket:
    """Per-tenant token buckets: ``rate`` tokens/second, ``burst`` deep.

    Each tenant owns an independent bucket, so one greedy tenant drains
    only its own allowance and can never starve the others — the
    fairness property the concurrency herd tests pin down.  ``acquire``
    never blocks: it either spends a token or answers with the seconds
    until one is available (the 429 ``Retry-After`` value).
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: Dict[str, Tuple[float, float]] = {}  # tenant -> (tokens, stamp)

    def acquire(self, tenant: str) -> Tuple[bool, float]:
        """Try to spend one token; returns ``(allowed, retry_after_s)``."""
        now = self._clock()
        tokens, stamp = self._buckets.get(tenant, (self.burst, now))
        tokens = min(self.burst, tokens + (now - stamp) * self.rate)
        if tokens >= 1.0:
            self._buckets[tenant] = (tokens - 1.0, now)
            return True, 0.0
        self._buckets[tenant] = (tokens, now)
        return False, (1.0 - tokens) / self.rate

    def tokens(self, tenant: str) -> float:
        """Current token balance (for stats; refreshed to now)."""
        now = self._clock()
        tokens, stamp = self._buckets.get(tenant, (self.burst, now))
        return min(self.burst, tokens + (now - stamp) * self.rate)
