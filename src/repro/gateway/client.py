"""Synchronous HTTP/WebSocket client for the gateway.

What tests, the chaos harness, the bench and the CLI demo use to talk to
a running gateway.  HTTP requests ride stdlib :mod:`http.client` (one
keep-alive connection, rebuilt on drop); the WebSocket side is a tiny
RFC 6455 client over a raw socket reusing the gateway's own frame codec.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import struct
import time
from typing import Any, Dict, List, Optional, Tuple

from .http11 import WS_CLOSE, WS_TEXT, encode_ws_frame


class GatewayError(RuntimeError):
    """A structured error response from the gateway.

    Attributes:
        status: the HTTP status code.
        code: the stable machine-readable error code.
        retry_after: parsed ``Retry-After`` header seconds, when present.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.retry_after = retry_after


class GatewayClient:
    """Blocking gateway client, one request at a time.

    Args:
        host / port: the gateway address.
        api_key: optional API key sent as ``Authorization: Bearer``.
        timeout: socket timeout for connect and each response.
        poll_interval: sleep between polls in :meth:`wait`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7790,
        api_key: Optional[str] = None,
        timeout: float = 120.0,
        poll_interval: float = 0.02,
    ) -> None:
        self.host = host
        self.port = port
        self.api_key = api_key
        self.timeout = timeout
        self.poll_interval = poll_interval
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport ----------------------------------------------------------

    def _headers(self) -> Dict[str, str]:
        headers = {"Connection": "keep-alive"}
        if self.api_key:
            headers["Authorization"] = f"Bearer {self.api_key}"
        return headers

    def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        """One request/response; returns ``(status, decoded body)``.

        Raises :class:`GatewayError` for structured error responses and
        :class:`ConnectionError` when the gateway hangs up mid-exchange.
        """
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        payload = None if body is None else json.dumps(body)
        try:
            self._conn.request(method, path, payload, self._headers())
            response = self._conn.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError) as exc:
            self.close()
            raise ConnectionError(f"gateway connection failed: {exc}") from exc
        decoded = json.loads(raw.decode("utf-8")) if raw else {}
        if not decoded.get("ok"):
            error = decoded.get("error") or {}
            retry_after_text = response.headers.get("Retry-After")
            raise GatewayError(
                response.status,
                error.get("code", "internal"),
                error.get("message", "unknown gateway error"),
                retry_after=(
                    float(retry_after_text) if retry_after_text else None
                ),
            )
        return response.status, decoded

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- operations ---------------------------------------------------------

    def submit(
        self,
        workload: Optional[str] = None,
        qasm_source: Optional[str] = None,
        optimize: bool = False,
        full: bool = False,
        **config: Any,
    ) -> dict:
        """``POST /v1/jobs``; returns the job payload (``id``, ``status``)."""
        body: Dict[str, Any] = {}
        if workload is not None:
            body["workload"] = workload
        if qasm_source is not None:
            body["qasm"] = qasm_source
        if config:
            body["config"] = dict(config)
        if optimize:
            body["optimize"] = True
        if full:
            body["full"] = True
        _, payload = self.request("POST", "/v1/jobs", body)
        return payload

    def get(self, key: str) -> dict:
        """``GET /v1/jobs/<key>``."""
        _, payload = self.request("GET", f"/v1/jobs/{key}")
        return payload

    def wait(self, key: str, timeout: float = 120.0) -> dict:
        """Poll ``key`` until it is terminal; returns the final payload."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.get(key)
            if payload["status"] in ("done", "failed"):
                return payload
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {key[:16]}... still {payload['status']!r} "
                    f"after {timeout}s"
                )
            time.sleep(self.poll_interval)

    def compile(self, timeout: float = 120.0, **submit_kwargs: Any) -> dict:
        """Submit and wait; returns the terminal job payload."""
        payload = self.submit(**submit_kwargs)
        if payload["status"] in ("done", "failed"):
            return payload
        return self.wait(payload["id"], timeout=timeout)

    def stats(self) -> dict:
        _, payload = self.request("GET", "/v1/stats")
        return payload

    def ping(self) -> dict:
        _, payload = self.request("GET", "/v1/ping")
        return payload

    # -- WebSocket ----------------------------------------------------------

    def watch(self, key: str, timeout: float = 120.0) -> List[dict]:
        """Stream ``key``'s status over a WebSocket until terminal.

        Returns every status frame received, in order (the last one is
        terminal).  Opens a dedicated connection; the HTTP connection is
        untouched.
        """
        sock = socket.create_connection(
            (self.host, self.port), timeout=timeout
        )
        try:
            ws_key = "x3JJHMbDL1EzLkh9GBhXDw=="  # static nonce is fine here
            lines = [
                "GET /v1/ws HTTP/1.1",
                f"Host: {self.host}:{self.port}",
                "Upgrade: websocket",
                "Connection: Upgrade",
                f"Sec-WebSocket-Key: {ws_key}",
                "Sec-WebSocket-Version: 13",
            ]
            if self.api_key:
                lines.append(f"Authorization: Bearer {self.api_key}")
            sock.sendall(("\r\n".join(lines) + "\r\n\r\n").encode("ascii"))
            reader = sock.makefile("rb")
            status_line = reader.readline().decode("ascii", "replace")
            if " 101 " not in status_line:
                raise ConnectionError(
                    f"WebSocket upgrade refused: {status_line.strip()}"
                )
            while reader.readline() not in (b"\r\n", b"\n", b""):
                pass  # drain the 101 response headers
            sock.sendall(
                encode_ws_frame(
                    json.dumps({"watch": key}).encode(),
                    WS_TEXT,
                    mask=os.urandom(4),
                )
            )
            frames: List[dict] = []
            while True:
                payload = _read_frame(reader)
                if payload is None:
                    return frames
                frame = json.loads(payload.decode("utf-8"))
                frames.append(frame)
                if not frame.get("ok") or frame.get("status") in (
                    "done",
                    "failed",
                ):
                    sock.sendall(
                        encode_ws_frame(b"", WS_CLOSE, mask=os.urandom(4))
                    )
                    return frames
        finally:
            sock.close()


def _read_frame(reader) -> Optional[bytes]:
    """One server->client frame's payload; None on close/EOF."""
    head = reader.read(2)
    if len(head) < 2:
        return None
    b0, b1 = head
    if (b0 & 0x0F) == WS_CLOSE:
        return None
    length = b1 & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", reader.read(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", reader.read(8))
    return reader.read(length)
