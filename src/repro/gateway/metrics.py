"""Per-tenant gateway counters and latency percentiles for ``/v1/stats``.

The gateway reports three layers: admission (accepted / rate-limited /
rejected per tenant), outcome (completed / failed, warm hits that cost
zero compilations), and latency (p50/p99 over a sliding window, reusing
the service layer's :class:`~repro.service.batcher.LatencyWindow`).
Per-shard dispatch counts come from the router, job totals from the
store; this module owns only what the gateway process itself observes.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Dict

from ..service.batcher import LatencyWindow


class TenantCounters:
    """Admission and outcome counters for one tenant."""

    __slots__ = (
        "accepted",
        "rate_limited",
        "shed",
        "completed",
        "failed",
        "warm_hits",
    )

    def __init__(self) -> None:
        self.accepted = 0
        self.rate_limited = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.warm_hits = 0

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class GatewayMetrics:
    """Everything ``/v1/stats`` reports about this gateway process."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.connections = 0
        self.requests = 0
        self.ws_streams = 0
        self.http_errors: Dict[str, int] = defaultdict(int)
        self.tenants: Dict[str, TenantCounters] = defaultdict(TenantCounters)
        self.latency = LatencyWindow()

    def tenant(self, name: str) -> TenantCounters:
        return self.tenants[name]

    def observe_latency(self, seconds: float) -> None:
        self.latency.add(seconds)

    def http_error(self, code: str) -> None:
        self.http_errors[code] += 1

    def snapshot(self) -> dict:
        latency = self.latency.snapshot()
        p99 = self.latency.percentile(0.99)
        latency["p99_ms"] = None if p99 is None else round(p99 * 1000.0, 3)
        return {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "connections": self.connections,
            "requests": self.requests,
            "ws_streams": self.ws_streams,
            "http_errors": dict(sorted(self.http_errors.items())),
            "tenants": {
                name: counters.snapshot()
                for name, counters in sorted(self.tenants.items())
            },
            "latency": latency,
        }
