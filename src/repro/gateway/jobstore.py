"""The persistent SQLite job/session store behind the gateway.

One row per job, keyed by the sweep layer's content-addressed job key —
the job *id* a client polls is literally the cache key ``repro compile``
would compute for the same circuit and config.  The store is the
gateway's crash-safety boundary: every transition (submit, claim,
complete, fail) is one SQLite transaction, so a process killed at any
point leaves each job either in its previous state or its next state,
never torn (a ``done`` row always has its result; a ``failed`` row
always has its error).  On restart the gateway replays every
non-terminal row through the shard router; resubmission of a finished
key is answered from the stored result with zero compilations.

Job lifecycle::

    submit            dispatch            backend reply
      |                  |                     |
      v                  v                     v
    queued ------> dispatched ------------> done
                       |                      ^
                       +--> failed --(resubmit: back to queued)

``failed`` is a terminal verdict for *that attempt budget*, not for the
key: failures are transient by construction (parse errors are rejected
at submit time and never become jobs), so resubmitting a failed key
re-queues it.

The wall clock is injectable and every mutation accepts an optional
fault hook (``faults.before_commit(op, key)``) so the property tests can
simulate a crash between the write and the ack without real processes
or real time.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

#: job states (see the lifecycle diagram above).
QUEUED = "queued"
DISPATCHED = "dispatched"
DONE = "done"
FAILED = "failed"

#: states a restart must replay through the shard router.
PENDING_STATES = (QUEUED, DISPATCHED)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    key      TEXT PRIMARY KEY,
    tenant   TEXT NOT NULL,
    status   TEXT NOT NULL,
    request  TEXT NOT NULL,
    result   TEXT,
    error    TEXT,
    attempts INTEGER NOT NULL DEFAULT 0,
    created  REAL NOT NULL,
    updated  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_status ON jobs (status);
CREATE TABLE IF NOT EXISTS tenants (
    tenant    TEXT PRIMARY KEY,
    submitted INTEGER NOT NULL DEFAULT 0,
    completed INTEGER NOT NULL DEFAULT 0,
    first_seen REAL NOT NULL,
    last_seen  REAL NOT NULL
);
"""


class StoreCrash(RuntimeError):
    """Raised by a test fault hook to simulate dying before the commit."""


@dataclass
class JobRecord:
    """One job row, JSON fields decoded."""

    key: str
    tenant: str
    status: str
    request: dict
    result: Optional[dict]
    error: Optional[dict]
    attempts: int
    created: float
    updated: float

    @property
    def terminal(self) -> bool:
        return self.status in (DONE, FAILED)

    def public(self) -> dict:
        """The poll-response view of this row (no request echo)."""
        payload: Dict[str, object] = {
            "id": self.key,
            "status": self.status,
            "tenant": self.tenant,
            "attempts": self.attempts,
            "created": self.created,
            "updated": self.updated,
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobStore:
    """Crash-safe job/session store over one SQLite file.

    Args:
        path: database file (a directory is created as needed); use
            ``":memory:"`` only for throwaway tests — persistence is the
            point.
        clock: wall-clock source for ``created``/``updated`` stamps.
        faults: optional hook object; ``faults.before_commit(op, key)``
            runs inside every mutating transaction, immediately before
            the commit.  Raising there aborts the transaction — the
            property tests' crash simulation.
    """

    def __init__(
        self,
        path: str,
        clock: Callable[[], float] = time.time,
        faults=None,
    ) -> None:
        self.path = str(path)
        self._clock = clock
        self._faults = faults
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.executescript(_SCHEMA)

    # -- transitions --------------------------------------------------------

    def submit(self, key: str, tenant: str, request: dict) -> JobRecord:
        """Insert (or revive) one job; idempotent by key.

        A new key lands as ``queued``.  An existing ``done`` row is
        returned untouched (the zero-compilation resubmission path); a
        ``failed`` row is re-queued with its error cleared; ``queued`` /
        ``dispatched`` rows are returned as-is (the caller piggybacks on
        the in-flight dispatch).
        """
        now = self._clock()
        with self._lock:
            self._begin()
            try:
                row = self._fetch(key)
                if row is None:
                    self._conn.execute(
                        "INSERT INTO jobs (key, tenant, status, request,"
                        " attempts, created, updated)"
                        " VALUES (?, ?, ?, ?, 0, ?, ?)",
                        (key, tenant, QUEUED, json.dumps(request), now, now),
                    )
                elif row["status"] == FAILED:
                    self._conn.execute(
                        "UPDATE jobs SET status = ?, error = NULL,"
                        " attempts = 0, updated = ? WHERE key = ?",
                        (QUEUED, now, key),
                    )
                self._conn.execute(
                    "INSERT INTO tenants (tenant, submitted, first_seen,"
                    " last_seen) VALUES (?, 1, ?, ?)"
                    " ON CONFLICT(tenant) DO UPDATE SET"
                    " submitted = submitted + 1, last_seen = excluded.last_seen",
                    (tenant, now, now),
                )
                self._commit("submit", key)
            except BaseException:
                self._rollback()
                raise
            return self._record(self._fetch(key))

    def claim(self, key: str) -> Optional[JobRecord]:
        """Move a ``queued`` job to ``dispatched`` (one attempt counted).

        Returns the claimed record, or None when the job is missing or
        already terminal (a restart replay racing a finished dispatch).
        Re-claiming a ``dispatched`` row is allowed — it is how a
        restarted gateway re-adopts a job that was in flight when the
        previous process died.
        """
        now = self._clock()
        with self._lock:
            self._begin()
            try:
                row = self._fetch(key)
                if row is None or row["status"] in (DONE, FAILED):
                    self._rollback()
                    return None
                self._conn.execute(
                    "UPDATE jobs SET status = ?, attempts = attempts + 1,"
                    " updated = ? WHERE key = ?",
                    (DISPATCHED, now, key),
                )
                self._commit("claim", key)
            except BaseException:
                self._rollback()
                raise
            return self._record(self._fetch(key))

    def complete(self, key: str, result: dict) -> None:
        """Record a job's result and mark it ``done`` (atomic)."""
        now = self._clock()
        with self._lock:
            self._begin()
            try:
                self._conn.execute(
                    "UPDATE jobs SET status = ?, result = ?, error = NULL,"
                    " updated = ? WHERE key = ?",
                    (DONE, json.dumps(result), now, key),
                )
                self._conn.execute(
                    "UPDATE tenants SET completed = completed + 1,"
                    " last_seen = ? WHERE tenant ="
                    " (SELECT tenant FROM jobs WHERE key = ?)",
                    (now, key),
                )
                self._commit("complete", key)
            except BaseException:
                self._rollback()
                raise

    def fail(self, key: str, error: dict) -> None:
        """Record a structured failure verdict and mark the job ``failed``."""
        now = self._clock()
        with self._lock:
            self._begin()
            try:
                self._conn.execute(
                    "UPDATE jobs SET status = ?, error = ?, updated = ?"
                    " WHERE key = ?",
                    (FAILED, json.dumps(error), now, key),
                )
                self._commit("fail", key)
            except BaseException:
                self._rollback()
                raise

    # -- reads --------------------------------------------------------------

    def get(self, key: str) -> Optional[JobRecord]:
        with self._lock:
            return self._record(self._fetch(key))

    def pending(self) -> List[JobRecord]:
        """Every non-terminal job, oldest first (the restart replay set)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE status IN (?, ?) ORDER BY created",
                PENDING_STATES,
            ).fetchall()
        return [self._record(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Job totals by status (zero-filled for the stable stats shape)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
            ).fetchall()
        counts = {status: 0 for status in (QUEUED, DISPATCHED, DONE, FAILED)}
        for row in rows:
            counts[row["status"]] = row["n"]
        return counts

    def tenants(self) -> Dict[str, Dict[str, float]]:
        """The persistent per-tenant session ledger."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM tenants ORDER BY tenant"
            ).fetchall()
        return {
            row["tenant"]: {
                "submitted": row["submitted"],
                "completed": row["completed"],
                "first_seen": row["first_seen"],
                "last_seen": row["last_seen"],
            }
            for row in rows
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- internals ----------------------------------------------------------

    def _begin(self) -> None:
        self._conn.execute("BEGIN IMMEDIATE")

    def _commit(self, op: str, key: str) -> None:
        if self._faults is not None:
            self._faults.before_commit(op, key)
        self._conn.execute("COMMIT")

    def _rollback(self) -> None:
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.OperationalError:
            pass  # no transaction active

    def _fetch(self, key: str):
        return self._conn.execute(
            "SELECT * FROM jobs WHERE key = ?", (key,)
        ).fetchone()

    @staticmethod
    def _record(row) -> Optional[JobRecord]:
        if row is None:
            return None
        return JobRecord(
            key=row["key"],
            tenant=row["tenant"],
            status=row["status"],
            request=json.loads(row["request"]),
            result=json.loads(row["result"]) if row["result"] else None,
            error=json.loads(row["error"]) if row["error"] else None,
            attempts=row["attempts"],
            created=row["created"],
            updated=row["updated"],
        )
