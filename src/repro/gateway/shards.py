"""Key-hash sharding of compile jobs across ``CompileService`` backends.

The gateway never compiles anything itself: every job is dispatched to
one of N backend compile services over the existing newline-JSON
protocol.  The shard a key lands on is a pure function of the key and
the *healthy* shard set — hot keys always hash to the same shard, so the
backend broker's coalescing keeps working across tenants, and when a
backend dies the router degrades to fewer shards (the same keys remap
deterministically onto the survivors) instead of failing requests.

Failure handling reuses the PR 6 client machinery: a
:class:`~repro.service.client.RetryPolicy` paces redispatch with
exponential backoff + full jitter, connection failures mark the shard
down immediately, and a background health loop pings downed shards and
re-admits them once they answer again.  ``force_down`` is the chaos /
test seam — it marks a shard dead *and severs its in-flight
connections*, which is what a SIGKILLed backend looks like from here.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..service import protocol
from ..service.client import RetryPolicy


class NoShardsError(RuntimeError):
    """Every backend shard is down; the job cannot be dispatched."""


@dataclass
class Shard:
    """One backend compile service and its health/dispatch bookkeeping."""

    index: int
    host: str
    port: int
    healthy: bool = True
    forced_down: bool = False
    dispatched: int = 0
    failures: int = 0
    writers: Set[asyncio.StreamWriter] = field(default_factory=set)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def sever(self) -> None:
        """Abort every in-flight connection to this shard (kill seam)."""
        for writer in list(self.writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()


class ShardRouter:
    """Routes job keys to healthy backend shards with retry + remap.

    Args:
        addresses: ``(host, port)`` per backend compile service.
        retry: backoff policy for redispatch (PR 6 semantics: full
            jitter, retries connection failures and the retryable
            protocol codes).
        rng / sleep: injection points for the backoff schedule — tests
            pass a seeded rng and a no-op async sleep.
        connect_timeout / request_timeout: per-dispatch bounds in
            seconds.
        health_interval: seconds between health-loop probe rounds.
    """

    def __init__(
        self,
        addresses: List[Tuple[str, int]],
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        sleep: Optional[Callable[[float], Any]] = None,
        connect_timeout: float = 5.0,
        request_timeout: float = 120.0,
        health_interval: float = 0.25,
    ) -> None:
        if not addresses:
            raise ValueError("shard router needs at least one backend")
        self.shards = [
            Shard(index=i, host=host, port=port)
            for i, (host, port) in enumerate(addresses)
        ]
        self.retry = retry if retry is not None else RetryPolicy()
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.health_interval = health_interval
        self.remaps = 0
        self._health_task: Optional[asyncio.Task] = None

    # -- routing ------------------------------------------------------------

    def healthy_shards(self) -> List[Shard]:
        return [shard for shard in self.shards if shard.healthy]

    def shard_for(self, key: str) -> Optional[Shard]:
        """The healthy shard owning ``key`` (None when all are down).

        Hashing the key over the *current healthy set* keeps the mapping
        deterministic for a fixed fleet state while letting the router
        degrade to fewer shards when backends die.
        """
        healthy = self.healthy_shards()
        if not healthy:
            return None
        return healthy[int(key[:16], 16) % len(healthy)]

    # -- dispatch -----------------------------------------------------------

    async def dispatch(self, key: str, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one compile request to the shard owning ``key``.

        Returns the backend's raw response dict (``ok`` true or false).
        Connection failures mark the shard down and redispatch onto the
        remapped owner after a jittered backoff; retryable error codes
        (``overloaded`` / ``timeout``) back off on the same shard.
        Raises :class:`NoShardsError` once every shard is down or the
        attempt budget is spent on connection failures.
        """
        last_exc: Optional[BaseException] = None
        for attempt in range(self.retry.attempts):
            shard = self.shard_for(key)
            if shard is None:
                raise NoShardsError(
                    "all backend shards are down"
                ) from last_exc
            try:
                response = await self._exchange(shard, message)
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                self._mark_down(shard)
                self.remaps += 1
                last_exc = exc
            else:
                shard.dispatched += 1
                if not response.get("ok"):
                    code = (response.get("error") or {}).get("code", "")
                    if (
                        self.retry.retries_error(code)
                        and attempt + 1 < self.retry.attempts
                    ):
                        await self._sleep(self.retry.delay(attempt, self._rng))
                        continue
                return response
            if attempt + 1 < self.retry.attempts:
                await self._sleep(self.retry.delay(attempt, self._rng))
        raise NoShardsError(
            f"dispatch of {key[:12]}... exhausted "
            f"{self.retry.attempts} attempts"
        ) from last_exc

    async def _exchange(
        self, shard: Shard, message: Dict[str, Any]
    ) -> Dict[str, Any]:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                shard.host, shard.port, limit=protocol.MAX_LINE_BYTES
            ),
            timeout=self.connect_timeout,
        )
        shard.writers.add(writer)
        try:
            if shard.forced_down:
                raise ConnectionError(f"shard {shard.index} is down")
            writer.write(protocol.encode_line(message))
            await writer.drain()
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.request_timeout
            )
            if not line:
                raise ConnectionError(
                    f"shard {shard.index} closed the connection"
                )
            return protocol.decode_line(line)
        finally:
            shard.writers.discard(writer)
            writer.close()

    def _mark_down(self, shard: Shard) -> None:
        shard.healthy = False
        shard.failures += 1
        shard.sever()

    # -- health -------------------------------------------------------------

    def force_down(self, index: int) -> None:
        """Chaos seam: treat shard ``index`` as SIGKILLed.

        The shard is marked unhealthy, its in-flight connections are
        aborted mid-frame, and the health loop will not re-admit it
        until :meth:`revive` clears the flag.
        """
        shard = self.shards[index]
        shard.forced_down = True
        self._mark_down(shard)

    def revive(self, index: int) -> None:
        """Allow the health loop to re-admit shard ``index``."""
        self.shards[index].forced_down = False

    async def ping(self, shard: Shard) -> bool:
        """One liveness probe against ``shard`` (never raises)."""
        try:
            response = await self._exchange(shard, {"op": "ping"})
        except (ConnectionError, OSError, asyncio.TimeoutError):
            return False
        return bool(response.get("ok"))

    async def health_loop(self) -> None:
        """Re-admit downed shards as their backends come back.

        Runs forever; the gateway cancels it on shutdown.  Forced-down
        shards (chaos seam) are skipped until revived.
        """
        while True:
            await asyncio.sleep(self.health_interval)
            for shard in self.shards:
                if shard.healthy or shard.forced_down:
                    continue
                if await self.ping(shard):
                    shard.healthy = True

    def start_health_loop(self) -> None:
        if self._health_task is None or self._health_task.done():
            self._health_task = asyncio.ensure_future(self.health_loop())

    async def stop(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        for shard in self.shards:
            shard.sever()

    # -- stats --------------------------------------------------------------

    def snapshot(self) -> List[Dict[str, Any]]:
        return [
            {
                "shard": shard.index,
                "address": shard.address,
                "healthy": shard.healthy,
                "dispatched": shard.dispatched,
                "failures": shard.failures,
            }
            for shard in self.shards
        ]
