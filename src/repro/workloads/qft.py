"""Quantum Fourier transform and multi-step Trotter workloads.

Extensions beyond the paper's Table I suite: the QFT is the canonical
rotation-heavy benchmark (every controlled-phase pair is two T-type
rotations after decomposition), and multi-step Trotter circuits extend the
single-step condensed-matter workloads the paper evaluates.
"""

from __future__ import annotations

import math
from typing import Callable

from ..ir.circuit import Circuit
from ..synthesis.decompositions import controlled_phase


def qft(num_qubits: int, include_swaps: bool = False) -> Circuit:
    """Textbook QFT over ``num_qubits`` wires.

    Controlled phases are pre-decomposed into the CX + Rz form the
    compiler schedules.  ``include_swaps`` appends the final bit-reversal
    swaps (often elided in practice).
    """
    if num_qubits < 1:
        raise ValueError("need at least one qubit")
    qc = Circuit(num_qubits, name=f"qft_{num_qubits}")
    for i in range(num_qubits):
        qc.h(i)
        for j in range(i + 1, num_qubits):
            qc.extend(controlled_phase(math.pi / 2 ** (j - i), j, i))
    if include_swaps:
        for i in range(num_qubits // 2):
            qc.swap(i, num_qubits - 1 - i)
    return qc


def trotterized(
    single_step: Callable[[int], Circuit], side: int, steps: int
) -> Circuit:
    """Repeat a single-Trotter-step builder ``steps`` times.

    The paper evaluates single steps; real simulations run many, which
    scales n_T linearly and stresses the factories proportionally.
    """
    if steps < 1:
        raise ValueError("need at least one Trotter step")
    base = single_step(side)
    qc = Circuit(base.num_qubits, name=f"{base.name}_x{steps}")
    for __ in range(steps):
        qc.extend(base.gates)
    return qc
