"""Heisenberg XXX model Trotter circuits on a 2D lattice.

Single Trotter step of ``H = J * sum_<ij> (X_i X_j + Y_i Y_j + Z_i Z_j)``.
Each edge contributes three two-qubit rotations:

* ``ZZ``: CX - Rz - CX                                  (2 CNOT, 1 Rz)
* ``XX``: (H ⊗ H) around a ZZ rotation                  (+4 H)
* ``YY``: (S†H ⊗ S†H) around a ZZ rotation              (+4 H, 2 S, 2 S†)

For the 10x10 lattice (180 edges) this reproduces Table I exactly:
H 1440, CNOT 1080, Rz 540, S 360, S† 360.
"""

from __future__ import annotations

import math

from ..ir.circuit import Circuit
from ..synthesis.decompositions import xx_rotation, yy_rotation, zz_rotation
from .ising import grid_edges

DEFAULT_ANGLE = math.pi / 9


def heisenberg_2d(side: int, angle: float = DEFAULT_ANGLE) -> Circuit:
    """Single Trotter step of the 2D Heisenberg model.

    Args:
        side: lattice side (paper sweeps 2..10).
        angle: rotation angle per two-body term (non-Clifford by default).
    """
    if side < 2:
        raise ValueError("need side >= 2")
    n = side * side
    qc = Circuit(n, name=f"heisenberg_2d_{side}x{side}")
    for a, b in grid_edges(side):
        qc.extend(xx_rotation(angle, a, b))
        qc.extend(yy_rotation(angle, a, b))
        qc.extend(zz_rotation(angle, a, b))
    return qc


def heisenberg_1d(n: int, angle: float = DEFAULT_ANGLE) -> Circuit:
    """Single Trotter step of the 1D Heisenberg chain."""
    if n < 2:
        raise ValueError("need n >= 2")
    qc = Circuit(n, name=f"heisenberg_1d_{n}")
    for i in range(n - 1):
        qc.extend(xx_rotation(angle, i, i + 1))
        qc.extend(yy_rotation(angle, i, i + 1))
        qc.extend(zz_rotation(angle, i, i + 1))
    return qc
