"""Fermi-Hubbard model Trotter circuits on a 2D lattice.

Single Trotter step of a spinless-fermion Hubbard layer in the
Jordan-Wigner picture restricted to disjoint term pairs (the standard
"brick" pattern that keeps every term nearest-neighbour on the lattice):

* **hopping** terms ``(X_i X_j + Y_i Y_j)/2`` on a set of disjoint
  horizontal bonds (one per site pair — ``side**2 / 2`` bonds);
* **interaction** terms ``Z_i Z_j`` on a set of disjoint vertical bonds.

For the 10x10 lattice (50 hopping + 50 interaction bonds) this reproduces
Table I exactly: H 400, CNOT 300, S 100, S† 100, Rz 150.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

from ..ir.circuit import Circuit
from ..synthesis.decompositions import xx_rotation, yy_rotation, zz_rotation

DEFAULT_HOP_ANGLE = math.pi / 6
DEFAULT_INT_ANGLE = math.pi / 10


def hopping_bonds(side: int) -> Iterator[Tuple[int, int]]:
    """Disjoint horizontal bonds: (2c, 2c+1) pairs in every row."""
    for r in range(side):
        for c in range(0, side - 1, 2):
            a = r * side + c
            yield (a, a + 1)


def interaction_bonds(side: int) -> Iterator[Tuple[int, int]]:
    """Disjoint vertical bonds: (2r, 2r+1) row pairs in every column."""
    for r in range(0, side - 1, 2):
        for c in range(side):
            a = r * side + c
            yield (a, a + side)


def fermi_hubbard_2d(
    side: int,
    hop_angle: float = DEFAULT_HOP_ANGLE,
    int_angle: float = DEFAULT_INT_ANGLE,
) -> Circuit:
    """Single Trotter step of the 2D Fermi-Hubbard brick layer.

    Args:
        side: lattice side (even values match the paper's sizes 2..10).
        hop_angle: rotation angle of each hopping term.
        int_angle: rotation angle of each interaction term.
    """
    if side < 2:
        raise ValueError("need side >= 2")
    n = side * side
    qc = Circuit(n, name=f"fermi_hubbard_2d_{side}x{side}")
    for a, b in hopping_bonds(side):
        qc.extend(xx_rotation(hop_angle, a, b))
        qc.extend(yy_rotation(hop_angle, a, b))
    for a, b in interaction_bonds(side):
        qc.extend(zz_rotation(int_angle, a, b))
    return qc


def fermi_hubbard_sizes() -> List[int]:
    """Lattice sides of the paper's scaling sweep."""
    return [2, 4, 6, 8, 10]
