"""Real arithmetic circuits: ripple-carry adder and shift-add multiplier.

These are exact, runnable constructions (CDKM majority/unmajority ripple
adder and a controlled-addition multiplier) expressed over Clifford+T via
the seven-T Toffoli decomposition.  They complement the Table-I-calibrated
QASMBench generators in :mod:`repro.workloads.qasmbench`: the fixed-count
generators reproduce the paper's exact benchmark sizes, while these scale
with operand width for broader studies.
"""

from __future__ import annotations

from typing import List

from ..ir.circuit import Circuit
from ..synthesis.decompositions import toffoli


def cdkm_adder(num_bits: int) -> Circuit:
    """CDKM ripple-carry adder: ``|a>|b> -> |a>|a+b>``.

    Register layout: qubit 0 is the incoming carry ancilla, qubits
    ``1..n`` hold ``b``, qubits ``n+1..2n`` hold ``a``, and qubit ``2n+1``
    receives the carry-out.  Total ``2*num_bits + 2`` qubits.

    Uses the MAJ / UMA ladder (Cuccaro-Draper-Kutin-Moulton 2004) with
    each Toffoli expanded into the seven-T decomposition.
    """
    if num_bits < 1:
        raise ValueError("need at least one bit")
    n = num_bits
    total = 2 * n + 2
    qc = Circuit(total, name=f"cdkm_adder_{n}bit")

    def a(i: int) -> int:
        return n + 1 + i

    def b(i: int) -> int:
        return 1 + i

    carry_in = 0
    carry_out = 2 * n + 1

    def maj(c: int, y: int, x: int) -> None:
        qc.cx(x, y)
        qc.cx(x, c)
        qc.extend(toffoli(c, y, x))

    def uma(c: int, y: int, x: int) -> None:
        qc.extend(toffoli(c, y, x))
        qc.cx(x, c)
        qc.cx(c, y)

    maj(carry_in, b(0), a(0))
    for i in range(1, n):
        maj(a(i - 1), b(i), a(i))
    qc.cx(a(n - 1), carry_out)
    for i in range(n - 1, 0, -1):
        uma(a(i - 1), b(i), a(i))
    uma(carry_in, b(0), a(0))
    return qc


def controlled_increment(control: int, targets: List[int], qc: Circuit) -> None:
    """Controlled +1 on a little-endian register via a Toffoli ladder."""
    # Propagate carries from the least significant bit upward.
    for i in range(len(targets) - 1, 0, -1):
        # target[i] flips when control and all lower bits are 1; we use a
        # linear ladder with the immediately-lower bit as the carry chain.
        qc.extend(toffoli(control, targets[i - 1], targets[i]))
    qc.cx(control, targets[0])


def shift_add_multiplier(num_bits: int) -> Circuit:
    """Schoolbook multiplier ``|a>|b>|0> -> |a>|b>|a*b mod 2^n>``.

    Register layout (total ``4n + 1`` qubits): ``a`` in ``0..n-1``, ``b``
    in ``n..2n-1``, the truncated product accumulator in ``2n..3n-1``, a
    ripple-carry register in ``3n..4n-1`` and one partial-product ancilla.
    Every partial product ``a_i AND b_j`` is computed into the ancilla with
    a Toffoli and added into the accumulator with standard full-adder
    cells (two Toffolis + two CNOTs per bit), then uncomputed.
    """
    if num_bits < 1:
        raise ValueError("need at least one bit")
    n = num_bits
    qc = Circuit(4 * n + 1, name=f"shift_add_multiplier_{n}bit")
    a = list(range(n))
    b = list(range(n, 2 * n))
    prod = list(range(2 * n, 3 * n))
    carry = list(range(3 * n, 4 * n))
    anc = 4 * n

    for i in range(n):
        for j in range(n - i):
            k = i + j
            qc.extend(toffoli(a[i], b[j], anc))  # anc = partial product bit
            # Full-adder ripple: add anc into prod[k..n-1] with carries.
            qc.extend(toffoli(anc, prod[k], carry[k]))
            qc.cx(anc, prod[k])
            for u in range(k + 1, n):
                qc.extend(toffoli(carry[u - 1], prod[u], carry[u]))
                qc.cx(carry[u - 1], prod[u])
            # Uncompute carries (truncated product drops the overflow).
            for u in range(n - 1, k, -1):
                qc.extend(toffoli(carry[u - 1], prod[u], carry[u]))
            qc.extend(toffoli(anc, prod[k], carry[k]))
            qc.extend(toffoli(a[i], b[j], anc))  # uncompute the ancilla
    return qc


def adder(num_bits: int) -> Circuit:
    """Alias for :func:`cdkm_adder` (the default adder construction)."""
    return cdkm_adder(num_bits)
