"""Benchmark workload generators (paper Table I plus parametric extras)."""

from .arithmetic import cdkm_adder, shift_add_multiplier
from .fermi_hubbard import fermi_hubbard_2d
from .ghz import ghz_fanout, ghz_qasmbench
from .heisenberg import heisenberg_1d, heisenberg_2d
from .ising import ising_1d, ising_2d
from .qasmbench import ADDER_N28, MULTIPLIER_N15, adder_n28, multiplier_n15
from .random_programs import (
    random_mixed_stream,
    random_qaoa_layers,
    random_rotation_layers,
)
from .registry import (
    CONDENSED_MATTER_SIDES,
    benchmark_names,
    condensed_matter_suite,
    load_benchmark,
    paper_table1_benchmarks,
)

__all__ = [
    "ADDER_N28",
    "CONDENSED_MATTER_SIDES",
    "MULTIPLIER_N15",
    "adder_n28",
    "benchmark_names",
    "cdkm_adder",
    "condensed_matter_suite",
    "fermi_hubbard_2d",
    "ghz_fanout",
    "ghz_qasmbench",
    "heisenberg_1d",
    "heisenberg_2d",
    "ising_1d",
    "ising_2d",
    "load_benchmark",
    "multiplier_n15",
    "paper_table1_benchmarks",
    "random_mixed_stream",
    "random_qaoa_layers",
    "random_rotation_layers",
    "shift_add_multiplier",
]
