"""Table-I-calibrated QASMBench benchmark generators.

The paper's non-condensed-matter benchmarks come from QASMBench [26]:
``adder_n28`` (Rz 240, CNOT 195, SX 48, X 13) and a 15-qubit multiplier
(Rz 300, CNOT 222, SX 34, X 4), both already lowered to the IBM basis
(rz/sx/x/cx) where Toffoli ladders appear as rz/cx sequences.  We cannot
ship the original QASM files offline, so these generators emit circuits
with *exactly* the published gate counts and the ripple/ladder dependency
structure of the originals (nearest-neighbour CX chains with interleaved
rotations) — the properties the scheduler's behaviour depends on.
DESIGN.md records this substitution; :mod:`repro.workloads.arithmetic`
provides exact arithmetic constructions as a cross-check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..ir.circuit import Circuit

#: rotation angles cycled through the generated Rz gates.  All are odd
#: multiples of pi/4, i.e. genuine T-type rotations (one magic state each),
#: matching the Toffoli-ladder angles of the lowered originals.
_ANGLE_CYCLE = (math.pi / 4, -math.pi / 4, 3 * math.pi / 4, -3 * math.pi / 4)


@dataclass(frozen=True)
class GateBudget:
    """Exact gate counts a generated circuit must hit."""

    rz: int
    cx: int
    sx: int
    x: int

    @property
    def total(self) -> int:
        return self.rz + self.cx + self.sx + self.x


#: published Table I counts.
ADDER_N28 = GateBudget(rz=240, cx=195, sx=48, x=13)
MULTIPLIER_N15 = GateBudget(rz=300, cx=222, sx=34, x=4)


def _ladder_circuit(num_qubits: int, budget: GateBudget, name: str) -> Circuit:
    """Emit a ripple-ladder circuit hitting ``budget`` exactly.

    The emission pattern mimics a lowered Toffoli ladder: walk the
    nearest-neighbour chain; at each step place ``rz (cx rz)`` groups so
    rotations sandwich the entangling gates, sprinkling ``sx``/``x`` at the
    block boundaries — the same local structure (and hence DAG shape) as
    the IBM-basis originals.
    """
    qc = Circuit(num_qubits, name=name)
    remaining = {"rz": budget.rz, "cx": budget.cx, "sx": budget.sx, "x": budget.x}
    angle_idx = 0
    edge = 0
    qubit = 0
    step = 0

    def put_rz(q: int) -> None:
        nonlocal angle_idx
        qc.rz(_ANGLE_CYCLE[angle_idx % len(_ANGLE_CYCLE)], q)
        angle_idx += 1
        remaining["rz"] -= 1

    while any(remaining.values()):
        a = edge % (num_qubits - 1)
        b = a + 1
        if remaining["rz"]:
            put_rz(a)
        if remaining["cx"]:
            qc.cx(a, b)
            remaining["cx"] -= 1
        if remaining["rz"]:
            put_rz(b)
        if remaining["sx"] and step % 3 == 0:
            qc.sx(qubit % num_qubits)
            remaining["sx"] -= 1
            qubit += 1
        if remaining["x"] and step % 17 == 0:
            qc.x((qubit + 5) % num_qubits)
            remaining["x"] -= 1
        if remaining["cx"] and step % 2 == 1:
            qc.cx(b, a)
            remaining["cx"] -= 1
        edge += 1
        step += 1
    return qc


def adder_n28() -> Circuit:
    """28-qubit QASMBench-style ripple adder (Table I counts)."""
    return _ladder_circuit(28, ADDER_N28, "adder_n28")


def multiplier_n15() -> Circuit:
    """15-qubit QASMBench-style multiplier (Table I counts)."""
    return _ladder_circuit(15, MULTIPLIER_N15, "multiplier_n15")


def verify_budget(circuit: Circuit, budget: GateBudget) -> bool:
    """Check that a generated circuit hits its budget exactly."""
    counts: Dict[str, int] = circuit.gate_counts()
    return (
        counts.get("rz", 0) == budget.rz
        and counts.get("cx", 0) == budget.cx
        and counts.get("sx", 0) == budget.sx
        and counts.get("x", 0) == budget.x
    )
