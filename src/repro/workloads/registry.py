"""Benchmark registry: the paper's 18-program suite by name.

The suite (Sec. VI-A): three condensed-matter models at five sizes each
(4, 16, 36, 64, 100 qubits — single Trotter steps), plus GHZ-255 and the
two arithmetic circuits.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..ir.circuit import Circuit
from .fermi_hubbard import fermi_hubbard_2d
from .ghz import ghz_qasmbench
from .heisenberg import heisenberg_2d
from .ising import ising_2d
from .qasmbench import adder_n28, multiplier_n15

#: lattice sides for the condensed-matter scaling sweep.
CONDENSED_MATTER_SIDES = [2, 4, 6, 8, 10]

#: factory functions for every named benchmark.
_FACTORIES: Dict[str, Callable[[], Circuit]] = {}


def _register_suite() -> None:
    for side in CONDENSED_MATTER_SIDES:
        _FACTORIES[f"ising_2d_{side}x{side}"] = (
            lambda s=side: ising_2d(s)
        )
        _FACTORIES[f"heisenberg_2d_{side}x{side}"] = (
            lambda s=side: heisenberg_2d(s)
        )
        _FACTORIES[f"fermi_hubbard_2d_{side}x{side}"] = (
            lambda s=side: fermi_hubbard_2d(s)
        )
    _FACTORIES["ghz_n255"] = lambda: ghz_qasmbench(255)
    _FACTORIES["adder_n28"] = adder_n28
    _FACTORIES["multiplier_n15"] = multiplier_n15


_register_suite()


def benchmark_names() -> List[str]:
    """All 18 benchmark identifiers, deterministic order."""
    return list(_FACTORIES)


def load_benchmark(name: str) -> Circuit:
    """Instantiate a benchmark circuit by name."""
    try:
        return _FACTORIES[name]()
    except KeyError as exc:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(_FACTORIES)}"
        ) from exc


def paper_table1_benchmarks() -> List[Circuit]:
    """The six rows of Table I (max-size representatives)."""
    return [
        load_benchmark("ising_2d_10x10"),
        load_benchmark("heisenberg_2d_10x10"),
        load_benchmark("fermi_hubbard_2d_10x10"),
        load_benchmark("ghz_n255"),
        load_benchmark("adder_n28"),
        load_benchmark("multiplier_n15"),
    ]


def condensed_matter_suite(model: str) -> List[Circuit]:
    """All five sizes of one condensed-matter model."""
    builders = {
        "ising": ising_2d,
        "heisenberg": heisenberg_2d,
        "fermi_hubbard": fermi_hubbard_2d,
    }
    if model not in builders:
        raise KeyError(f"unknown model {model!r}")
    return [builders[model](side) for side in CONDENSED_MATTER_SIDES]
