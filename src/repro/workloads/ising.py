"""Transverse-field Ising model Trotter circuits (1D chain and 2D grid).

Single first-order Trotter step of
``H = -J * sum_<ij> Z_i Z_j - h * sum_i X_i``:

* an initial Hadamard layer preparing ``|+>^n`` (the standard start state
  for quench dynamics);
* one ZZ rotation (CX-Rz-CX) per lattice edge;
* the transverse field as ``H Rz H`` on every site.

For the 10x10 lattice this reproduces the paper's Table I gate counts
exactly: CNOT 360 (2 per each of the 180 edges), Rz 280 (180 edge + 100
field rotations), H 300 (100 initial + 200 field basis changes).
"""

from __future__ import annotations

import math
from typing import Iterator, List, Tuple

from ..ir.circuit import Circuit
from ..synthesis.decompositions import zz_rotation

#: non-Clifford default angles (arbitrary generic Trotter step values).
DEFAULT_J_ANGLE = math.pi / 7
DEFAULT_H_ANGLE = math.pi / 5


def grid_edges(side: int) -> Iterator[Tuple[int, int]]:
    """Nearest-neighbour edges of a ``side x side`` square lattice.

    Sites are numbered row-major; horizontal edges first within each row,
    then vertical edges between rows, matching the order the Hamiltonian
    terms are usually Trotterised in.
    """
    for r in range(side):
        for c in range(side - 1):
            a = r * side + c
            yield (a, a + 1)
    for r in range(side - 1):
        for c in range(side):
            a = r * side + c
            yield (a, a + side)


def chain_edges(n: int) -> Iterator[Tuple[int, int]]:
    """Edges of an open 1D chain."""
    for i in range(n - 1):
        yield (i, i + 1)


def ising_2d(
    side: int,
    j_angle: float = DEFAULT_J_ANGLE,
    h_angle: float = DEFAULT_H_ANGLE,
    initial_layer: bool = True,
) -> Circuit:
    """Single Trotter step of the 2D transverse-field Ising model.

    Args:
        side: lattice side (paper sweeps 2..10, i.e. 4..100 qubits).
        j_angle: ZZ coupling rotation angle (non-Clifford by default).
        h_angle: transverse-field rotation angle.
        initial_layer: include the |+> preparation Hadamards (Table I's
            counts include them).
    """
    if side < 2:
        raise ValueError("need side >= 2")
    n = side * side
    qc = Circuit(n, name=f"ising_2d_{side}x{side}")
    if initial_layer:
        for q in range(n):
            qc.h(q)
    for a, b in grid_edges(side):
        qc.extend(zz_rotation(j_angle, a, b))
    for q in range(n):
        qc.h(q)
        qc.rz(h_angle, q)
        qc.h(q)
    return qc


def ising_1d(
    n: int,
    j_angle: float = DEFAULT_J_ANGLE,
    h_angle: float = DEFAULT_H_ANGLE,
    initial_layer: bool = True,
) -> Circuit:
    """Single Trotter step of the 1D transverse-field Ising chain."""
    if n < 2:
        raise ValueError("need n >= 2")
    qc = Circuit(n, name=f"ising_1d_{n}")
    if initial_layer:
        for q in range(n):
            qc.h(q)
    for a, b in chain_edges(n):
        qc.extend(zz_rotation(j_angle, a, b))
    for q in range(n):
        qc.h(q)
        qc.rz(h_angle, q)
        qc.h(q)
    return qc


def ising_sizes() -> List[int]:
    """Lattice sides used in the paper's scaling study (4..100 qubits)."""
    return [2, 4, 6, 8, 10]
