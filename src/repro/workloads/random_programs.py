"""Seeded random program families (fuzzing inputs and stress workloads).

The paper's 18-benchmark suite exercises the compiler on *structured*
programs; the fuzzing subsystem (:mod:`repro.fuzz`) needs unstructured ones
whose shape varies wildly while staying valid by construction.  Both
families here are deterministic in their ``seed`` and stable across Python
versions (they draw from a local xorshift-style generator rather than
:mod:`random`, following :func:`repro.ir.circuit.random_clifford_t`).

``random_mixed_stream``
    A flat gate stream over the full front-end gate set — Cliffords,
    T/Tdg, Rz/Rx (tidy pi/4-multiples and generic angles), CX/CZ/SWAP —
    with optional scheduling barriers and a trailing measurement block.
``random_rotation_layers``
    PPR-style programs: alternating layers of single-qubit rotations and
    a brick pattern of entanglers, the shape Pauli-product-rotation
    pipelines (Litinski normal form) produce.
``random_qaoa_layers``
    QAOA ansätze over random problem graphs: per layer a cost block of
    ZZ interactions (CX - Rz - CX) over the graph's edges followed by a
    transverse mixer (Rx on every qubit).  The interaction graph — not
    just the angles — varies with the seed, so delivery pressure and
    CNOT congestion differ per instance.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from ..ir import gates as g
from ..ir.circuit import Circuit

#: rotation angles used by the random families: Clifford multiples, exact
#: Clifford+T multiples, and generic angles that exercise the synthesis
#: accounting (non-multiples of pi/4).
ROTATION_ANGLES = (
    math.pi / 2,
    -math.pi / 2,
    math.pi,
    math.pi / 4,
    -math.pi / 4,
    3 * math.pi / 4,
    7 * math.pi / 4,
    math.pi / 8,
    0.3,
    -1.234567,
    2 * math.pi,
)


def _make_rng(seed: int) -> Callable[[int], int]:
    """A tiny deterministic generator: ``draw(n)`` yields ints in [0, n)."""
    state = (seed * 2654435761 + 0x9E3779B9) & 0xFFFFFFFFFFFFFFFF

    def draw(n: int) -> int:
        nonlocal state
        # xorshift64* — stable across platforms, good enough for fuzzing
        state ^= (state >> 12) & 0xFFFFFFFFFFFFFFFF
        state = (state ^ (state << 25)) & 0xFFFFFFFFFFFFFFFF
        state ^= state >> 27
        return ((state * 0x2545F4914F6CDD1D) >> 32) % n

    return draw


def random_mixed_stream(
    num_qubits: int,
    num_gates: int,
    seed: int = 0,
    barrier_every: Optional[int] = None,
    measure_tail: bool = False,
    name: Optional[str] = None,
) -> Circuit:
    """A flat random program over the full supported gate set.

    Args:
        num_qubits: register width (>= 2).
        num_gates: gates to emit (barriers and measurements come on top).
        seed: deterministic generator seed.
        barrier_every: insert a whole-register barrier after every this
            many gates (None: no barriers).
        measure_tail: end with a measurement of every qubit.
        name: circuit name (defaults to a seed-derived one).
    """
    if num_qubits < 2:
        raise ValueError("random programs need at least two qubits")
    if num_gates < 0:
        raise ValueError("negative gate count")
    draw = _make_rng(seed)
    qc = Circuit(
        num_qubits, name=name or f"mixed_{num_qubits}q_{num_gates}g_s{seed}"
    )
    one_qubit = [g.h, g.s, g.sdg, g.x, g.y, g.z, g.sx, g.t, g.tdg]
    for i in range(num_gates):
        roll = draw(100)
        a = draw(num_qubits)
        if roll < 30:  # two-qubit gate
            b = draw(num_qubits - 1)
            if b >= a:
                b += 1
            two = draw(10)
            if two < 6:
                qc.cx(a, b)
            elif two < 9:
                qc.cz(a, b)
            else:
                qc.swap(a, b)
        elif roll < 50:  # rotation (tidy or generic angle)
            theta = ROTATION_ANGLES[draw(len(ROTATION_ANGLES))]
            if draw(2):
                qc.rz(theta, a)
            else:
                qc.rx(theta, a)
        else:  # plain one-qubit gate
            qc.append(one_qubit[draw(len(one_qubit))](a))
        if barrier_every and (i + 1) % barrier_every == 0 and i + 1 < num_gates:
            qc.barrier()
    if measure_tail:
        qc.measure_all()
    return qc


def random_rotation_layers(
    num_qubits: int,
    num_layers: int,
    seed: int = 0,
    rotation_fraction: float = 0.7,
    barrier_between: bool = False,
    name: Optional[str] = None,
) -> Circuit:
    """A PPR-style layered program: rotations then a brick of entanglers.

    Each layer rotates a random subset of qubits (Rz or Rx, angles from
    :data:`ROTATION_ANGLES`) and then entangles alternating neighbour
    pairs — the dependency shape a transpiled Pauli-product-rotation
    sequence presents to the scheduler.

    Args:
        num_qubits: register width (>= 2).
        num_layers: rotation/entangler layer count.
        seed: deterministic generator seed.
        rotation_fraction: probability each qubit is rotated in a layer.
        barrier_between: serialise layers with whole-register barriers.
        name: circuit name (defaults to a seed-derived one).
    """
    if num_qubits < 2:
        raise ValueError("random programs need at least two qubits")
    if num_layers < 0:
        raise ValueError("negative layer count")
    if not 0.0 <= rotation_fraction <= 1.0:
        raise ValueError("rotation_fraction must lie in [0, 1]")
    draw = _make_rng(seed ^ 0x5EED)
    qc = Circuit(
        num_qubits, name=name or f"layers_{num_qubits}q_{num_layers}l_s{seed}"
    )
    threshold = int(rotation_fraction * 1000)
    for layer in range(num_layers):
        for q in range(num_qubits):
            if draw(1000) < threshold:
                theta = ROTATION_ANGLES[draw(len(ROTATION_ANGLES))]
                if draw(2):
                    qc.rz(theta, q)
                else:
                    qc.rx(theta, q)
        offset = layer % 2
        for q in range(offset, num_qubits - 1, 2):
            qc.cx(q, q + 1)
        if barrier_between and layer + 1 < num_layers:
            qc.barrier()
    return qc


def random_qaoa_layers(
    num_qubits: int,
    num_layers: int,
    seed: int = 0,
    edge_fraction: float = 0.5,
    name: Optional[str] = None,
) -> Circuit:
    """A QAOA ansatz over a random problem graph.

    Each layer applies the cost Hamiltonian — one ZZ interaction
    (CX, Rz(gamma), CX) per edge of a seed-drawn graph — and then the
    transverse-field mixer (Rx(beta) on every qubit).  The graph is
    sampled once and shared by all layers, as in real QAOA: the same
    qubit pairs contend for alignment every layer, which is exactly the
    repeated-interaction pressure the benchmark suite's Trotter circuits
    show and flat random streams do not.

    Args:
        num_qubits: register width (>= 2).
        num_layers: QAOA depth p (cost + mixer repetitions).
        seed: deterministic generator seed.
        edge_fraction: fraction of all qubit pairs included as edges (at
            least a spanning path is always kept so no qubit idles).
        name: circuit name (defaults to a seed-derived one).
    """
    if num_qubits < 2:
        raise ValueError("random programs need at least two qubits")
    if num_layers < 0:
        raise ValueError("negative layer count")
    if not 0.0 <= edge_fraction <= 1.0:
        raise ValueError("edge_fraction must lie in [0, 1]")
    draw = _make_rng(seed ^ 0xA0A0)
    qc = Circuit(
        num_qubits, name=name or f"qaoa_{num_qubits}q_{num_layers}p_s{seed}"
    )
    # Problem graph: a spanning path (connectivity floor) plus extra pairs.
    edges = [(q, q + 1) for q in range(num_qubits - 1)]
    extra = [
        (a, b)
        for a in range(num_qubits)
        for b in range(a + 2, num_qubits)
    ]
    threshold = int(edge_fraction * 1000)
    edges.extend(pair for pair in extra if draw(1000) < threshold)
    for _ in range(num_layers):
        gamma = ROTATION_ANGLES[draw(len(ROTATION_ANGLES))]
        for a, b in edges:
            qc.cx(a, b)
            qc.rz(gamma, b)
            qc.cx(a, b)
        beta = ROTATION_ANGLES[draw(len(ROTATION_ANGLES))]
        for q in range(num_qubits):
            qc.rx(beta, q)
    return qc


def family_names() -> List[str]:
    """The random program family identifiers (for docs and the fuzzer)."""
    return ["mixed-stream", "rotation-layers", "qaoa-layers"]
