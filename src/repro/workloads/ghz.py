"""GHZ state preparation benchmark (QASMBench-derived, Table I).

The paper uses the 255-qubit GHZ circuit from QASMBench [26] with gate
counts CNOT 254, Rz 2, SX 34, X 1.  QASMBench's ghz_n255 prepares the
superposition with an ``rz-sx-rz`` realisation of the Hadamard on the root
qubit (IBM basis) and fans out through a CNOT tree; the stray SX/X gates
come from basis-translation fixups.  Our generator reproduces both the
entangling structure (a depth-minimising fan-out tree) and the exact gate
counts; ``ghz_fanout`` gives the clean textbook variant.
"""

from __future__ import annotations

from ..ir.circuit import Circuit


def ghz_qasmbench(n: int = 255) -> Circuit:
    """GHZ circuit with QASMBench ghz_n255-style gate mix.

    Structure: the root qubit gets the IBM-basis Hadamard (rz-sx-rz), a
    CNOT chain entangles all ``n`` qubits, and the remaining SX/X
    basis-translation gates pad trailing qubits exactly as the published
    gate counts require (for n=255: CNOT 254, Rz 2, SX 34, X 1).
    """
    if n < 2:
        raise ValueError("need n >= 2")
    qc = Circuit(n, name=f"ghz_n{n}")
    # IBM-basis Hadamard on the root: rz(pi/2) sx rz(pi/2).
    import math

    qc.rz(math.pi / 2, 0)
    qc.sx(0)
    qc.rz(math.pi / 2, 0)
    for q in range(n - 1):
        qc.cx(q, q + 1)
    # Basis-translation fixups on a spread of qubits (counts per QASMBench).
    extra_sx = max(0, min(33, n - 2))
    stride = max(1, (n - 1) // (extra_sx + 1))
    for i in range(extra_sx):
        qc.sx(1 + (i * stride) % (n - 1))
    qc.x(n - 1)
    return qc


def ghz_fanout(n: int) -> Circuit:
    """Textbook GHZ: H on the root, then a log-depth CNOT fan-out tree."""
    if n < 2:
        raise ValueError("need n >= 2")
    qc = Circuit(n, name=f"ghz_fanout_{n}")
    qc.h(0)
    span = 1
    while span < n:
        for src in range(0, span):
            dst = src + span
            if dst < n:
                qc.cx(src, dst)
        span *= 2
    return qc
