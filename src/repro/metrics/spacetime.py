"""Spacetime-volume and efficiency metrics (paper Sec. VI-VII)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


def spacetime_volume(qubits: int, execution_time: float) -> float:
    """Qubits x time, the paper's primary space-time cost metric."""
    if qubits < 0 or execution_time < 0:
        raise ValueError("qubits and time must be non-negative")
    return qubits * execution_time


def spacetime_volume_per_op(
    qubits: int, execution_time: float, num_operations: int
) -> float:
    """Spacetime volume normalised by input operation count (Fig. 9)."""
    return spacetime_volume(qubits, execution_time) / max(1, num_operations)


def cycles_per_instruction(execution_time: float, num_operations: int) -> float:
    """CPI (Fig. 13/14): total time over input instruction count."""
    return execution_time / max(1, num_operations)


def quality_denominator(lower_bound: float, floor: float = 1.0) -> float:
    """A safe divisor for quality ratios built on the Eq. 2 bound.

    Clifford-only circuits consume no magic states, so their distillation
    lower bound is 0 — a degenerate denominator that used to make
    :func:`overhead_factor` report a flat 1.0 regardless of how long the
    schedule actually ran.  Quality tracking needs a *defined* ratio that
    still moves when the schedule regresses, so degenerate bounds fall
    back to ``floor`` (one code-cycle unit d by default): the ratio then
    degrades gracefully to "time per d" instead of lying.
    """
    if floor <= 0:
        raise ValueError("floor must be positive")
    return lower_bound if lower_bound > 0 else floor


def overhead_factor(execution_time: float, lower_bound: float) -> float:
    """Execution time relative to the Eq. 2 distillation bound.

    For degenerate (Clifford-only) bounds the denominator falls back to
    :func:`quality_denominator`'s floor of 1 d, so the factor stays
    proportional to execution time instead of pinning at 1.0.
    """
    return execution_time / quality_denominator(lower_bound)


def qubit_reduction(ours: int, baseline: int) -> float:
    """Fractional qubit saving vs a baseline (the paper's headline 53 %)."""
    if baseline <= 0:
        raise ValueError("baseline qubit count must be positive")
    return 1.0 - ours / baseline


@dataclass(frozen=True)
class ComparisonSummary:
    """One ours-vs-baseline comparison row.

    Attributes:
        benchmark: circuit name.
        baseline_name: which baseline.
        qubit_reduction: fractional qubit saving (positive = we use fewer).
        time_overhead: our time / baseline time.
        spacetime_ratio: baseline spacetime volume / ours (>1 = we win).
    """

    benchmark: str
    baseline_name: str
    qubit_reduction: float
    time_overhead: float
    spacetime_ratio: float


def compare(
    benchmark: str,
    baseline_name: str,
    our_qubits: int,
    our_time: float,
    base_qubits: int,
    base_time: float,
    our_factory_qubits: int = 0,
    base_factory_qubits: int = 0,
    include_factories: bool = True,
) -> ComparisonSummary:
    """Build a :class:`ComparisonSummary` from raw numbers."""
    oq = our_qubits + (our_factory_qubits if include_factories else 0)
    bq = base_qubits + (base_factory_qubits if include_factories else 0)
    ours_stv = spacetime_volume(oq, our_time)
    base_stv = spacetime_volume(bq, base_time)
    return ComparisonSummary(
        benchmark=benchmark,
        baseline_name=baseline_name,
        qubit_reduction=qubit_reduction(our_qubits, base_qubits),
        time_overhead=(our_time / base_time) if base_time > 0 else float("inf"),
        spacetime_ratio=(base_stv / ours_stv) if ours_stv > 0 else float("inf"),
    )


def geometric_mean(values) -> Optional[float]:
    """Geometric mean, None for empty input — used for averaged ratios."""
    values = [v for v in values if v > 0]
    if not values:
        return None
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
