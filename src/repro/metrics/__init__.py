"""Metrics and report rendering."""

from .report import Table, combine
from .spacetime import (
    ComparisonSummary,
    compare,
    cycles_per_instruction,
    geometric_mean,
    overhead_factor,
    qubit_reduction,
    spacetime_volume,
    spacetime_volume_per_op,
)

__all__ = [
    "ComparisonSummary",
    "Table",
    "combine",
    "compare",
    "cycles_per_instruction",
    "geometric_mean",
    "overhead_factor",
    "qubit_reduction",
    "spacetime_volume",
    "spacetime_volume_per_op",
]
