"""Evaluation metrics and report rendering.

:mod:`~repro.metrics.spacetime` computes the paper's figures of merit
(spacetime volume, cycles-per-instruction, overhead factors, geometric
means over benchmark suites); :mod:`~repro.metrics.report` renders the
aligned text tables every experiment and the CLI print.
"""

from .report import Table, combine
from .spacetime import (
    ComparisonSummary,
    compare,
    cycles_per_instruction,
    geometric_mean,
    overhead_factor,
    quality_denominator,
    qubit_reduction,
    spacetime_volume,
    spacetime_volume_per_op,
)

__all__ = [
    "ComparisonSummary",
    "Table",
    "combine",
    "compare",
    "cycles_per_instruction",
    "geometric_mean",
    "overhead_factor",
    "quality_denominator",
    "qubit_reduction",
    "spacetime_volume",
    "spacetime_volume_per_op",
]
