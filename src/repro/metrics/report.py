"""Plain-text table rendering for experiment outputs.

Every experiment module produces a :class:`Table`; the benchmark harness
prints them so each paper table/figure has a textual analogue that can be
diffed across runs and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class Table:
    """A titled grid of results.

    Attributes:
        title: heading (e.g. "Figure 9 — Ising 10x10").
        columns: ordered column names.
        rows: list of dicts keyed by column name.
        notes: free-form caption lines (expected shape, parameters).
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; unknown keys raise to catch typos early."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}")
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row.get(name) for row in self.rows]

    # -- rendering ---------------------------------------------------------

    @staticmethod
    def _fmt(value: Any) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 10:
                return f"{value:.1f}"
            return f"{value:.3g}"
        return str(value)

    def to_text(self) -> str:
        """Fixed-width table rendering."""
        header = list(self.columns)
        body = [[self._fmt(row.get(c)) for c in header] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for r in body:
            lines.append("  ".join(r[i].rjust(widths[i]) for i in range(len(header))))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (header + rows)."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns)
        writer.writeheader()
        for row in self.rows:
            writer.writerow({c: row.get(c, "") for c in self.columns})
        return buffer.getvalue()

    def __str__(self) -> str:
        return self.to_text()


def combine(tables: Sequence[Table], title: Optional[str] = None) -> str:
    """Render several tables separated by blank lines."""
    parts = [t.to_text() for t in tables]
    if title:
        parts.insert(0, title)
    return "\n\n".join(parts)
