"""repro — Space-Time Optimisations for Early Fault-Tolerant Quantum Computation.

A from-scratch reproduction of the CGO 2026 paper by Sharma & Murali: a
lattice-surgery compiler for early fault-tolerant quantum computers with
distillation-adaptive layouts and greedy routing heuristics, plus every
substrate and baseline its evaluation depends on.

Quickstart::

    from repro import compile_circuit
    from repro.workloads import ising_2d

    result = compile_circuit(ising_2d(4), routing_paths=4, num_factories=1)
    print(result.summary())
"""

from .arch import InstructionSet, Layout, build_layout
from .compiler import CompilationResult, CompilerConfig, FaultTolerantCompiler, compile_circuit
from .ir import Circuit, DagCircuit, Gate
from .synthesis import PauliString, SynthesisModel, transpile_to_ppr

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "CompilationResult",
    "CompilerConfig",
    "DagCircuit",
    "FaultTolerantCompiler",
    "Gate",
    "InstructionSet",
    "Layout",
    "PauliString",
    "SynthesisModel",
    "build_layout",
    "compile_circuit",
    "transpile_to_ppr",
    "__version__",
]
