"""repro — Space-Time Optimisations for Early Fault-Tolerant Quantum Computation.

A from-scratch reproduction of the CGO 2026 paper by Sharma & Murali: a
lattice-surgery compiler for early fault-tolerant quantum computers with
distillation-adaptive layouts and greedy routing heuristics, plus every
substrate and baseline its evaluation depends on.

The packages stack into a pipeline (see ``docs/architecture.md`` for the
full tour): :mod:`~repro.ir` and :mod:`~repro.synthesis` form the
front-end, :mod:`~repro.arch` the hardware substrate, :mod:`~repro.routing`
and :mod:`~repro.scheduling` the back-end, :mod:`~repro.compiler` the
driver that ties them together.  Above the single-compile pipeline sit
:mod:`~repro.verify` (independent replay validation), :mod:`~repro.sweep`
(deduped, cached, parallel compile grids) and :mod:`~repro.service` (the
long-lived multi-client compile endpoint behind ``repro serve``).

Quickstart::

    from repro import compile_circuit
    from repro.workloads import ising_2d

    result = compile_circuit(ising_2d(4), routing_paths=4, num_factories=1)
    print(result.summary())
"""

from .arch import InstructionSet, Layout, build_layout
from .compiler import CompilationResult, CompilerConfig, FaultTolerantCompiler, compile_circuit
from .ir import Circuit, DagCircuit, Gate
from .synthesis import PauliString, SynthesisModel, transpile_to_ppr

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "CompilationResult",
    "CompilerConfig",
    "DagCircuit",
    "FaultTolerantCompiler",
    "Gate",
    "InstructionSet",
    "Layout",
    "PauliString",
    "SynthesisModel",
    "build_layout",
    "compile_circuit",
    "transpile_to_ppr",
    "__version__",
]
