"""Command-line interface.

Usage::

    python -m repro compile program.qasm --routing-paths 4 --factories 1
    python -m repro benchmark ising_2d_4x4 -r 3 -r 6
    python -m repro experiment fig9 --fast --jobs 4
    python -m repro experiment all --fast
    python -m repro serve --jobs 4 --cache-dir ~/.cache/repro/sweep
    python -m repro fuzz --seed 0 --iterations 200 --jobs 4
    python -m repro chaos --seed 0 --scenarios 200
    python -m repro list

The CLI is intentionally thin: it parses arguments, calls the library and
prints the same text tables the experiment harness produces.  Experiment
sweeps run through the :mod:`repro.sweep` engine: compile points shared
across figures are deduped, misses fan out over ``--jobs`` processes, and
results persist in a content-addressed cache (``--cache-dir``, disabled by
``--no-cache``) so re-running a figure after a no-op change is near
instant.  ``repro serve`` keeps the same engine alive as a long-lived TCP
compile service (see :mod:`repro.service`), and ``repro service-bench``
measures its throughput into ``BENCH_service.json``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .compiler.config import CompilerConfig
from .compiler.pipeline import FaultTolerantCompiler
from .experiments import ALL_EXPERIMENTS, collect_jobs
from .ir import qasm
from .ir.passes import optimize
from .metrics.report import Table
from .perf import BENCH_FILENAME, BENCH_SERVICE_FILENAME
from .perf.service_bench import (
    run_service_bench,
    service_report_text,
    write_service_report,
)
from .perf.cache_bench import BENCH_CACHE_FILENAME
from .gateway import DEFAULT_GATEWAY_PORT as GATEWAY_DEFAULT_PORT
from .service import DEFAULT_MAX_PENDING, run_server
from .service import DEFAULT_CACHE_PORT as CACHE_DEFAULT_PORT
from .service import DEFAULT_PORT as SERVICE_DEFAULT_PORT
from .sweep import CompileCache, SweepEngine, use_engine
from .verify import ValidationError
from .workloads import benchmark_names, load_benchmark


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Early-FTQC lattice-surgery compiler (CGO 2026 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    compile_cmd = sub.add_parser("compile", help="compile an OpenQASM 2 file")
    compile_cmd.add_argument("qasm_file")
    compile_cmd.add_argument("--routing-paths", "-r", type=int, default=4)
    compile_cmd.add_argument("--factories", "-f", type=int, default=1)
    compile_cmd.add_argument("--unit-cost", action="store_true",
                             help="also compute the unit-cost time")
    compile_cmd.add_argument("--optimize", action="store_true",
                             help="run the front-end cleanup passes first")
    compile_cmd.add_argument("--validate", action="store_true",
                             help="replay-validate the compiled schedule "
                                  "(exit 1 on any violation)")

    bench_cmd = sub.add_parser("benchmark", help="compile a named benchmark")
    bench_cmd.add_argument("name", help="e.g. ising_2d_4x4 (see `repro list`)")
    bench_cmd.add_argument("--routing-paths", "-r", type=int, action="append",
                           help="repeatable; default sweeps 3,4,6")
    bench_cmd.add_argument("--factories", "-f", type=int, default=1)

    exp_cmd = sub.add_parser("experiment", help="regenerate a paper figure")
    exp_cmd.add_argument("figure", choices=sorted(ALL_EXPERIMENTS) + ["all"],
                        help="a figure/table id, or 'all' for the whole suite")
    exp_cmd.add_argument("--fast", action="store_true",
                         help="4x4 lattices instead of the paper's 10x10")
    exp_cmd.add_argument("--jobs", "-j", type=int, default=1,
                         help="worker processes for the compile sweep")
    exp_cmd.add_argument("--cache-dir", default=None,
                         help="persistent result cache root "
                              "(default $REPRO_CACHE_DIR or ~/.cache/repro/sweep)")
    exp_cmd.add_argument("--no-cache", action="store_true",
                         help="skip the persistent cache entirely")
    exp_cmd.add_argument("--remote-cache", metavar="HOST[:PORT]", default=None,
                         help="warm misses from a `repro cache-serve` peer "
                              "(hits are replay-validated; a peer outage "
                              "degrades to a miss)")
    exp_cmd.add_argument("--validate", action="store_true",
                         help="replay-validate every compiled (or cached) "
                              "schedule; exit 1 on any violation")

    bench_perf = sub.add_parser(
        "bench", help="time end-to-end compilation over the workload suite"
    )
    bench_perf.add_argument("--fast", action="store_true",
                            help="smoke matrix (sub-second) instead of the full suite")
    bench_perf.add_argument("--repeat", type=int, default=1,
                            help="timing repetitions per case (best is kept)")
    bench_perf.add_argument("--workload", action="append", dest="workloads",
                            help="repeatable workload-name filter")
    bench_perf.add_argument("--jobs", "-j", type=int, default=1,
                            help="worker processes (fingerprints stay identical)")
    bench_perf.add_argument("--cache-dir", default=None,
                            help="resolve cases through a persistent sweep cache "
                                 "(wall then measures resolution, not compilation)")
    bench_perf.add_argument("--no-cache", action="store_true",
                            help="ignore --cache-dir (pure compile timing)")
    bench_perf.add_argument("--remote-cache", metavar="HOST[:PORT]", default=None,
                            help="resolve misses through a `repro cache-serve` "
                                 "peer as the tier below the disk cache")
    bench_perf.add_argument("--output", "-o", default=None,
                            help=f"output JSON path (default {BENCH_FILENAME}; '-' to skip)")
    bench_perf.add_argument("--baseline", default=None,
                            help="compare against a previous BENCH_*.json "
                                 "(exit 1 on behavioural drift)")
    bench_perf.add_argument("--validate", action="store_true",
                            help="replay-validate every case's schedule "
                                 "outside the timed region")
    bench_perf.add_argument("--profile", action="store_true",
                            help="run one instrumented compile per case after "
                                 "the timed repetitions and attach the "
                                 "per-phase breakdown as meta.phases")
    bench_perf.add_argument("--backend", choices=("auto", "pure", "numpy"),
                            default="auto",
                            help="compute-kernel backend for the whole run "
                                 "(results are bit-identical across backends)")
    bench_perf.add_argument("--compare", nargs=2, metavar=("A.json", "B.json"),
                            default=None,
                            help="compare two existing BENCH_*.json files "
                                 "(per-case and per-phase speedups; exit 1 on "
                                 "fingerprint drift) instead of running")

    quality_cmd = sub.add_parser(
        "quality-bench",
        help="score schedule quality (makespan vs Eq. 2 bound, eviction "
             "churn) per benchmark case and strategy",
    )
    quality_cmd.add_argument("--fast", action="store_true",
                             help="smoke matrix (the CI gate) instead of the full suite")
    quality_cmd.add_argument("--strategy", action="append", dest="strategies",
                             help="repeatable strategy filter (default: all registered)")
    quality_cmd.add_argument("--workload", action="append", dest="workloads",
                             help="repeatable workload-name filter")
    quality_cmd.add_argument("--jobs", "-j", type=int, default=1,
                             help="worker processes (reports stay identical)")
    quality_cmd.add_argument("--output", "-o", default=None,
                             help="output JSON path (default BENCH_quality.json; '-' to skip)")
    quality_cmd.add_argument("--baseline", default=None,
                             help="gate against a previous BENCH_quality.json "
                                  "(exit 1 on any quality regression; "
                                  "improvements pass)")
    quality_cmd.add_argument("--validate", action="store_true",
                             help="replay-validate every compiled schedule "
                                  "outside the timed region")

    serve_cmd = sub.add_parser(
        "serve", help="run the TCP compile service (JSON lines, see repro.service)"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=SERVICE_DEFAULT_PORT,
                           help=f"TCP port (default {SERVICE_DEFAULT_PORT}; 0 = ephemeral)")
    serve_cmd.add_argument("--jobs", "-j", type=int, default=1,
                           help="worker processes in the persistent compile pool")
    serve_cmd.add_argument("--cache-dir", default=None,
                           help="persistent result cache root "
                                "(default $REPRO_CACHE_DIR or ~/.cache/repro/sweep)")
    serve_cmd.add_argument("--no-cache", action="store_true",
                           help="serve without a persistent cache (memo only)")
    serve_cmd.add_argument("--remote-cache", metavar="HOST[:PORT]", default=None,
                           help="share results with a `repro cache-serve` peer "
                                "(the tier below the disk cache; hits are "
                                "replay-validated on ingest)")
    serve_cmd.add_argument("--validate", action="store_true",
                           help="replay-validate every response before sending "
                                "(failures become structured client errors)")
    serve_cmd.add_argument("--max-pending", type=int, default=DEFAULT_MAX_PENDING,
                           help="bound on distinct in-flight compilations; "
                                "beyond it requests are shed with the "
                                "'overloaded' error code")
    serve_cmd.add_argument("--queue-wait", type=float, default=0.0,
                           help="seconds a request may wait for a compile "
                                "slot before being shed (default 0: shed "
                                "immediately)")
    serve_cmd.add_argument("--request-timeout", type=float, default=None,
                           help="server-side bound on any single request, "
                                "admission to response (seconds; expiry "
                                "answers with the 'timeout' error code)")
    serve_cmd.add_argument("--job-deadline", type=float, default=None,
                           help="per-attempt compile deadline; a worker "
                                "grinding past it is killed and the job "
                                "retried (seconds)")
    serve_cmd.add_argument("--job-attempts", type=int, default=3,
                           help="attempts per job before it fails with "
                                "'compile-failed'/'timeout' (worker crashes "
                                "and deadline kills burn attempts)")

    fuzz_cmd = sub.add_parser(
        "fuzz",
        help="fuzz the compiler against the differential conformance oracles",
    )
    fuzz_cmd.add_argument("--seed", type=int, default=0,
                          help="scenario-stream seed (same seed = identical "
                               "scenarios and verdicts)")
    fuzz_cmd.add_argument("--iterations", "-n", type=int, default=200,
                          help="scenarios to generate and check")
    fuzz_cmd.add_argument("--jobs", "-j", type=int, default=1,
                          help="worker processes for the compile prefetch "
                               "(also the jobs-N leg of the determinism oracle)")
    fuzz_cmd.add_argument("--minimize", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="shrink failing scenarios and write "
                               "self-contained JSON repros")
    fuzz_cmd.add_argument("--artifact-dir", default="fuzz-repros",
                          help="where repro artifacts are written "
                               "(default ./fuzz-repros)")
    fuzz_cmd.add_argument("--mutate", action="store_true",
                          help="mutation self-test mode: inject every "
                               "repro.verify corruption class into "
                               "fuzz-generated schedules and require each "
                               "to be caught")
    fuzz_cmd.add_argument("--replay", metavar="ARTIFACT", default=None,
                          help="re-run the oracle bundle on a saved repro "
                               "artifact instead of fuzzing")

    chaos_cmd = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection campaign against a live service",
    )
    chaos_cmd.add_argument("--seed", type=int, default=0,
                           help="campaign seed (same seed = identical fault "
                                "scenarios)")
    chaos_cmd.add_argument("--scenarios", "-n", type=int, default=200,
                           help="fault episodes to run")
    chaos_cmd.add_argument("--jobs", "-j", type=int, default=2,
                           help="worker processes in the service under chaos")
    chaos_cmd.add_argument("--baseline", default="BENCH_routing.json",
                           help="fingerprint baseline for the post-chaos "
                                "check (default BENCH_routing.json; '-' to "
                                "skip)")

    cserve_cmd = sub.add_parser(
        "cache-serve",
        help="run a shared result-cache peer a fleet of engines warms from",
    )
    cserve_cmd.add_argument("--host", default="127.0.0.1",
                            help="bind address (default 127.0.0.1)")
    cserve_cmd.add_argument("--port", type=int, default=CACHE_DEFAULT_PORT,
                            help=f"TCP port (default {CACHE_DEFAULT_PORT}; "
                                 "0 = ephemeral)")
    cserve_cmd.add_argument("--cache-dir", default=None,
                            help="backing store root (default $REPRO_CACHE_DIR "
                                 "or ~/.cache/repro/sweep)")
    cserve_cmd.add_argument("--size-budget", type=int, default=None,
                            help="soft byte bound on the store; exceeding it "
                                 "evicts least-recently-used entries")
    cserve_cmd.add_argument("--quarantine-cap", type=int, default=None,
                            help="bound on quarantined entries kept for "
                                 "post-mortems (default 64)")

    cbench_cmd = sub.add_parser(
        "cache-bench",
        help="measure a cold engine fleet warming from one seeded cache peer",
    )
    cbench_cmd.add_argument("--fast", action="store_true",
                            help="smoke matrix (sub-second) instead of the "
                                 "full suite")
    cbench_cmd.add_argument("--engines", type=int, default=3,
                            help="cold engines warmed from the seeded peer "
                                 "(each must perform zero compilations)")
    cbench_cmd.add_argument("--jobs", "-j", type=int, default=1,
                            help="worker processes in the seeding engine")
    cbench_cmd.add_argument("--output", "-o", default=None,
                            help="output JSON path "
                                 f"(default {BENCH_CACHE_FILENAME}; '-' to skip)")
    cbench_cmd.add_argument("--baseline", default=None,
                            help="compare fingerprints against a previous "
                                 "BENCH_*.json (exit 1 on drift)")

    sbench_cmd = sub.add_parser(
        "service-bench",
        help="measure service throughput (cold/warm/coalesce/gateway phases)",
    )
    sbench_cmd.add_argument("--jobs", "-j", type=int, default=2,
                            help="worker processes in the service under test")
    sbench_cmd.add_argument("--requests", type=int, default=200,
                            help="round-trips in the sustained warm phase")
    sbench_cmd.add_argument("--clients", type=int, default=8,
                            help="concurrent connections in the coalesce burst")
    sbench_cmd.add_argument("--output", "-o", default=None,
                            help="output JSON path "
                                 f"(default {BENCH_SERVICE_FILENAME}; '-' to skip)")
    sbench_cmd.add_argument("--baseline", default=None,
                            help="gate the gateway-phase fingerprints against "
                                 "a previous BENCH_service.json (exit 1 on "
                                 "drift)")

    gateway_cmd = sub.add_parser(
        "gateway",
        help="run the multi-tenant HTTP/WebSocket gateway over N compile shards",
    )
    gateway_cmd.add_argument("--host", default="127.0.0.1",
                             help="bind address (default 127.0.0.1)")
    gateway_cmd.add_argument("--port", type=int, default=GATEWAY_DEFAULT_PORT,
                             help=f"TCP port (default {GATEWAY_DEFAULT_PORT}; "
                                  "0 = ephemeral)")
    gateway_cmd.add_argument("--shards", type=int, default=2,
                             help="backend compile services to shard jobs "
                                  "across (all share one cache peer)")
    gateway_cmd.add_argument("--jobs", "-j", type=int, default=1,
                             help="worker processes per backend shard")
    gateway_cmd.add_argument("--keys", default=None,
                             help="API key file (one 'tenant:key' per line); "
                                  "omit to run open as the anonymous tenant")
    gateway_cmd.add_argument("--rate", type=float, default=None,
                             help="per-tenant token-bucket refill rate in "
                                  "requests/second (default: no rate limit)")
    gateway_cmd.add_argument("--burst", type=float, default=None,
                             help="token-bucket depth (default max(1, rate))")
    gateway_cmd.add_argument("--max-pending", type=int, default=64,
                             help="bound on concurrently dispatched jobs; "
                                  "beyond it new submissions are shed with "
                                  "the 'overloaded' error code")
    gateway_cmd.add_argument("--cache-dir", default=None,
                             help="root for all fleet state: per-shard disk "
                                  "caches, the shared peer cache and the "
                                  "SQLite job store (default: a fresh temp "
                                  "dir; reuse a path to survive restarts)")
    gateway_cmd.add_argument("--validate", action="store_true",
                             help="replay-validate every backend response")

    sub.add_parser("list", help="list available benchmarks and experiments")
    return parser


def _cmd_compile(args) -> int:
    circuit = qasm.load_file(args.qasm_file)
    if args.optimize:
        before = len(circuit)
        circuit = optimize(circuit)
        print(f"optimised: {before} -> {len(circuit)} gates")
    config = CompilerConfig(
        routing_paths=args.routing_paths,
        num_factories=args.factories,
        compute_unit_cost_time=args.unit_cost,
    )
    try:
        result = FaultTolerantCompiler(config).compile(circuit, validate=args.validate)
    except ValidationError as exc:
        print(exc.report.summary())
        return 1
    print(result.summary())
    if args.validate:
        print("schedule validity   : OK (replay-validated)")
    return 0


def _cmd_benchmark(args) -> int:
    circuit = load_benchmark(args.name)
    sweep = args.routing_paths or [3, 4, 6]
    table = Table(
        title=f"{args.name} ({args.factories} factories)",
        columns=["r", "qubits", "time_d", "x_bound", "spacetime", "moves"],
    )
    for r in sweep:
        config = CompilerConfig(routing_paths=r, num_factories=args.factories)
        result = FaultTolerantCompiler(config).compile(circuit)
        table.add_row(
            r=r,
            qubits=result.total_qubits,
            time_d=result.execution_time,
            x_bound=result.time_vs_lower_bound,
            spacetime=result.spacetime_volume(True),
            moves=result.schedule.num_moves,
        )
    print(table.to_text())
    return 0


def _print_tables(result) -> None:
    tables = result if isinstance(result, (list, tuple)) else [result]
    for table in tables:
        print(table.to_text())


def _make_remote(spec: Optional[str]):
    """A :class:`RemoteCache` for a ``--remote-cache`` spec (None passthrough)."""
    if spec is None:
        return None
    from .service import RemoteCache, parse_peer

    return RemoteCache(*parse_peer(spec))


def _cmd_experiment(args) -> int:
    cache = None if args.no_cache else CompileCache(args.cache_dir)
    try:
        remote = _make_remote(args.remote_cache)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    engine = SweepEngine(
        jobs=args.jobs, cache=cache, remote=remote, validate=args.validate
    )
    names = sorted(ALL_EXPERIMENTS) if args.figure == "all" else [args.figure]
    try:
        with use_engine(engine):
            engine.prefetch(collect_jobs(names, args.fast), progress=print)
            for name in names:
                if len(names) > 1:
                    print(f"=== {name} ===")
                _print_tables(ALL_EXPERIMENTS[name](args.fast))
                if len(names) > 1:
                    print()
    except ValidationError as exc:
        print(exc.report.summary())
        print("error: schedule failed replay validation")
        return 1
    finally:
        engine.shutdown()
    print(f"[sweep] {engine.counters.describe()}")
    if args.validate:
        print(f"[verify] {len(engine.validated_keys)} schedule(s) replay-validated, 0 violations")
    return 0


def _cmd_bench(args) -> int:
    import json

    from .perf import bench_cases, compare_reports, has_drift, run_bench

    if args.compare:
        from .perf.bench import compare_phases, report_from_dict

        path_a, path_b = args.compare
        try:
            with open(path_a) as handle:
                base = json.load(handle)
            with open(path_b) as handle:
                cur = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read report: {exc}")
            return 2
        current = report_from_dict(cur)
        for line in compare_reports(base, current):
            print(line)
        phase_lines = compare_phases(base.get("meta", {}), current.meta)
        if phase_lines:
            print()
            for line in phase_lines:
                print(line)
        if has_drift(base, current):
            print(f"error: behavioural fingerprint drift: {path_a} vs {path_b}")
            return 1
        return 0

    if not bench_cases(args.fast, args.workloads):
        known = sorted({c.workload for c in bench_cases(args.fast)})
        print(f"error: no benchmark cases match --workload {args.workloads}")
        print(f"workloads in this matrix: {', '.join(known)}")
        return 2
    baseline = None
    if args.baseline:
        # read before the run so --output may overwrite the baseline file
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}")
            return 2
    try:
        remote = _make_remote(args.remote_cache)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    try:
        report = run_bench(
            fast=args.fast,
            repeat=args.repeat,
            workloads=args.workloads,
            progress=print,
            jobs=args.jobs,
            cache_dir=None if args.no_cache else args.cache_dir,
            remote=remote,
            validate=args.validate,
            profile=args.profile,
            backend=args.backend,
        )
    except ValidationError as exc:
        print(exc.report.summary())
        print("error: schedule failed replay validation")
        return 1
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print()
    print(report.to_text())
    if args.profile:
        from .perf.bench import phases_table

        print()
        print(phases_table(report.meta.get("phases", {})))
    if args.validate:
        print(f"[verify] {len(report.cases)} case schedule(s) replay-validated, 0 violations")
    output = args.output if args.output is not None else BENCH_FILENAME
    if output != "-":
        report.write(output)
        print(f"wrote {output}")
    if baseline is not None:
        print()
        for line in compare_reports(baseline, report):
            print(line)
        if has_drift(baseline, report):
            print("error: behavioural fingerprint drift vs baseline")
            return 1
    return 0


def _cmd_quality_bench(args) -> int:
    import json

    from .perf.quality_bench import (
        BENCH_QUALITY_FILENAME,
        compare_quality,
        quality_regressions,
        run_quality_bench,
    )

    baseline = None
    if args.baseline:
        # read before the run so --output may overwrite the baseline file
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}")
            return 2
    try:
        report = run_quality_bench(
            fast=args.fast,
            strategies=args.strategies,
            workloads=args.workloads,
            validate=args.validate,
            jobs=args.jobs,
            progress=print,
        )
    except ValidationError as exc:
        print(exc.report.summary())
        print("error: schedule failed replay validation")
        return 1
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print()
    print(report.to_text())
    if args.validate:
        rows = sum(len(v) for v in report.cases.values())
        print(f"[verify] {rows} schedule(s) replay-validated, 0 violations")
    output = args.output if args.output is not None else BENCH_QUALITY_FILENAME
    if output != "-":
        report.write(output)
        print(f"wrote {output}")
    if baseline is not None:
        print()
        for line in compare_quality(baseline, report):
            print(line)
        regressions = quality_regressions(baseline, report)
        if regressions:
            for line in regressions:
                print(f"error: {line}")
            print("error: schedule quality regressed vs baseline")
            return 1
        print("quality gate: no regressions vs baseline")
    return 0


def _cmd_serve(args) -> int:
    cache = None if args.no_cache else CompileCache(args.cache_dir)
    try:
        remote = _make_remote(args.remote_cache)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    return run_server(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache=cache,
        remote=remote,
        validate=args.validate,
        max_pending=args.max_pending,
        queue_wait=args.queue_wait,
        request_timeout=args.request_timeout,
        job_deadline=args.job_deadline,
        job_attempts=args.job_attempts,
        announce=print,
    )


def _cmd_chaos(args) -> int:
    from .faultinject import run_chaos

    report = run_chaos(
        seed=args.seed,
        scenarios=args.scenarios,
        jobs=args.jobs,
        bench_baseline=args.baseline,
        progress=print,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_fuzz(args) -> int:
    from .fuzz import replay_artifact, run_fuzz, run_mutation_fuzz

    if args.replay is not None:
        failures = replay_artifact(args.replay)
        if failures:
            print(f"{args.replay}: still failing")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"{args.replay}: green (every oracle passes)")
        return 0
    if args.mutate:
        mutation = run_mutation_fuzz(args.seed, args.iterations, progress=print)
        print(mutation.summary())
        return 0 if mutation.ok else 1
    report = run_fuzz(
        seed=args.seed,
        iterations=args.iterations,
        jobs=args.jobs,
        minimize=args.minimize,
        artifact_dir=args.artifact_dir,
        progress=print,
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_cache_serve(args) -> int:
    from .service import run_cache_peer
    from .sweep.cache import DEFAULT_QUARANTINE_CAP

    cache = CompileCache(
        args.cache_dir,
        size_budget=args.size_budget,
        quarantine_cap=(
            args.quarantine_cap
            if args.quarantine_cap is not None
            else DEFAULT_QUARANTINE_CAP
        ),
    )
    return run_cache_peer(
        host=args.host, port=args.port, cache=cache, announce=print
    )


def _cmd_cache_bench(args) -> int:
    import json

    from .perf import has_drift
    from .perf.cache_bench import run_cache_bench, write_cache_report

    baseline = None
    if args.baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}")
            return 2
    report = run_cache_bench(
        fast=args.fast,
        engines=args.engines,
        jobs=args.jobs,
        progress=print,
    )
    print()
    print(report.to_text())
    output = args.output if args.output is not None else BENCH_CACHE_FILENAME
    if output != "-":
        write_cache_report(report, output)
        print(f"wrote {output}")
    warm = report.meta["cache_bench"]["warm_fleet"]
    if warm["compiled"] != 0:
        print(
            f"error: warm fleet performed {warm['compiled']} compilation(s); "
            "expected 0 (every case must resolve from the seeded peer)"
        )
        return 1
    if baseline is not None:
        if has_drift(baseline, report):
            print("error: behavioural fingerprint drift vs baseline")
            return 1
        print(f"fingerprints identical to {args.baseline} across all tier paths")
    return 0


def _cmd_service_bench(args) -> int:
    import json

    from .perf.service_bench import gateway_baseline_mismatches

    baseline = None
    if args.baseline:
        # read before the run so --output may overwrite the baseline file
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}")
            return 2
    report = run_service_bench(
        jobs=args.jobs,
        requests=args.requests,
        clients=args.clients,
        progress=print,
    )
    print()
    print(service_report_text(report))
    output = args.output if args.output is not None else BENCH_SERVICE_FILENAME
    if output != "-":
        write_service_report(report, output)
        print(f"wrote {output}")
    if baseline is not None:
        mismatches = gateway_baseline_mismatches(baseline, report)
        if mismatches:
            print("error: gateway-phase fingerprint drift vs baseline:")
            for line in mismatches:
                print(f"  {line}")
            return 1
        print(
            f"gateway fingerprints identical to {args.baseline} "
            "across all served cases"
        )
    return 0


def _cmd_gateway(args) -> int:
    import time as _time

    from .gateway import GatewayCluster, Keyring

    keyring = None
    if args.keys:
        try:
            keyring = Keyring.load(args.keys)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load key file: {exc}")
            return 2
    cluster = GatewayCluster(
        shards=args.shards,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        validate=args.validate,
        keyring=keyring,
        rate=args.rate,
        burst=args.burst,
        max_pending=args.max_pending,
        host=args.host,
        port=args.port,
    )
    with cluster:
        host, port = cluster.address
        print(
            f"gateway listening on http://{host}:{port} "
            f"({args.shards} shard(s) x {args.jobs} worker(s), "
            f"{'open access' if keyring is None else f'{len(keyring)} API key(s)'}, "
            f"rate {'off' if args.rate is None else f'{args.rate}/s'})"
        )
        print(f"fleet state under {cluster.cache_dir}")
        print("endpoints: POST /v1/jobs, GET /v1/jobs/<id>, GET /v1/ws, "
              "GET /v1/stats, GET /v1/ping")
        try:
            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            print("shutting down")
    return 0


def _cmd_list() -> int:
    print("benchmarks:")
    for name in benchmark_names():
        print(f"  {name}")
    print("experiments:")
    for name in sorted(ALL_EXPERIMENTS):
        print(f"  {name}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "compile":
        return _cmd_compile(args)
    if args.command == "benchmark":
        return _cmd_benchmark(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "quality-bench":
        return _cmd_quality_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "cache-serve":
        return _cmd_cache_serve(args)
    if args.command == "cache-bench":
        return _cmd_cache_bench(args)
    if args.command == "service-bench":
        return _cmd_service_bench(args)
    if args.command == "gateway":
        return _cmd_gateway(args)
    if args.command == "list":
        return _cmd_list()
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
