"""The fuzz campaign runner behind ``repro fuzz``.

One campaign = one deterministic scenario stream (seed, iterations) pushed
through the full differential pipeline:

1. **prefetch** — every scenario's compile job goes through one
   :class:`~repro.sweep.SweepEngine` (deduped, fanned out over ``--jobs``
   worker processes, results landing in a disposable on-disk cache);
2. **oracles** — each scenario is checked against the bundle in
   :mod:`repro.fuzz.oracles`, including the differential legs: the engine
   result (worker ``to_dict`` payload on ``--jobs > 1``) against a fresh
   in-process serial compile, and against a warm replay through a second
   engine that can only hit the disk cache;
3. **minimize** — failing scenarios are shrunk
   (:mod:`repro.fuzz.shrinker`) and written as self-contained JSON repro
   artifacts (:mod:`repro.fuzz.artifact`).

The report's verdict lines are a pure function of the seed and the code
under test — two runs with the same seed must print identical scenario
keys and verdicts, which CI can (and the tests do) assert verbatim.

Mutation mode (``repro fuzz --mutate``) turns the campaign on the
*validator* instead: every corruption class of
:mod:`repro.verify.mutations` is injected into fuzz-generated schedules,
and the run fails unless each class was both exercised and caught — proof
the conformance oracle has teeth, on inputs nobody hand-picked.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..sweep import CompileCache, CompileJob, SweepEngine
from ..verify import MUTATIONS, config_distill_times, run_self_test, validate_result
from .artifact import write_artifact
from .generators import Scenario, generate_scenario
from .oracles import (
    OracleFailure,
    compare_results,
    compile_scenario,
    static_oracles,
)
from .shrinker import DEFAULT_BUDGET, shrink

Progress = Optional[Callable[[str], None]]


@dataclass
class FuzzVerdict:
    """One scenario's outcome."""

    scenario: Scenario
    failures: List[OracleFailure] = field(default_factory=list)
    minimized: Optional[Scenario] = None
    artifact: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def oracles(self) -> Tuple[str, ...]:
        """Breached oracle names, sorted and deduplicated."""
        return tuple(sorted({f.oracle for f in self.failures}))

    def line(self) -> str:
        """The deterministic one-line form the report prints."""
        status = "ok" if self.ok else "FAIL[" + ",".join(self.oracles) + "]"
        return f"{self.scenario.key[:16]} {self.scenario.name:<24} {status}"


@dataclass
class MutationReport:
    """Aggregate of mutation-mode self-tests over fuzz-generated schedules."""

    seed: int
    iterations: int
    applicable: Dict[str, int] = field(default_factory=dict)
    caught: Dict[str, int] = field(default_factory=dict)
    #: (scenario key, mutation name) for every injected-but-uncaught case.
    uncaught: List[Tuple[str, str]] = field(default_factory=list)
    #: scenario keys whose base schedule failed validation outright.
    broken_bases: List[str] = field(default_factory=list)

    @property
    def covered(self) -> Set[str]:
        """Corruption classes injected at least once."""
        return {name for name, count in self.applicable.items() if count}

    @property
    def missing(self) -> Set[str]:
        return set(MUTATIONS) - self.covered

    @property
    def ok(self) -> bool:
        return not self.uncaught and not self.missing and not self.broken_bases

    def summary(self) -> str:
        lines = [
            f"[fuzz --mutate] seed={self.seed} iterations={self.iterations}: "
            f"{len(self.covered)}/{len(MUTATIONS)} corruption classes injected"
        ]
        for name in sorted(MUTATIONS):
            lines.append(
                f"  {name:<22} injected {self.applicable.get(name, 0):>4}  "
                f"caught {self.caught.get(name, 0):>4}"
            )
        if self.missing:
            lines.append(f"  MISSING coverage: {', '.join(sorted(self.missing))}")
        for key, name in self.uncaught[:10]:
            lines.append(f"  UNCAUGHT {name} on scenario {key[:16]}")
        for key in self.broken_bases[:10]:
            lines.append(f"  INVALID base schedule on scenario {key[:16]}")
        lines.append("mutation self-test: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Everything one campaign established."""

    seed: int
    iterations: int
    jobs: int
    verdicts: List[FuzzVerdict] = field(default_factory=list)
    mutation: Optional[MutationReport] = None
    prefetch_error: Optional[str] = None

    @property
    def failures(self) -> List[FuzzVerdict]:
        return [v for v in self.verdicts if not v.ok]

    @property
    def ok(self) -> bool:
        if self.mutation is not None and not self.mutation.ok:
            return False
        return not self.failures

    def verdict_lines(self) -> List[str]:
        """Deterministic per-scenario lines (stable across reruns)."""
        return [v.line() for v in self.verdicts]

    def kind_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for verdict in self.verdicts:
            kind = verdict.scenario.kind
            histogram[kind] = histogram.get(kind, 0) + 1
        return histogram

    def summary(self) -> str:
        lines: List[str] = []
        if self.verdicts:
            kinds = ", ".join(
                f"{kind}:{count}"
                for kind, count in sorted(self.kind_histogram().items())
            )
            lines.append(
                f"[fuzz] seed={self.seed} iterations={self.iterations} "
                f"jobs={self.jobs} ({kinds})"
            )
            if self.prefetch_error:
                lines.append(f"  prefetch degraded to serial: {self.prefetch_error}")
            for verdict in self.failures:
                lines.append(f"  {verdict.line()}")
                for failure in verdict.failures[:4]:
                    lines.append(f"    {failure}")
                if verdict.artifact:
                    lines.append(f"    repro written: {verdict.artifact}")
            lines.append(
                f"[fuzz] {len(self.verdicts) - len(self.failures)}/"
                f"{len(self.verdicts)} scenarios passed every oracle"
            )
        if self.mutation is not None:
            lines.append(self.mutation.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "jobs": self.jobs,
            "ok": self.ok,
            "verdicts": self.verdict_lines(),
            "failures": [
                {
                    "key": v.scenario.key,
                    "name": v.scenario.name,
                    "oracles": list(v.oracles),
                    "artifact": v.artifact,
                }
                for v in self.failures
            ],
        }


def run_fuzz(
    seed: int,
    iterations: int,
    jobs: int = 1,
    minimize: bool = True,
    artifact_dir: str = "fuzz-repros",
    shrink_budget: int = DEFAULT_BUDGET,
    max_minimized: int = 20,
    progress: Progress = None,
) -> FuzzReport:
    """Run one fuzz campaign; see the module docstring for the pipeline.

    Args:
        seed / iterations: the deterministic scenario stream.
        jobs: worker processes for the prefetch fan-out.
        minimize: shrink failing scenarios and write repro artifacts.
        artifact_dir: where repro JSON files land.
        shrink_budget: oracle-check ceiling per minimization.
        max_minimized: stop minimizing (not detecting) after this many
            failures — a systemic breakage should fail fast, not grind
            through thousands of shrinks.
        progress: optional line sink for human-readable progress.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    report = FuzzReport(seed=seed, iterations=iterations, jobs=max(1, jobs))
    scenarios = [generate_scenario(seed, i) for i in range(iterations)]

    with tempfile.TemporaryDirectory(prefix="repro-fuzz-cache-") as tmp:
        engine = SweepEngine(jobs=report.jobs, cache=CompileCache(tmp))
        try:
            # tolerant: one crashing scenario must not abort the batch —
            # it is skipped here and re-found (with full attribution) when
            # its scenario is checked individually below
            engine.prefetch(
                [
                    CompileJob(s.circuit, s.config, tag=s.name)
                    for s in scenarios
                ],
                progress=None,
                tolerant=True,
            )
        except Exception as exc:  # noqa: BLE001 — e.g. a broken pool
            report.prefetch_error = f"{type(exc).__name__}: {exc}"
        warm_engine = SweepEngine(jobs=1, cache=CompileCache(tmp))

        minimized_count = 0
        for index, scenario in enumerate(scenarios):
            verdict = _check_one(scenario, engine, warm_engine)
            if not verdict.ok and minimize and minimized_count < max_minimized:
                minimized_count += 1
                _minimize_into(
                    verdict, artifact_dir, shrink_budget, progress=progress
                )
            report.verdicts.append(verdict)
            if progress is not None and (
                (index + 1) % 50 == 0 or index + 1 == len(scenarios)
            ):
                failed = sum(1 for v in report.verdicts if not v.ok)
                progress(
                    f"[fuzz] {index + 1}/{len(scenarios)} scenarios checked"
                    + (f", {failed} failing" if failed else "")
                )
    return report


def _check_one(
    scenario: Scenario, engine: SweepEngine, warm_engine: SweepEngine
) -> FuzzVerdict:
    """Run every oracle (static + differential legs) on one scenario."""
    try:
        result = engine.compile(scenario.circuit, scenario.config)
    except Exception as exc:  # noqa: BLE001 — crashes are the finding
        import traceback

        return FuzzVerdict(
            scenario=scenario,
            failures=[
                OracleFailure(
                    "compile-crash",
                    f"{type(exc).__name__}: {exc}",
                    details={"traceback": traceback.format_exc(limit=12)},
                )
            ],
        )

    failures = static_oracles(scenario, result)

    # differential leg 1: fresh in-process serial compile.  With --jobs > 1
    # the engine result came from a worker process via its to_dict payload,
    # so this holds `--jobs 1` and `--jobs N` to identical behaviour.
    direct, crash = compile_scenario(scenario)
    if direct is None:
        failures.extend(crash)
    else:
        failures.extend(compare_results(result, direct, label="engine-vs-direct"))

    # differential leg 2: warm replay through a second engine that never
    # compiles — it can only deserialise what the campaign cache holds.
    warm = warm_engine.cached_result(scenario.circuit, scenario.config)
    if warm is None:
        failures.append(
            OracleFailure(
                "determinism",
                "warm replay missed the campaign cache entirely",
            )
        )
    else:
        failures.extend(compare_results(result, warm[0], label="warm-replay"))

    return FuzzVerdict(scenario=scenario, failures=failures)


def _minimize_into(
    verdict: FuzzVerdict,
    artifact_dir: str,
    shrink_budget: int,
    progress: Progress = None,
) -> None:
    """Shrink a failing verdict in place and persist its repro artifact."""
    if progress is not None:
        progress(
            f"[fuzz] minimizing {verdict.scenario.name} "
            f"({verdict.oracles[0]}...)"
        )
    try:
        outcome = shrink(
            verdict.scenario,
            verdict.failures,
            budget=shrink_budget,
            progress=progress,
        )
        minimized, min_failures = outcome.scenario, outcome.failures
    except Exception:  # noqa: BLE001 — never lose the original repro
        minimized, min_failures = verdict.scenario, verdict.failures
    verdict.minimized = minimized
    verdict.artifact = str(
        write_artifact(
            artifact_dir, minimized, min_failures, original=verdict.scenario
        )
    )


def run_mutation_fuzz(
    seed: int,
    iterations: int,
    progress: Progress = None,
) -> MutationReport:
    """Inject every corruption class into fuzz-generated schedules.

    For each scenario: compile, assert the unmutated schedule validates,
    then run the :data:`repro.verify.MUTATIONS` self-test against it.  The
    report fails if any injected corruption goes uncaught, or if some
    class was never injectable across the whole stream (coverage hole).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    report = MutationReport(seed=seed, iterations=iterations)
    for name in MUTATIONS:
        report.applicable[name] = 0
        report.caught[name] = 0
    for index in range(iterations):
        scenario = generate_scenario(seed, index)
        result, crash = compile_scenario(scenario)
        if result is None:
            report.broken_bases.append(scenario.key)
            continue
        base = validate_result(
            result, scenario.circuit, scenario.config, label=scenario.name
        )
        if not base.ok:
            report.broken_bases.append(scenario.key)
            continue
        outcomes = run_self_test(
            result.schedule,
            scenario.circuit,
            config_distill_times(scenario.config),
            result.t_states,
        )
        for outcome in outcomes:
            if not outcome.applicable:
                continue
            report.applicable[outcome.name] += 1
            if outcome.caught:
                report.caught[outcome.name] += 1
            else:
                report.uncaught.append((scenario.key, outcome.name))
        if progress is not None and (
            (index + 1) % 25 == 0 or index + 1 == iterations
        ):
            progress(
                f"[fuzz --mutate] {index + 1}/{iterations} schedules corrupted "
                f"({len(report.covered)}/{len(MUTATIONS)} classes covered)"
            )
    return report
