"""The differential oracle bundle every fuzz scenario is checked against.

Each oracle is a named invariant with a stable identifier (see
:data:`ORACLE_NAMES`); a breach produces an :class:`OracleFailure` whose
``oracle`` field anchors shrinking (the minimizer only accepts reductions
that keep the *same* oracle failing) and corpus bookkeeping.

``compile-crash``
    The compiler raised instead of producing a result.  Solvability is by
    construction (see :mod:`repro.fuzz.generators`), so any exception is a
    finding.
``qasm-roundtrip``
    ``qasm.loads(qasm.dumps(c))`` must reproduce the exact gate stream —
    the parser/emitter pair sits inside the fuzz loop.
``replay-validation``
    The :mod:`repro.verify` replay validator accepts the schedule (all ten
    violation classes).
``lower-bound``
    ``makespan >= Eq. 2 lower bound``, and the recorded bound matches the
    one recomputed from the circuit and config.
``metrics-consistency``
    Every derived metric in the result re-derives to the same value from
    its inputs (profile, qubit accounting, spacetime volume, elimination
    report presence).
``serialization-roundtrip``
    ``CompilationResult.from_dict(json(to_dict()))`` is lossless — the
    invariant the sweep cache, the worker IPC and the service all lean on.
``baseline-sanity``
    The compiled makespan never exceeds the pessimistic fully-serial
    ceiling of :mod:`repro.baselines.serial`.
``determinism``
    Two resolutions of the same scenario (serial recompile, worker
    payload, warm cache replay) carry identical fingerprints and
    schedules.
``strategy-differential``
    Every registered placement/delivery strategy compiles the scenario to
    a *valid* schedule: replay-validated, at or above the Eq. 2 bound, at
    or below the fully-serial ceiling, and deterministic across
    recompiles.  Strategies may disagree on makespan — that is their
    point — but never on correctness.
"""

from __future__ import annotations

import json
import traceback
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..baselines.lower_bound import distillation_lower_bound
from ..baselines.serial import pessimistic_serial_time
from ..compiler.pipeline import FaultTolerantCompiler
from ..compiler.result import CompilationResult
from ..ir import qasm
from ..ir.properties import profile as circuit_profile
from ..verify import validate_result
from .generators import Scenario

#: float tolerance mirroring the replay validator's.
EPS = 1e-6

#: the closed set of oracle identifiers.
ORACLE_NAMES = (
    "compile-crash",
    "qasm-roundtrip",
    "replay-validation",
    "lower-bound",
    "metrics-consistency",
    "serialization-roundtrip",
    "baseline-sanity",
    "determinism",
    "strategy-differential",
)


@dataclass(frozen=True)
class OracleFailure:
    """One oracle breach on one scenario (JSON-safe for repro artifacts)."""

    oracle: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "oracle": self.oracle,
            "message": self.message,
            "details": dict(self.details),
        }

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.message}"


def compile_scenario(
    scenario: Scenario,
) -> Tuple[Optional[CompilationResult], List[OracleFailure]]:
    """Compile serially, converting any exception into ``compile-crash``."""
    try:
        result = FaultTolerantCompiler(scenario.config).compile(scenario.circuit)
    except Exception as exc:  # noqa: BLE001 — crashes are the finding
        return None, [
            OracleFailure(
                oracle="compile-crash",
                message=f"{type(exc).__name__}: {exc}",
                details={"traceback": traceback.format_exc(limit=12)},
            )
        ]
    return result, []


def static_oracles(
    scenario: Scenario, result: CompilationResult
) -> List[OracleFailure]:
    """Every oracle that needs only the scenario and one compiled result."""
    failures: List[OracleFailure] = []
    failures.extend(_check_qasm_roundtrip(scenario))
    failures.extend(_check_replay_validation(scenario, result))
    failures.extend(_check_lower_bound(scenario, result))
    failures.extend(_check_metrics(scenario, result))
    failures.extend(_check_serialization(result))
    failures.extend(_check_baseline(scenario, result))
    return failures


def check_scenario(
    scenario: Scenario, differential: bool = True
) -> Tuple[Optional[CompilationResult], List[OracleFailure]]:
    """The full self-contained bundle (shrinker and corpus replay path).

    ``differential=True`` additionally recompiles the scenario in-process
    and replays it through an on-disk cache round trip, holding all three
    resolutions to fingerprint equality.  (The campaign runner adds one
    more leg this path cannot reproduce cheaply: the ``--jobs N``
    worker-pool payload.)
    """
    result, failures = compile_scenario(scenario)
    if result is None:
        return None, failures
    failures = static_oracles(scenario, result)
    if differential:
        second, crash = compile_scenario(scenario)
        if second is None:
            failures.extend(crash)
        else:
            failures.extend(
                compare_results(result, second, label="serial-recompile")
            )
        failures.extend(_check_disk_replay(scenario, result))
        failures.extend(_check_backend_parity(scenario, result))
        failures.extend(_check_strategy_differential(scenario))
    return result, failures


def _check_disk_replay(
    scenario: Scenario, result: CompilationResult
) -> List[OracleFailure]:
    """Round-trip the result through a real on-disk cache entry."""
    import tempfile

    from ..sweep import CompileCache, job_key

    with tempfile.TemporaryDirectory(prefix="repro-fuzz-replay-") as tmp:
        cache = CompileCache(tmp)
        key = job_key(scenario.circuit, scenario.config)
        cache.store(key, result)
        warm = cache.load(key)
    if warm is None:
        return [
            OracleFailure(
                "determinism",
                "on-disk cache entry unreadable immediately after store",
            )
        ]
    return compare_results(result, warm, label="disk-replay")


def _check_backend_parity(
    scenario: Scenario, result: CompilationResult
) -> List[OracleFailure]:
    """Recompile with every kernel pinned to the numpy backend and hold the
    result to behavioural identity.

    The vectorized kernels claim bit-identical results to the pure-Python
    reference; this oracle is that claim under fuzzing pressure.  Pinning
    (rather than trusting ``auto``) overrides the size thresholds, so even
    tiny fuzz grids route through the numpy code paths.  No-op where numpy
    is unavailable — the pure backend has nothing to diverge from.
    """
    from .. import kernels

    if not kernels.HAVE_NUMPY:
        return []
    config = scenario.config.with_(backend="numpy")
    try:
        other = FaultTolerantCompiler(config).compile(scenario.circuit)
    except Exception as exc:  # noqa: BLE001 — a backend-only crash is the finding
        return [
            OracleFailure(
                oracle="backend-parity",
                message=f"numpy-pinned compile crashed: {type(exc).__name__}: {exc}",
                details={"traceback": traceback.format_exc(limit=12)},
            )
        ]
    return compare_results(result, other, label="backend-parity")


def _check_strategy_differential(scenario: Scenario) -> List[OracleFailure]:
    """Compile under every *other* registered strategy and hold each one
    to validity, the bound/ceiling envelope, and determinism.

    The scenario's own strategy is already covered by the main oracle
    bundle; this leg asserts the property the quality harness leans on —
    that strategies are interchangeable on correctness and only ever
    disagree on schedule quality.
    """
    from ..strategies import STRATEGY_NAMES

    failures: List[OracleFailure] = []
    for name in STRATEGY_NAMES:
        if name == scenario.config.strategy:
            continue
        config = scenario.config.with_(strategy=name)
        try:
            result = FaultTolerantCompiler(config).compile(scenario.circuit)
        except Exception as exc:  # noqa: BLE001 — a strategy-only crash is the finding
            failures.append(
                OracleFailure(
                    "strategy-differential",
                    f"strategy {name!r} crashed: {type(exc).__name__}: {exc}",
                    details={"traceback": traceback.format_exc(limit=12)},
                )
            )
            continue
        report = validate_result(
            result, scenario.circuit, config, label=f"{scenario.name}/{name}"
        )
        if not report.ok:
            failures.append(
                OracleFailure(
                    "strategy-differential",
                    f"strategy {name!r} schedule failed replay validation: "
                    f"{report.summary(limit=3)}",
                    details={"report": report.to_dict()},
                )
            )
        if result.execution_time + EPS < result.lower_bound:
            failures.append(
                OracleFailure(
                    "strategy-differential",
                    f"strategy {name!r} makespan {result.execution_time} "
                    f"beats the distillation bound {result.lower_bound}",
                )
            )
        ceiling = pessimistic_serial_time(scenario.circuit, config, result.layout)
        if result.execution_time > ceiling + EPS:
            failures.append(
                OracleFailure(
                    "strategy-differential",
                    f"strategy {name!r} makespan {result.execution_time} "
                    f"exceeds the serial ceiling {ceiling}",
                )
            )
        second = FaultTolerantCompiler(config).compile(scenario.circuit)
        for failure in compare_results(result, second, label=f"strategy:{name}"):
            failures.append(
                OracleFailure(
                    "strategy-differential",
                    f"strategy {name!r} not deterministic: {failure.message}",
                    details=failure.details,
                )
            )
    return failures


# -- individual oracles --------------------------------------------------------


def _check_qasm_roundtrip(scenario: Scenario) -> List[OracleFailure]:
    try:
        text = qasm.dumps(scenario.circuit)
        recovered = qasm.loads(text, name=scenario.circuit.name)
    except Exception as exc:  # noqa: BLE001
        return [
            OracleFailure(
                "qasm-roundtrip",
                f"round-trip raised {type(exc).__name__}: {exc}",
            )
        ]
    if recovered.num_qubits != scenario.circuit.num_qubits:
        return [
            OracleFailure(
                "qasm-roundtrip",
                f"register width changed: {scenario.circuit.num_qubits} -> "
                f"{recovered.num_qubits}",
            )
        ]
    original = list(scenario.circuit.gates)
    parsed = list(recovered.gates)
    if original != parsed:
        for i, (a, b) in enumerate(zip(original, parsed)):
            if a != b:
                return [
                    OracleFailure(
                        "qasm-roundtrip",
                        f"gate {i} changed across the round trip: {a} -> {b}",
                    )
                ]
        return [
            OracleFailure(
                "qasm-roundtrip",
                f"gate count changed: {len(original)} -> {len(parsed)}",
            )
        ]
    return []


def _check_replay_validation(
    scenario: Scenario, result: CompilationResult
) -> List[OracleFailure]:
    report = validate_result(
        result, scenario.circuit, scenario.config, label=scenario.name
    )
    if report.ok:
        return []
    return [
        OracleFailure(
            "replay-validation",
            report.summary(limit=3),
            details={"report": report.to_dict()},
        )
    ]


def _check_lower_bound(
    scenario: Scenario, result: CompilationResult
) -> List[OracleFailure]:
    failures: List[OracleFailure] = []
    config = scenario.config
    expected_bound = distillation_lower_bound(
        result.t_states,
        config.factory_config().distill_time,
        config.num_factories,
    )
    if abs(expected_bound - result.lower_bound) > EPS:
        failures.append(
            OracleFailure(
                "lower-bound",
                f"recorded bound {result.lower_bound} != recomputed "
                f"{expected_bound}",
            )
        )
    for label, value in (
        ("makespan", result.execution_time),
        ("unit-cost makespan", result.unit_cost_time),
    ):
        if value is not None and value + EPS < result.lower_bound:
            failures.append(
                OracleFailure(
                    "lower-bound",
                    f"{label} {value} beats the distillation lower bound "
                    f"{result.lower_bound} — impossible by Eq. 2",
                )
            )
    return failures


def _check_metrics(
    scenario: Scenario, result: CompilationResult
) -> List[OracleFailure]:
    failures: List[OracleFailure] = []
    config = scenario.config

    def mismatch(name: str, got, expected) -> None:
        failures.append(
            OracleFailure(
                "metrics-consistency",
                f"{name}: result records {got!r}, re-derivation gives "
                f"{expected!r}",
            )
        )

    if result.execution_time != result.schedule.makespan:
        mismatch("execution_time", result.execution_time, result.schedule.makespan)
    expected_t = config.synthesis.circuit_t_count(scenario.circuit)
    if result.t_states != expected_t:
        mismatch("t_states", result.t_states, expected_t)
    if result.num_factories != config.num_factories:
        mismatch("num_factories", result.num_factories, config.num_factories)
    if result.factory_area != config.factory_config().area:
        mismatch("factory_area", result.factory_area, config.factory_config().area)
    expected_total = (
        result.layout.total_qubits + config.num_factories * result.factory_area
    )
    if result.total_qubits != expected_total:
        mismatch("total_qubits", result.total_qubits, expected_total)
    expected_volume = result.total_qubits * result.execution_time
    if abs(result.spacetime_volume(True) - expected_volume) > EPS:
        mismatch("spacetime_volume", result.spacetime_volume(True), expected_volume)
    expected_profile = asdict(circuit_profile(scenario.circuit))
    if asdict(result.profile) != expected_profile:
        mismatch("profile", asdict(result.profile), expected_profile)
    if config.eliminate_redundant_moves:
        if result.elimination is None:
            mismatch("elimination report", None, "an EliminationReport")
    elif result.elimination is not None:
        mismatch("elimination report", result.elimination, None)
    if (config.compute_unit_cost_time) != (result.unit_cost_time is not None):
        mismatch(
            "unit_cost_time presence",
            result.unit_cost_time,
            "set iff compute_unit_cost_time",
        )
    if result.layout.routing_paths != config.routing_paths:
        mismatch("layout.routing_paths", result.layout.routing_paths,
                 config.routing_paths)
    return failures


def _check_serialization(result: CompilationResult) -> List[OracleFailure]:
    try:
        payload = json.loads(json.dumps(result.to_dict(), sort_keys=True))
        rebuilt = CompilationResult.from_dict(payload)
    except Exception as exc:  # noqa: BLE001
        return [
            OracleFailure(
                "serialization-roundtrip",
                f"to_dict/from_dict raised {type(exc).__name__}: {exc}",
            )
        ]
    if rebuilt.to_dict() != result.to_dict():
        return [
            OracleFailure(
                "serialization-roundtrip",
                "to_dict() not a fixpoint across from_dict()",
            )
        ]
    if rebuilt.fingerprint() != result.fingerprint():
        return [
            OracleFailure(
                "serialization-roundtrip",
                "fingerprint changed across serialization",
                details={
                    "before": result.fingerprint(),
                    "after": rebuilt.fingerprint(),
                },
            )
        ]
    return []


def _check_baseline(
    scenario: Scenario, result: CompilationResult
) -> List[OracleFailure]:
    ceiling = pessimistic_serial_time(
        scenario.circuit, scenario.config, result.layout
    )
    if result.execution_time > ceiling + EPS:
        return [
            OracleFailure(
                "baseline-sanity",
                f"makespan {result.execution_time} exceeds the pessimistic "
                f"fully-serial ceiling {ceiling}",
                details={"ceiling": ceiling, "makespan": result.execution_time},
            )
        ]
    return []


# -- differential comparison ---------------------------------------------------


def compare_results(
    reference: CompilationResult,
    other: CompilationResult,
    label: str,
) -> List[OracleFailure]:
    """Hold two resolutions of one scenario to behavioural identity.

    Fingerprints must match exactly, and so must the serialized schedules
    (op-for-op) — the property that makes ``--jobs N``, warm caches and
    the compile service indistinguishable from serial compilation.
    """
    if reference.fingerprint() != other.fingerprint():
        return [
            OracleFailure(
                "determinism",
                f"fingerprint differs between resolutions ({label})",
                details={
                    "label": label,
                    "reference": reference.fingerprint(),
                    "other": other.fingerprint(),
                },
            )
        ]
    if reference.schedule.to_dict() != other.schedule.to_dict():
        return [
            OracleFailure(
                "determinism",
                f"schedules differ op-for-op despite equal fingerprints "
                f"({label})",
                details={"label": label},
            )
        ]
    return []
