"""Deterministic pseudo-random source for the fuzzing subsystem.

The whole point of ``repro fuzz --seed S`` is that two runs with the same
seed produce *identical* scenario streams and verdicts, on any platform
and any Python version.  :mod:`random` guarantees neither across versions
for all methods, so the fuzzer draws from this small splitmix64-based
generator instead (the same policy as the LCGs in
:mod:`repro.ir.circuit` and :mod:`repro.workloads.random_programs`).

:meth:`FuzzRng.fork` derives an independent child stream from a string
label, which is how scenario generation stays *prefix-stable*: scenario
``i`` of seed ``S`` is the same circuit whether the run asks for 10
iterations or 10,000.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, TypeVar

_T = TypeVar("_T")

_MASK = 0xFFFFFFFFFFFFFFFF


class FuzzRng:
    """splitmix64 generator with the handful of draws the fuzzer needs."""

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK

    def next_u64(self) -> int:
        """The next raw 64-bit draw."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
        return z ^ (z >> 31)

    def random(self) -> float:
        """A float uniform in [0, 1)."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def randint(self, low: int, high: int) -> int:
        """A uniform integer in the inclusive range [low, high]."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def choice(self, items: Sequence[_T]) -> _T:
        """One uniformly chosen element."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.next_u64() % len(items)]

    def weighted_choice(self, items: Sequence[_T], weights: Sequence[int]) -> _T:
        """One element chosen with integer weights."""
        if len(items) != len(weights) or not items:
            raise ValueError("items and weights must be equal-length, non-empty")
        total = sum(weights)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        roll = self.next_u64() % total
        for item, weight in zip(items, weights):
            if roll < weight:
                return item
            roll -= weight
        return items[-1]  # unreachable; appeases type checkers

    def shuffle(self, items: List[_T]) -> List[_T]:
        """In-place Fisher-Yates shuffle; returns ``items``."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_u64() % (i + 1)
            items[i], items[j] = items[j], items[i]
        return items

    def fork(self, label: str) -> "FuzzRng":
        """An independent child generator derived from ``label``.

        The child's seed hashes this generator's current state together
        with the label; forking the same generator state with distinct
        labels yields decorrelated, reproducible streams.
        """
        digest = hashlib.sha256(
            f"{self._state:#x}|{label}".encode()
        ).digest()
        return FuzzRng(int.from_bytes(digest[:8], "big"))


def scenario_rng(seed: int, index: int) -> FuzzRng:
    """The canonical per-scenario generator: stable in (seed, index) only."""
    return FuzzRng(seed).fork(f"scenario/{index}")
