"""Seeded scenario generation: random circuits x architectures x configs.

A :class:`Scenario` is one fuzz case: a circuit plus a fully resolved
:class:`~repro.compiler.config.CompilerConfig`, both valid *by
construction* (routing paths satisfiable for the register width, factory
counts the layout can port, angles the front end accepts).  The stream of
scenarios is a pure function of ``(seed, index)`` and prefix-stable: the
first N scenarios of a 10,000-iteration run are exactly the N of an
N-iteration run with the same seed.

Circuit families (the ``kind`` axis):

``clifford-t``
    Flat random streams over the full gate set, optional barriers and a
    measurement tail (:func:`repro.workloads.random_programs.random_mixed_stream`).
``rotation-layers``
    PPR-shaped layered programs
    (:func:`repro.workloads.random_programs.random_rotation_layers`).
``qasm-roundtrip``
    Either family pushed through ``qasm.loads(qasm.dumps(...))`` before
    compilation, so the parser/emitter pair sits inside the fuzz loop.
``edge-case``
    A rotating set of hand-shaped extremes: single-gate programs,
    barrier-only programs, swap chains, rotation ladders on one qubit,
    maximally and minimally provisioned layouts.
``qaoa-layers``
    QAOA ansätze over random problem graphs
    (:func:`repro.workloads.random_programs.random_qaoa_layers`) — the
    same qubit pairs contend for alignment every layer, the repeated
    -interaction pressure flat streams never produce.
``structured``
    Real algorithm instances at fuzz-able sizes: QFT up to 12 wires,
    CDKM adders, shift-add multipliers and QASMBench-shaped ripple
    ladders at several depth scales — deeper and wider than the
    edge-case family, with the DAG shapes of lowered production code.

Scenarios serialise to a self-contained JSON dict (QASM text + config
knobs) — the same form the repro artifacts and the committed regression
corpus use — and deserialise bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict

from ..arch.instruction_set import InstructionSet
from ..arch.layout import (
    LayoutError,
    build_layout,
    max_routing_paths,
    port_headroom,
)
from ..compiler.config import CompilerConfig
from ..ir import qasm
from ..ir.circuit import Circuit
from ..workloads.random_programs import (
    ROTATION_ANGLES,
    random_mixed_stream,
    random_qaoa_layers,
    random_rotation_layers,
)
from .rng import FuzzRng, scenario_rng

#: scenario kinds with their generation weights (out of the sum).
KIND_WEIGHTS = (
    ("clifford-t", 30),
    ("rotation-layers", 20),
    ("qasm-roundtrip", 15),
    ("edge-case", 15),
    ("qaoa-layers", 10),
    ("structured", 10),
)

KINDS = tuple(kind for kind, _ in KIND_WEIGHTS)

#: config knobs the fuzzer varies, in their serialized order.  The nested
#: instruction-set/synthesis models stay at paper defaults except for the
#: distillation time, which is serialized separately as ``distill_time``.
CONFIG_KEYS = (
    "routing_paths",
    "num_factories",
    "mapping",
    "lookahead",
    "eliminate_redundant_moves",
    "compute_unit_cost_time",
    "strategy",
)

#: distillation times the fuzzer samples (d units; 11.0 is the paper value).
DISTILL_TIMES = (11.0, 11.0, 11.0, 5.5, 22.0, 1.0)


@dataclass(frozen=True)
class Scenario:
    """One fuzz case: a circuit, a config, and its provenance.

    Attributes:
        kind: generator family (see module docstring).
        seed / index: position in the deterministic scenario stream;
            ``index`` is -1 for scenarios loaded from artifacts or built
            by the shrinker.
        circuit: the program the compiler will be fed.
        config: the fully resolved compiler configuration.
        via_qasm: the circuit passed through a QASM round-trip during
            generation (enables the round-trip fixpoint oracle).
    """

    kind: str
    seed: int
    index: int
    circuit: Circuit
    config: CompilerConfig
    via_qasm: bool = False

    @property
    def name(self) -> str:
        return f"s{self.index:05d}-{self.kind}" if self.index >= 0 else self.kind

    @property
    def key(self) -> str:
        """Content address of the scenario (circuit + config only).

        Unlike :func:`repro.sweep.jobs.job_key` this deliberately excludes
        the compiler revision: a scenario names the same *input* across
        code changes, so corpus files keep their identity over time.
        """
        return scenario_key(self.circuit, self.config)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Self-contained JSON form (QASM text + config knobs)."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "index": self.index,
            "name": self.circuit.name,
            "qasm": qasm.dumps(self.circuit),
            "config": config_to_dict(self.config),
            "via_qasm": self.via_qasm,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        circuit = qasm.loads(data["qasm"], name=data.get("name", "scenario"))
        return cls(
            kind=data.get("kind", "artifact"),
            seed=int(data.get("seed", 0)),
            index=int(data.get("index", -1)),
            circuit=circuit,
            config=config_from_dict(data.get("config", {})),
            via_qasm=bool(data.get("via_qasm", False)),
        )


def config_to_dict(config: CompilerConfig) -> Dict[str, Any]:
    """The fuzzer-visible knobs of a config, JSON-safe."""
    payload: Dict[str, Any] = {
        key: getattr(config, key) for key in CONFIG_KEYS
    }
    payload["distill_time"] = config.factory_config().distill_time
    return payload


def config_from_dict(data: Dict[str, Any]) -> CompilerConfig:
    """Rebuild a config from :func:`config_to_dict` output."""
    kwargs = {key: data[key] for key in CONFIG_KEYS if key in data}
    distill = float(data.get("distill_time", 11.0))
    isa = InstructionSet.paper()
    if distill != isa.distill:
        kwargs["instruction_set"] = isa.with_distill_time(distill)
    return CompilerConfig(**kwargs)


def scenario_key(circuit: Circuit, config: CompilerConfig) -> str:
    """SHA-256 content address over the QASM text and the config knobs.

    Only knobs that *differ from the CompilerConfig defaults* enter the
    hash: a config field added later (with a default) then leaves every
    existing corpus key unchanged, so committed artifacts keep their
    identity as CONFIG_KEYS grows.
    """
    defaults = config_to_dict(CompilerConfig())
    knobs = {
        key: value
        for key, value in config_to_dict(config).items()
        if value != defaults[key]
    }
    digest = hashlib.sha256()
    digest.update(qasm.dumps(circuit).encode())
    digest.update(b"\0")
    digest.update(json.dumps(knobs, sort_keys=True).encode())
    return digest.hexdigest()


# -- architecture / config sampling --------------------------------------------


@lru_cache(maxsize=256)
def feasible_routing_paths(num_qubits: int, requested: int) -> int:
    """The largest satisfiable ``r <= requested`` for this register width.

    ``build_layout`` can reject an ``r`` below the ``2k+2`` bound on
    non-square data blocks (the internal-line rebalance may not fit), so
    feasibility is probed constructively.
    """
    side = math.ceil(math.sqrt(num_qubits))
    r = min(max(2, requested), max_routing_paths(side))
    while r > 2:
        try:
            build_layout(num_qubits, r)
            return r
        except LayoutError:
            r -= 1
    build_layout(num_qubits, r)  # r=2 is feasible for every width >= 1
    return r


@lru_cache(maxsize=1024)
def feasible_factories(num_qubits: int, routing_paths: int, requested: int) -> int:
    """The largest factory count <= ``requested`` with fabric headroom.

    Validity by construction: a dense low-r block whose ports leave only
    ``num_qubits // 3`` or fewer parkable bus cells can wedge the
    displacement planner deep into a long program — that is an
    under-provisioned architecture, not a compiler defect, so the
    generator does not emit it.
    """
    layout = build_layout(num_qubits, routing_paths)
    k = max(1, requested)
    while k > 1 and port_headroom(layout, k) <= num_qubits // 3:
        k -= 1
    return k


def sample_config(rng: FuzzRng, num_qubits: int) -> CompilerConfig:
    """Draw a random-but-valid compiler configuration for the register."""
    side = math.ceil(math.sqrt(num_qubits))
    requested = rng.randint(2, min(max_routing_paths(side), 10))
    routing_paths = feasible_routing_paths(num_qubits, requested)
    kwargs: Dict[str, Any] = {
        "routing_paths": routing_paths,
        "num_factories": feasible_factories(
            num_qubits,
            routing_paths,
            rng.weighted_choice((1, 2, 3, 4), (45, 30, 15, 10)),
        ),
        "mapping": rng.weighted_choice(("auto", "grid", "snake"), (50, 25, 25)),
        "lookahead": rng.random() < 0.8,
        "eliminate_redundant_moves": rng.random() < 0.8,
        "compute_unit_cost_time": rng.random() < 0.05,
        "strategy": rng.weighted_choice(("default", "balanced"), (60, 40)),
    }
    distill = rng.choice(DISTILL_TIMES)
    if distill != 11.0:
        kwargs["instruction_set"] = InstructionSet.paper().with_distill_time(
            distill
        )
    return CompilerConfig(**kwargs)


# -- circuit families ----------------------------------------------------------


def _clifford_t_circuit(rng: FuzzRng, num_qubits: int) -> Circuit:
    num_gates = rng.randint(1, 60)
    barrier_every = rng.choice((None, None, None, 5, 8, 13))
    return random_mixed_stream(
        num_qubits,
        num_gates,
        seed=rng.randint(0, 2**31 - 1),
        barrier_every=barrier_every,
        measure_tail=rng.random() < 0.25,
    )


def _rotation_layer_circuit(rng: FuzzRng, num_qubits: int) -> Circuit:
    return random_rotation_layers(
        num_qubits,
        num_layers=rng.randint(1, 8),
        seed=rng.randint(0, 2**31 - 1),
        rotation_fraction=rng.choice((0.3, 0.5, 0.7, 1.0)),
        barrier_between=rng.random() < 0.3,
    )


def _edge_case_circuit(rng: FuzzRng, num_qubits: int) -> Circuit:
    shape = rng.randint(0, 5)
    qc = Circuit(num_qubits, name=f"edge{shape}_{num_qubits}q")
    if shape == 0:  # single gate
        qc.cx(0, num_qubits - 1) if rng.random() < 0.5 else qc.t(0)
    elif shape == 1:  # barriers only (no schedulable ops at all)
        qc.barrier()
        qc.barrier(0)
    elif shape == 2:  # long swap chain across the whole register
        for q in range(num_qubits - 1):
            qc.swap(q, q + 1)
    elif shape == 3:  # rotation ladder on one wire (serial magic states)
        for _ in range(rng.randint(3, 12)):
            qc.rz(rng.choice(ROTATION_ANGLES), 0)
    elif shape == 4:  # measure-heavy: whole register, twice
        qc.h(0)
        qc.measure_all()
        qc.barrier()
        qc.measure_all()
    else:  # all-to-one fan-in (port congestion around one target)
        for q in range(1, num_qubits):
            qc.cx(q, 0)
        qc.t(0)
    return qc


def _qaoa_circuit(rng: FuzzRng, num_qubits: int) -> Circuit:
    return random_qaoa_layers(
        num_qubits,
        num_layers=rng.randint(1, 4),
        seed=rng.randint(0, 2**31 - 1),
        edge_fraction=rng.choice((0.2, 0.4, 0.6)),
    )


def _structured_circuit(rng: FuzzRng) -> Circuit:
    """A real algorithm instance at fuzz-able size (deterministic in rng)."""
    from ..workloads.arithmetic import cdkm_adder, shift_add_multiplier
    from ..workloads.qasmbench import GateBudget, _ladder_circuit
    from ..workloads.qft import qft

    shape = rng.randint(0, 3)
    if shape == 0:  # larger QFT instances than the edge-case family emits
        return qft(rng.randint(6, 12), include_swaps=rng.random() < 0.3)
    if shape == 1:  # CDKM adders: 2..4 bits -> 6..10 qubits
        return cdkm_adder(rng.randint(2, 4))
    if shape == 2:  # shift-add multipliers: 2..3 bits -> 9..13 qubits
        return shift_add_multiplier(rng.randint(2, 3))
    # QASMBench-shaped ripple ladder, depth-scaled (deeper than Table I's
    # per-qubit density at scale 3).
    scale = rng.randint(1, 3)
    budget = GateBudget(rz=30 * scale, cx=24 * scale, sx=6 * scale, x=2 * scale)
    num_qubits = rng.randint(5, 10)
    return _ladder_circuit(
        num_qubits, budget, name=f"fuzz_ladder_{num_qubits}q_x{scale}"
    )


def generate_scenario(seed: int, index: int) -> Scenario:
    """Scenario ``index`` of the stream for ``seed`` (pure, prefix-stable)."""
    rng = scenario_rng(seed, index)
    kind = rng.weighted_choice(KINDS, tuple(w for _, w in KIND_WEIGHTS))
    num_qubits = rng.weighted_choice(
        (2, 3, 4, 5, 6, 8, 9, 12), (10, 15, 20, 15, 15, 10, 10, 5)
    )
    via_qasm = False
    if kind == "clifford-t":
        circuit = _clifford_t_circuit(rng, num_qubits)
    elif kind == "rotation-layers":
        circuit = _rotation_layer_circuit(rng, num_qubits)
    elif kind == "qasm-roundtrip":
        inner = (
            _clifford_t_circuit(rng, num_qubits)
            if rng.random() < 0.6
            else _rotation_layer_circuit(rng, num_qubits)
        )
        circuit = qasm.loads(qasm.dumps(inner), name=inner.name)
        via_qasm = True
    elif kind == "qaoa-layers":
        circuit = _qaoa_circuit(rng, num_qubits)
    elif kind == "structured":
        # structured families fix their own register width
        circuit = _structured_circuit(rng)
        num_qubits = circuit.num_qubits
    else:
        circuit = _edge_case_circuit(rng, num_qubits)
    config = sample_config(rng, num_qubits)
    return Scenario(
        kind=kind,
        seed=seed,
        index=index,
        circuit=circuit,
        config=config,
        via_qasm=via_qasm,
    )
