"""Self-contained JSON repro artifacts and the committed regression corpus.

When a fuzz run breaches an oracle, the runner writes one artifact per
failing scenario: the (minimized) scenario in its portable form — QASM
text plus config knobs — together with every oracle failure observed and
the provenance needed to regenerate it (`seed`, `index`, the original
pre-minimization key).  An artifact needs nothing but this repository to
replay::

    python -m repro fuzz --replay fuzz-repros/repro-<key>.json

Artifacts that expose real bugs graduate into ``tests/corpus/``: once the
bug is fixed the same file must replay *green*, and
``tests/test_fuzz_corpus.py`` replays every committed case as an ordinary
tier-1 test — the corpus is the fuzzer's regression memory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .generators import Scenario
from .oracles import OracleFailure, check_scenario

#: bump when the artifact layout changes incompatibly.
ARTIFACT_VERSION = 1

#: home of the regression corpus, anchored to the repository root (three
#: levels above this file: src/repro/fuzz/ -> repo) so corpus discovery
#: works from any working directory, not just the repo root.
CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "corpus"


def artifact_dict(
    scenario: Scenario,
    failures: Sequence[OracleFailure],
    original: Optional[Scenario] = None,
) -> Dict[str, Any]:
    """The JSON payload for one repro (minimized scenario + provenance)."""
    payload: Dict[str, Any] = {
        "artifact_version": ARTIFACT_VERSION,
        "key": scenario.key,
        "scenario": scenario.to_dict(),
        "failures": [failure.to_dict() for failure in failures],
    }
    if original is not None and original.key != scenario.key:
        payload["original"] = {
            "key": original.key,
            "seed": original.seed,
            "index": original.index,
            "kind": original.kind,
            "num_gates": len(original.circuit),
            "num_qubits": original.circuit.num_qubits,
        }
    return payload


def write_artifact(
    directory: Union[str, Path],
    scenario: Scenario,
    failures: Sequence[OracleFailure],
    original: Optional[Scenario] = None,
) -> Path:
    """Persist one repro under ``directory``; returns the file path.

    The filename is content-addressed (``repro-<key[:16]>.json``), so
    re-running a failing seed overwrites the same file instead of piling
    up duplicates.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"repro-{scenario.key[:16]}.json"
    with open(path, "w") as handle:
        json.dump(
            artifact_dict(scenario, failures, original=original),
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    return path


def load_artifact(path: Union[str, Path]) -> Tuple[Scenario, Dict[str, Any]]:
    """Read one artifact back into ``(scenario, full_payload)``."""
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("artifact_version")
    if version != ARTIFACT_VERSION:
        raise ValueError(
            f"{path}: artifact version {version!r} not supported "
            f"(expected {ARTIFACT_VERSION})"
        )
    return Scenario.from_dict(payload["scenario"]), payload


def replay_artifact(path: Union[str, Path]) -> List[OracleFailure]:
    """Re-run the full oracle bundle on a saved repro; returns failures.

    An empty list means the case is green — for corpus files that is the
    expected (and tested) outcome; for a fresh repro it means the bug no
    longer reproduces on this tree.
    """
    scenario, _ = load_artifact(path)
    _, failures = check_scenario(scenario)
    return failures


def corpus_paths(root: Union[str, Path, None] = None) -> List[Path]:
    """Every committed corpus case, sorted for deterministic iteration."""
    directory = Path(root) if root is not None else CORPUS_DIR
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))
