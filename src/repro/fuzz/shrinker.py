"""Scenario minimizer: reduce a failing fuzz case to its essence.

Given a scenario that breaches an oracle, the shrinker searches for the
smallest scenario that *still breaches the same oracle*, by repeatedly
trying reductions and keeping the ones that reproduce:

1. **gate deletion** — ddmin-style: remove halves, then quarters, down to
   single gates;
2. **register compaction** — drop unused wires and renumber the rest;
3. **config simplification** — walk every knob toward the library default
   (one factory, r=2/3/4, grid mapping, paper distillation time, ...);
4. **angle tidying** — replace exotic rotation angles with ``pi/4``.

Every candidate is re-checked with the full oracle bundle
(:func:`repro.fuzz.oracles.check_scenario`), so a reduction that merely
trades one failure for a different oracle's is rejected — the minimized
case demonstrably reproduces the original class of defect.  The search is
deterministic (no randomness) and bounded by ``budget`` oracle checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Optional, Sequence

from ..arch.instruction_set import InstructionSet
from ..compiler.config import CompilerConfig
from ..ir import gates as g
from ..ir.circuit import Circuit
from .generators import Scenario, feasible_routing_paths
from .oracles import OracleFailure, check_scenario

#: default ceiling on oracle checks during one minimization.
DEFAULT_BUDGET = 300


@dataclass
class ShrinkResult:
    """Outcome of one minimization run."""

    scenario: Scenario          #: the smallest reproducing scenario found
    failures: List[OracleFailure]  #: its failures (same anchor oracle)
    checks: int                 #: oracle checks spent
    reduced: bool               #: True when anything actually shrank

    @property
    def oracle(self) -> str:
        return self.failures[0].oracle if self.failures else ""


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True


def _with_gates(scenario: Scenario, gates: Sequence[g.Gate]) -> Scenario:
    circuit = Circuit(scenario.circuit.num_qubits, name=scenario.circuit.name)
    for gate in gates:
        circuit.append(gate)
    return replace(scenario, circuit=circuit, index=-1)


def _fails_same(
    scenario: Scenario, oracle: str, budget: _Budget
) -> Optional[List[OracleFailure]]:
    """The candidate's failures when it breaches ``oracle``, else None."""
    if not budget.take():
        return None
    try:
        _, failures = check_scenario(scenario)
    except Exception:  # noqa: BLE001 — a broken candidate is just "no repro"
        return None
    if any(f.oracle == oracle for f in failures):
        return failures
    return None


def _shrink_gates(scenario: Scenario, oracle: str, budget: _Budget):
    """One round of ddmin chunk deletion.

    Returns ``(smaller_scenario, its_failures)`` or None.
    """
    gates = list(scenario.circuit.gates)
    if not gates:
        return None
    chunk = max(1, len(gates) // 2)
    while chunk >= 1:
        start = 0
        while start < len(gates):
            candidate_gates = gates[:start] + gates[start + chunk:]
            if len(candidate_gates) == len(gates):
                break
            candidate = _with_gates(scenario, candidate_gates)
            failures = _fails_same(candidate, oracle, budget)
            if failures is not None:
                return candidate, failures
            start += chunk
        chunk //= 2
    return None


def _compact_qubits(scenario: Scenario) -> Optional[Scenario]:
    """Renumber onto the used wires only (keeps at least two)."""
    used = scenario.circuit.used_qubits()
    width = max(2, len(used))
    if width >= scenario.circuit.num_qubits:
        return None
    while len(used) < width:  # pad so the mapping stays total
        extra = next(
            q for q in range(scenario.circuit.num_qubits) if q not in used
        )
        used = sorted(used + [extra])
    mapping = {old: new for new, old in enumerate(used)}
    circuit = scenario.circuit.remap(mapping, num_qubits=width)
    config = _refit_config(scenario.config, width)
    return replace(scenario, circuit=circuit, config=config, index=-1)


def _refit_config(config: CompilerConfig, num_qubits: int) -> CompilerConfig:
    """Clamp the routing-path count to what the narrower register allows."""
    r = feasible_routing_paths(num_qubits, config.routing_paths)
    return config if r == config.routing_paths else config.with_(routing_paths=r)


def _config_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Single-knob simplifications toward the library defaults."""
    config = scenario.config
    if config.num_factories != 1:
        yield replace(scenario, config=config.with_(num_factories=1), index=-1)
    for r in (2, 3, 4):
        if r < config.routing_paths:
            feasible = feasible_routing_paths(scenario.circuit.num_qubits, r)
            if feasible != config.routing_paths:
                yield replace(
                    scenario,
                    config=config.with_(routing_paths=feasible),
                    index=-1,
                )
    if config.mapping != "grid":
        yield replace(scenario, config=config.with_(mapping="grid"), index=-1)
    if config.compute_unit_cost_time:
        yield replace(
            scenario, config=config.with_(compute_unit_cost_time=False), index=-1
        )
    if not config.lookahead:
        yield replace(scenario, config=config.with_(lookahead=True), index=-1)
    if not config.eliminate_redundant_moves:
        yield replace(
            scenario,
            config=config.with_(eliminate_redundant_moves=True),
            index=-1,
        )
    if config.factory_config().distill_time != 11.0:
        yield replace(
            scenario,
            config=config.with_(instruction_set=InstructionSet.paper()),
            index=-1,
        )


def _tidy_angles(scenario: Scenario) -> Optional[Scenario]:
    """Replace every exotic rotation angle with pi/4."""
    changed = False
    gates: List[g.Gate] = []
    for gate in scenario.circuit.gates:
        if gate.param is not None and abs(gate.param - math.pi / 4) > 1e-12:
            gates.append(g.Gate(gate.name, gate.qubits, param=math.pi / 4))
            changed = True
        else:
            gates.append(gate)
    if not changed:
        return None
    return _with_gates(scenario, gates)


def shrink(
    scenario: Scenario,
    failures: Sequence[OracleFailure],
    budget: int = DEFAULT_BUDGET,
    progress: Optional[Callable[[str], None]] = None,
) -> ShrinkResult:
    """Minimize ``scenario`` while its first failing oracle keeps failing."""
    if not failures:
        raise ValueError("nothing to shrink: the scenario has no failures")
    oracle = failures[0].oracle
    tracker = _Budget(budget)
    current = scenario
    current_failures = list(failures)
    reduced = False

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    improved = True
    while improved and tracker.spent < tracker.limit:
        improved = False

        shrunk = _shrink_gates(current, oracle, tracker)
        if shrunk is not None:
            smaller, current_failures = shrunk
            note(
                f"[shrink] gates {len(current.circuit)} -> "
                f"{len(smaller.circuit)}"
            )
            current, improved, reduced = smaller, True, True
            continue

        compacted = _compact_qubits(current)
        if compacted is not None:
            refreshed = _fails_same(compacted, oracle, tracker)
            if refreshed is not None:
                note(
                    f"[shrink] qubits {current.circuit.num_qubits} -> "
                    f"{compacted.circuit.num_qubits}"
                )
                current, current_failures = compacted, refreshed
                improved = reduced = True
                continue

        for candidate in _config_candidates(current):
            refreshed = _fails_same(candidate, oracle, tracker)
            if refreshed is not None:
                note("[shrink] simplified config")
                current, current_failures = candidate, refreshed
                improved = reduced = True
                break
        if improved:
            continue

        tidy = _tidy_angles(current)
        if tidy is not None:
            refreshed = _fails_same(tidy, oracle, tracker)
            if refreshed is not None:
                note("[shrink] tidied rotation angles")
                current, current_failures = tidy, refreshed
                improved = reduced = True

    return ShrinkResult(
        scenario=current,
        failures=current_failures,
        checks=tracker.spent,
        reduced=reduced,
    )
