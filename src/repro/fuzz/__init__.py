"""Scenario fuzzer and differential conformance harness.

Turns the validity engine (:mod:`repro.verify`) and the behavioural
fingerprints of the sweep/service layers into a continuously expanding
conformance suite: seeded generators produce random circuits x
architectures x compiler configs (:mod:`repro.fuzz.generators`), every
compiled schedule is held to a differential oracle bundle
(:mod:`repro.fuzz.oracles`), failures shrink to minimal self-contained
repros (:mod:`repro.fuzz.shrinker`, :mod:`repro.fuzz.artifact`), and the
minimized cases graduate into ``tests/corpus/`` as ordinary regression
tests.  Driven by ``repro fuzz`` (see :mod:`repro.fuzz.runner`).
"""

from .artifact import (
    ARTIFACT_VERSION,
    corpus_paths,
    load_artifact,
    replay_artifact,
    write_artifact,
)
from .generators import (
    KINDS,
    Scenario,
    config_from_dict,
    config_to_dict,
    generate_scenario,
    scenario_key,
)
from .oracles import (
    ORACLE_NAMES,
    OracleFailure,
    check_scenario,
    compare_results,
    static_oracles,
)
from .rng import FuzzRng, scenario_rng
from .runner import (
    FuzzReport,
    FuzzVerdict,
    MutationReport,
    run_fuzz,
    run_mutation_fuzz,
)
from .shrinker import ShrinkResult, shrink

__all__ = [
    "ARTIFACT_VERSION",
    "FuzzReport",
    "FuzzRng",
    "FuzzVerdict",
    "KINDS",
    "MutationReport",
    "ORACLE_NAMES",
    "OracleFailure",
    "Scenario",
    "ShrinkResult",
    "check_scenario",
    "compare_results",
    "config_from_dict",
    "config_to_dict",
    "corpus_paths",
    "generate_scenario",
    "load_artifact",
    "replay_artifact",
    "run_fuzz",
    "run_mutation_fuzz",
    "scenario_key",
    "scenario_rng",
    "shrink",
    "static_oracles",
    "write_artifact",
]
