"""Vectorized numpy kernels (bit-identical to their pure counterparts).

Every function here mirrors one pure-Python hot path exactly — same
results, same tie-breaking, same float comparisons — so the backend choice
can never change a schedule or a validation verdict.  See each docstring
for the parity argument.  All kernels bump :data:`repro.kernels.invocations`
so tests can prove they actually ran.

Grid kernels read the grid's flat byte buffers zero-copy
(``np.frombuffer`` over the occupancy / routability bytearrays) and share a
per-shape padded neighbour table (geometry only, so one table serves every
layout of that shape).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import invocations

#: (rows, cols) -> padded (n, 4) int32 neighbour table, -1 terminated.
_NBR_TABLES: Dict[Tuple[int, int], np.ndarray] = {}


def neighbor_table(grid) -> np.ndarray:
    """Padded flat-index neighbour table for the grid's shape (cached)."""
    key = (grid.rows, grid.cols)
    table = _NBR_TABLES.get(key)
    if table is None:
        if len(_NBR_TABLES) >= 64:
            _NBR_TABLES.clear()
        n = grid.rows * grid.cols
        table = np.full((n, 4), -1, dtype=np.int32)
        for i, nbrs in enumerate(grid._nbr_idx):
            table[i, : len(nbrs)] = nbrs
        _NBR_TABLES[key] = table
    return table


def occupancy_view(grid) -> np.ndarray:
    """Zero-copy uint8 view of the grid's occupancy bytearray."""
    return np.frombuffer(grid._occ_b, dtype=np.uint8)


def routable_view(grid) -> np.ndarray:
    """Zero-copy uint8 view of the grid's routability bytearray."""
    return np.frombuffer(grid._routable_b, dtype=np.uint8)


# ---------------------------------------------------------------------------
# Routing sweeps
# ---------------------------------------------------------------------------


def wave_paths_to_all(
    grid,
    src_i: int,
    goal_i: frozenset,
    avoid_i: frozenset,
) -> Tuple[Dict[int, Tuple[int, int, int]], List[int]]:
    """Free multi-goal sweep (``allow_occupied=False``) as a numpy wave.

    Parity with the pure BFS specialisation in
    :func:`repro.routing.dijkstra.find_paths_to_all` (itself proven
    bit-identical to the heap sweep): with occupied cells forbidden, cost
    equals length, and the heap expands each cost level in ascending
    flat-index order — so the first strict improver of any cell, and the
    first terminal arrival at any goal, is the *minimum-index* frontier
    parent adjacent to it.  The wave reproduces exactly that with a
    per-level lexsort on (target, parent) keeping the first parent per
    target.  Returns the goal arrival dict (goal -> (length, 0, parent))
    and the parent array for path reconstruction.
    """
    invocations["wave_to_all"] += 1
    nbr = neighbor_table(grid)
    n = nbr.shape[0]
    transit_ok = (routable_view(grid) != 0) & (occupancy_view(grid) == 0)
    if avoid_i:
        transit_ok[np.fromiter(avoid_i, dtype=np.int64)] = False
    goal_mask = np.zeros(n, dtype=bool)
    goal_mask[np.fromiter(goal_i, dtype=np.int64)] = True
    goal_done = np.zeros(n, dtype=bool)
    seen = np.zeros(n, dtype=bool)
    seen[src_i] = True
    parent = np.full(n, -1, dtype=np.int64)
    final: Dict[int, Tuple[int, int, int]] = {}
    unsettled = len(goal_i)
    frontier = np.array([src_i], dtype=np.int64)
    length = 0

    while frontier.size and unsettled:
        length += 1
        targets = nbr[frontier].ravel()
        parents = np.repeat(frontier, 4)
        inside = targets >= 0
        targets = targets[inside]
        parents = parents[inside]
        # First parent per target in ascending-parent order == the pure
        # sweep's first-improver (frontier is kept sorted ascending).
        order = np.lexsort((parents, targets))
        targets = targets[order]
        parents = parents[order]
        keep = np.ones(targets.size, dtype=bool)
        keep[1:] = targets[1:] != targets[:-1]
        targets = targets[keep]
        parents = parents[keep]
        # Terminal goal arrivals: destination semantics, first level wins.
        arrived = goal_mask[targets] & ~goal_done[targets]
        if arrived.any():
            hit_t = targets[arrived]
            goal_done[hit_t] = True
            unsettled -= hit_t.size
            for t, p in zip(hit_t.tolist(), parents[arrived].tolist()):
                final[t] = (length, 0, p)
        # Transit expansion over free routable non-avoided cells.
        grow = transit_ok[targets] & ~seen[targets]
        frontier = targets[grow]  # sorted ascending by construction
        parent[frontier] = parents[grow]
        seen[frontier] = True

    return final, parent.tolist()


def reachable_rings(grid, src_i: int) -> Iterator[Tuple[int, List[int]]]:
    """BFS distance rings over routable cells (occupied ones traversable).

    Yields ``(distance, sorted cell indices)`` per ring, mirroring the
    deque BFS in :func:`repro.routing.dijkstra.reachable_free_cells`: the
    traversable set (routable, occupancy ignored) and the ring membership
    are identical, and the caller's final ``(distance, position)`` sort
    makes in-ring discovery order irrelevant.
    """
    invocations["wave_reachable"] += 1
    nbr = neighbor_table(grid)
    routable = routable_view(grid) != 0
    seen = np.zeros(nbr.shape[0], dtype=bool)
    seen[src_i] = True
    frontier = np.array([src_i], dtype=np.int64)
    dist = 0
    while frontier.size:
        yield dist, frontier.tolist()
        targets = nbr[frontier].ravel()
        targets = targets[targets >= 0]
        targets = np.unique(targets)
        grow = routable[targets] & ~seen[targets]
        frontier = targets[grow]
        seen[frontier] = True
        dist += 1


# ---------------------------------------------------------------------------
# Replay-validation interval checks
# ---------------------------------------------------------------------------


def timelines_clean(
    qubits: Sequence[int],
    starts: Sequence[float],
    ends: Sequence[float],
    eps: float,
) -> bool:
    """True when no qubit timeline overlaps (green fast path).

    Same comparison as the pure scan — each (op, qubit) slot against the
    *immediately preceding* op on that qubit in schedule order, via a
    stable sort by qubit — with identical float arithmetic
    (``start + eps < prev_end``).  The validator falls back to the pure
    scan to build the report whenever this returns False.
    """
    invocations["intervals_timeline"] += 1
    q = np.asarray(qubits, dtype=np.int64)
    if q.size < 2:
        return True
    s = np.asarray(starts, dtype=np.float64)
    e = np.asarray(ends, dtype=np.float64)
    order = np.argsort(q, kind="stable")
    q = q[order]
    s = s[order]
    e = e[order]
    same = q[1:] == q[:-1]
    return not bool((same & (s[1:] + eps < e[:-1])).any())


def cell_conflicts_clean(
    cells: Sequence[int],
    starts: Sequence[float],
    ends: Sequence[float],
    uids: Sequence[int],
    eps: float,
) -> bool:
    """True when no cell footprint overlaps (green fast path).

    Mirrors the pure scan exactly: per cell, spans sorted by
    ``(start, end, uid)`` and each start compared against the running max
    end of earlier spans.  The segmented running max is computed per cell
    group with ``np.maximum.accumulate`` on the raw float ends — no
    arithmetic transformation — so every comparison is bit-identical.
    """
    invocations["intervals_cells"] += 1
    c = np.asarray(cells, dtype=np.int64)
    if c.size < 2:
        return True
    s = np.asarray(starts, dtype=np.float64)
    e = np.asarray(ends, dtype=np.float64)
    u = np.asarray(uids, dtype=np.int64)
    order = np.lexsort((u, e, s, c))
    c = c[order]
    s = s[order]
    e = e[order]
    boundaries = np.flatnonzero(np.concatenate(([True], c[1:] != c[:-1])))
    edges = np.append(boundaries, c.size)
    for a, b in zip(edges[:-1], edges[1:]):
        if b - a < 2:
            continue
        running_end = np.maximum.accumulate(e[a : b - 1])
        if bool((s[a + 1 : b] + eps < running_end).any()):
            return False
    return True


def min_start_clean(
    starts: Sequence[float],
    min_starts: Sequence[float],
    eps: float,
) -> bool:
    """True when every op honours its release floor (green fast path)."""
    invocations["intervals_min_start"] += 1
    s = np.asarray(starts, dtype=np.float64)
    m = np.asarray(min_starts, dtype=np.float64)
    return not bool((s + eps < m).any())


# ---------------------------------------------------------------------------
# Redundant-move scan
# ---------------------------------------------------------------------------


def redundant_move_pairs(ops, is_move_fn) -> List[Tuple[int, int]]:
    """Array-accelerated inverse-move-pair scan.

    Equivalent to the pure scan in
    :mod:`repro.scheduling.redundant_moves`: non-move activity (the
    ``last_use`` / ``last_touch`` bookkeeping that invalidates pending
    pairs) is batched into sorted event arrays queried with one
    ``np.searchsorted`` per condition over *all* moves at once, so the
    sequential part of the scan runs over moves only.  Move-vs-move cell
    touches — which depend on which earlier pairs cancelled — stay in that
    sequential part, exactly as the pure scan interleaves them.
    """
    invocations["redundant_moves"] += 1
    n_ops = len(ops)
    cell_ids: Dict[Tuple[int, int], int] = {}

    def cell_id(cell) -> int:
        cid = cell_ids.get(cell)
        if cid is None:
            cid = len(cell_ids)
            cell_ids[cell] = cid
        return cid

    move_idx: List[int] = []
    move_qubit: List[int] = []
    move_origin: List[int] = []
    move_dest: List[int] = []
    nm_use: List[int] = []  # composite key qubit * (n_ops + 1) + idx
    nm_touch: List[int] = []  # composite key cell_id * (n_ops + 1) + idx
    base = n_ops + 1
    for idx, op in enumerate(ops):
        if is_move_fn(op):
            (qubit,) = op.qubits
            move_idx.append(idx)
            move_qubit.append(qubit)
            move_origin.append(cell_id(op.cells[0]))
            move_dest.append(cell_id(op.cells[1]))
        else:
            for qubit in op.qubits:
                nm_use.append(qubit * base + idx)
            for cell in op.cells:
                nm_touch.append(cell_id(cell) * base + idx)

    if not move_idx:
        return []

    use_keys = np.asarray(nm_use, dtype=np.int64)
    use_keys.sort()
    touch_keys = np.asarray(nm_touch, dtype=np.int64)
    touch_keys.sort()

    def last_before(keys: np.ndarray, owners: np.ndarray, at: np.ndarray) -> np.ndarray:
        """Latest event index of ``owners`` strictly before op ``at``."""
        slot = np.searchsorted(keys, owners * base + at) - 1
        hit = keys[np.maximum(slot, 0)]
        valid = (slot >= 0) & (hit // base == owners)
        return np.where(valid, hit % base, -1)

    m_idx = np.asarray(move_idx, dtype=np.int64)
    m_qubit = np.asarray(move_qubit, dtype=np.int64)
    m_origin = np.asarray(move_origin, dtype=np.int64)
    m_dest = np.asarray(move_dest, dtype=np.int64)
    nm_last_use = last_before(use_keys, m_qubit, m_idx).tolist()
    nm_touch_origin = last_before(touch_keys, m_origin, m_idx).tolist()
    nm_touch_dest = last_before(touch_keys, m_dest, m_idx).tolist()

    pairs: List[Tuple[int, int]] = []
    claimed: set = set()
    pending: Dict[int, Tuple[int, int, int]] = {}
    move_touch: Dict[int, int] = {}
    move_idx_l = move_idx
    move_qubit_l = move_qubit
    move_origin_l = move_origin
    move_dest_l = move_dest
    for row in range(len(move_idx_l)):
        idx = move_idx_l[row]
        qubit = move_qubit_l[row]
        origin = move_origin_l[row]
        dest = move_dest_l[row]
        prior = pending.get(qubit)
        if prior is not None:
            pidx = prior[0]
            if (
                prior[1] == dest
                and prior[2] == origin
                and nm_last_use[row] <= pidx
                and max(nm_touch_origin[row], move_touch.get(origin, -1)) <= pidx
                and max(nm_touch_dest[row], move_touch.get(dest, -1)) <= pidx
                and pidx not in claimed
            ):
                pairs.append((pidx, idx))
                claimed.add(pidx)
                claimed.add(idx)
                pending.pop(qubit, None)
                continue
        pending[qubit] = (idx, origin, dest)
        move_touch[origin] = idx
        move_touch[dest] = idx
    return pairs
