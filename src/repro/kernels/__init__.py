"""Backend-selectable compute kernels (pure Python vs vectorized numpy).

The compiler's hot phases — multi-goal routing sweeps, reachability floods,
replay-validation interval checks and the redundant-move scan — each exist
in two interchangeable implementations:

* **pure** — the always-available pure-Python reference (the default code
  path throughout the package);
* **numpy** — vectorized array kernels in :mod:`repro.kernels.numpy_impl`,
  used when numpy is importable.

Every kernel pair is *bit-identical*: same results, same tie-breaks, same
behavioural fingerprints.  The numpy side is therefore a pure speed play
and the fuzz harness runs a backend-parity oracle over both.

Selection precedence (first non-"auto" wins):

1. an explicit spec passed by the caller (e.g. ``CompilerConfig.backend``
   pinned through :func:`use_backend`, or ``repro bench --backend``);
2. the ``REPRO_BACKEND`` environment variable (``pure`` or ``numpy``);
3. ``auto``: numpy when importable *and* the problem is large enough to
   amortise array setup (per-kernel size thresholds below) — small inputs
   stay on the pure path, which is faster there.

Pinning ``numpy`` on a machine without numpy is an explicit error, never a
silent fallback; :data:`invocations` counts each numpy-kernel call so tests
can prove the backend really ran.  Backend choice must never leak into
sweep cache keys (``config_fingerprint`` strips it).
"""

from __future__ import annotations

import os
from collections import Counter
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

BACKENDS: Tuple[str, ...] = ("pure", "numpy")

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

#: numpy-kernel call counters keyed by kernel name.  Tests assert on these
#: to prove the numpy backend is exercised (not silently falling back).
invocations: Counter = Counter()

#: 'auto' uses the numpy wave sweeps only on grids at least this large;
#: below it the pure heap/BFS beats array setup overhead.
WAVE_MIN_CELLS = 2048
#: 'auto' uses the numpy interval kernels from this many intervals up.
INTERVAL_MIN_OPS = 2048
#: 'auto' uses the numpy redundant-move scan from this many ops up.
#: High on purpose: the kernel vectorizes the last-use/last-touch
#: precomputation but keeps a sequential per-move loop, and measured
#: crossover vs the pure scan sits far above typical schedule sizes
#: (at ~15k ops pure wins ~2x).  Pinning ``numpy`` still exercises it.
REDUNDANT_MIN_OPS = 50_000

_forced: Optional[str] = None


def available() -> Tuple[str, ...]:
    """Backends usable in this environment (``pure`` always is)."""
    return BACKENDS if HAVE_NUMPY else ("pure",)


def _pinned(spec: Optional[str]) -> Optional[str]:
    """The first non-auto spec in precedence order, or None (= auto)."""
    for candidate in (spec, _forced, os.environ.get("REPRO_BACKEND")):
        if candidate not in (None, "", "auto"):
            return candidate
    return None


def _validate(spec: str) -> str:
    if spec not in BACKENDS:
        raise ValueError(
            f"unknown backend {spec!r}; expected 'auto', 'pure' or 'numpy'"
        )
    if spec == "numpy" and not HAVE_NUMPY:
        raise ValueError(
            "backend 'numpy' requested but numpy is not importable "
            "(install the '[fast]' extra, or use backend 'pure'/'auto')"
        )
    return spec


def resolve(spec: Optional[str] = None) -> str:
    """Resolve a backend spec to ``'pure'`` or ``'numpy'``.

    ``None``/``"auto"`` fall through the precedence chain; an unpinned auto
    resolves to numpy whenever it is importable (per-call size gating is
    :func:`choose`'s job).  Raises ``ValueError`` for unknown specs and for
    an explicit ``numpy`` pin without numpy installed.
    """
    pinned = _pinned(spec)
    if pinned is None:
        return "numpy" if HAVE_NUMPY else "pure"
    return _validate(pinned)


def choose(n_items: int, threshold: int, spec: Optional[str] = None) -> str:
    """Backend for one kernel call of size ``n_items``.

    A pinned backend always wins; unpinned ``auto`` takes numpy only when
    ``n_items`` reaches ``threshold`` (one of the module constants).
    """
    pinned = _pinned(spec)
    if pinned is not None:
        return _validate(pinned)
    if HAVE_NUMPY and n_items >= threshold:
        return "numpy"
    return "pure"


def set_backend(spec: Optional[str]) -> None:
    """Pin the process-wide backend (``None``/``"auto"`` unpins)."""
    global _forced
    if spec not in (None, "", "auto"):
        _validate(spec)
        globals()["_forced"] = spec
    else:
        globals()["_forced"] = None


@contextmanager
def use_backend(spec: Optional[str]) -> Iterator[str]:
    """Scoped backend pin; yields the resolved backend name.

    ``"auto"``/``None`` expresses no preference and leaves any surrounding
    pin (an enclosing ``use_backend``, or ``set_backend``) in force rather
    than clearing it.
    """
    global _forced
    previous = _forced
    if spec not in (None, "", "auto"):
        set_backend(spec)
    try:
        yield resolve()
    finally:
        globals()["_forced"] = previous
