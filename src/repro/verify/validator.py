"""Replay validator: independently re-check a compiled :class:`Schedule`.

The scheduler and the Sec. V-D re-timing pass each keep their own resource
bookkeeping; nothing here reuses it.  The validator walks the schedule
op-by-op and re-derives, from first principles, every invariant an
executable lattice-surgery schedule must satisfy:

* per-qubit timelines are exclusive and in schedule order;
* every cell in an op's :meth:`~repro.scheduling.events.ScheduledOp.resource_cells`
  footprint is locked exclusively for the op's duration;
* ops never start before their declared external release (``min_start``);
* the source circuit's DAG order is respected — wire dependencies per
  shared qubit, barrier pseudo-edges by full serialisation;
* every DAG node materialised into at least one op, and no op references a
  gate outside the DAG;
* magic states are conserved per factory: the k-th earliest consumption
  attributed to a factory cannot start before ``k * distill_time`` (the
  distillation pipeline's hard lower bound — a state consumed before its
  round completes, or consumed twice, compresses the sequence below it),
  and the total number of consumptions matches the circuit's T-count.

Use :func:`validate_schedule` for raw schedules, or
:func:`validate_result` to check a full
:class:`~repro.compiler.result.CompilationResult` against the circuit and
config that produced it.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .. import kernels
from ..arch.grid import Position
from ..ir import gates as g
from ..ir.circuit import Circuit
from ..ir.dag import DagCircuit
from ..perf.profiler import profiled
from ..scheduling.events import Schedule, ScheduledOp
from .report import ValidationError, ValidationReport, Violation

#: tolerance for float time comparisons (schedule times are sums of small
#: rational latencies, so anything below 1e-6 is noise, not a conflict).
EPS = 1e-6

#: gate mnemonics whose scheduled op must lock at least one ancilla cell
#: even without DAG context (H/SX need a neighbour, CX/CZ a merge ancilla,
#: T/Tdg a magic-state drop cell).
_CELL_REQUIRED = frozenset({g.H, g.SX, g.SXDG, g.CX, g.CZ, g.T, g.TDG})


def env_forced() -> bool:
    """True when ``REPRO_VALIDATE`` forces validation (debug assertion mode).

    The single source of truth for the env-var convention — the compile
    pipeline and the post-``optimize_schedule`` assertion both consult it.
    """
    return os.environ.get("REPRO_VALIDATE", "") not in ("", "0")


@profiled("verify.replay")
def validate_schedule(
    schedule: Schedule,
    circuit: Optional[Circuit] = None,
    dag: Optional[DagCircuit] = None,
    distill_times: Optional[Mapping[int, float]] = None,
    expected_t_states: Optional[int] = None,
    label: str = "",
    eps: float = EPS,
) -> ValidationReport:
    """Run every applicable check; returns the structured report.

    Args:
        schedule: the schedule under test.
        circuit: source program; enables the DAG-dependency, barrier and
            coverage checks (ignored when ``dag`` is given directly).
        dag: pre-built dependency DAG of the source program.
        distill_times: factory index -> distillation round time; enables the
            per-factory magic-state pipeline check.
        expected_t_states: total magic states the circuit consumes under
            the synthesis model; enables the conservation count check.
        label: free-form tag carried into the report (e.g. ``"raw"``).
        eps: float comparison tolerance.
    """
    if dag is None and circuit is not None:
        dag = DagCircuit(circuit)
    validator = ScheduleValidator(schedule, eps=eps, label=label)
    validator.check_structure()
    validator.check_footprints(dag=dag)
    validator.check_timelines()
    validator.check_cell_conflicts()
    validator.check_min_start()
    if dag is not None:
        validator.check_dependencies(dag)
    if distill_times is not None or expected_t_states is not None:
        validator.check_magic_states(distill_times or {}, expected_t_states)
    return validator.report


def config_distill_times(config) -> Dict[int, float]:
    """Factory index -> distillation time, as the validator consumes it.

    The single derivation shared by :func:`validate_result`, the compile
    pipeline's raw-stage assertion and the mutation self-tests.
    """
    factory_config = config.factory_config()
    return {
        index: factory_config.distill_time
        for index in range(config.num_factories)
    }


def validate_result(result, circuit: Circuit, config, label: str = "") -> ValidationReport:
    """Validate a :class:`CompilationResult` against its circuit and config."""
    return validate_schedule(
        result.schedule,
        circuit=circuit,
        distill_times=config_distill_times(config),
        expected_t_states=result.t_states,
        label=label,
    )


class ScheduleValidator:
    """Stateful runner behind :func:`validate_schedule`.

    Each ``check_*`` method appends to :attr:`report` and records how many
    facts it examined, so a green report also shows the checks actually ran.
    """

    def __init__(self, schedule: Schedule, eps: float = EPS, label: str = "") -> None:
        self.schedule = schedule
        self.eps = eps
        self.report = ValidationReport(label=label, ops_checked=len(schedule.ops))

    def _flag(self, **kwargs) -> None:
        self.report.add(Violation(**kwargs))

    # -- structural sanity ---------------------------------------------------

    def check_structure(self) -> None:
        """Uids strictly increasing, times finite and non-negative."""
        prev_uid: Optional[int] = None
        for op in self.schedule.ops:
            if prev_uid is not None and op.uid <= prev_uid:
                self._flag(
                    code="structure", uid=op.uid, other_uid=prev_uid,
                    message=f"op uid {op.uid} not increasing after {prev_uid}",
                )
            prev_uid = op.uid
            if not all(
                math.isfinite(t) for t in (op.start, op.duration, op.min_start)
            ):
                # NaN/inf defeats every later comparison (NaN compares
                # False everywhere), so flag it here and move on
                self._flag(
                    code="structure", uid=op.uid,
                    message=(
                        f"op {op.uid} has non-finite times "
                        f"(start={op.start}, duration={op.duration}, "
                        f"min_start={op.min_start})"
                    ),
                )
                continue
            if op.start < -self.eps:
                self._flag(
                    code="structure", uid=op.uid, time=op.start,
                    message=f"op {op.uid} starts before t=0 ({op.start})",
                )
            if op.duration < 0:
                self._flag(
                    code="structure", uid=op.uid,
                    message=f"op {op.uid} has negative duration {op.duration}",
                )
        self.report.checks["structure"] = len(self.schedule.ops)

    def check_footprints(self, dag: Optional[DagCircuit] = None) -> None:
        """Cell footprints are structurally complete for the op's kind.

        A shrunk footprint (a move without its cell pair, an
        ancilla-consuming gate with no locked cell) would make the
        exclusivity checks vacuously pass, so it is a violation in itself.
        """
        checked = 0
        for op in self.schedule.ops:
            checked += 1
            if op.kind in ("move", "evict", "restore", "route"):
                if len(op.cells) != 2:
                    self._flag(
                        code="footprint", uid=op.uid, gate_index=op.gate_index,
                        message=(
                            f"{op.kind} op {op.uid} must carry an "
                            f"(origin, dest) cell pair, has {len(op.cells)}"
                        ),
                    )
                continue
            if op.kind != "gate":
                continue
            needs_cell = op.name in _CELL_REQUIRED
            if not needs_cell and dag is not None and op.gate_index is not None:
                if 0 <= op.gate_index < len(dag.nodes):
                    gate = dag.node(op.gate_index).gate
                    # a T-like rotation consumes a magic state per op, so
                    # each of its consume ops must lock a drop cell
                    needs_cell = gate.is_t_like and gate.name != g.SWAP
            if needs_cell and not op.cells:
                self._flag(
                    code="footprint", uid=op.uid, gate_index=op.gate_index,
                    message=(
                        f"gate op {op.uid} ({op.name}) locks no cell but "
                        f"requires an ancilla/drop footprint"
                    ),
                )
        self.report.checks["footprint"] = checked

    # -- resource exclusivity ------------------------------------------------

    def check_timelines(self) -> None:
        """Per-qubit: ops in schedule order, never overlapping in time."""
        ops = self.schedule.ops
        if kernels.choose(len(ops), kernels.INTERVAL_MIN_OPS) == "numpy":
            from ..kernels import numpy_impl

            qubits: List[int] = []
            starts: List[float] = []
            ends: List[float] = []
            for op in ops:
                s = op.start
                e = s + op.duration
                for qubit in op.qubits:
                    qubits.append(qubit)
                    starts.append(s)
                    ends.append(e)
            if numpy_impl.timelines_clean(qubits, starts, ends, self.eps):
                self.report.checks["timeline"] = len(qubits)
                return
            # Violations exist: rebuild the report with the pure scan so
            # messages and ordering match the pure backend exactly.
        last: Dict[int, ScheduledOp] = {}
        intervals = 0
        for op in self.schedule.ops:
            for qubit in op.qubits:
                prev = last.get(qubit)
                if prev is not None and op.start + self.eps < prev.end:
                    self._flag(
                        code="timeline", uid=op.uid, other_uid=prev.uid,
                        qubit=qubit, time=op.start, gate_index=op.gate_index,
                        message=(
                            f"qubit {qubit} double-booked: op {op.uid} "
                            f"starts at {op.start} before op {prev.uid} "
                            f"ends at {prev.end}"
                        ),
                    )
                last[qubit] = op
                intervals += 1
        self.report.checks["timeline"] = intervals

    def check_cell_conflicts(self) -> None:
        """Per-cell: resource footprints never overlap in time."""
        ops = self.schedule.ops
        if kernels.choose(len(ops), kernels.INTERVAL_MIN_OPS) == "numpy":
            from ..kernels import numpy_impl

            cell_ids: Dict[Position, int] = {}
            cells: List[int] = []
            starts: List[float] = []
            ends: List[float] = []
            uids: List[int] = []
            for op in ops:
                if op.duration <= 0:
                    continue
                s = op.start
                e = s + op.duration
                for cell in op.resource_cells():
                    cid = cell_ids.get(cell)
                    if cid is None:
                        cid = len(cell_ids)
                        cell_ids[cell] = cid
                    cells.append(cid)
                    starts.append(s)
                    ends.append(e)
                    uids.append(op.uid)
            if numpy_impl.cell_conflicts_clean(
                cells, starts, ends, uids, self.eps
            ):
                self.report.checks["cell-conflict"] = len(cells)
                return
            # Violations exist: fall back to the pure scan for the report.
        by_cell: Dict[Position, List[Tuple[float, float, int]]] = {}
        for op in self.schedule.ops:
            if op.duration <= 0:
                continue
            for cell in op.resource_cells():
                by_cell.setdefault(cell, []).append((op.start, op.end, op.uid))
        intervals = 0
        for cell, spans in by_cell.items():
            spans.sort()
            intervals += len(spans)
            prev_end, prev_uid = -float("inf"), -1
            for start, end, uid in spans:
                if start + self.eps < prev_end:
                    self._flag(
                        code="cell-conflict", uid=uid, other_uid=prev_uid,
                        cell=cell, time=start,
                        message=(
                            f"cell {cell} locked twice: op {uid} starts at "
                            f"{start} before op {prev_uid} releases at {prev_end}"
                        ),
                    )
                if end > prev_end:
                    prev_end, prev_uid = end, uid
        self.report.checks["cell-conflict"] = intervals

    def check_min_start(self) -> None:
        """External release times (``min_start`` floors) are honoured."""
        ops = self.schedule.ops
        if kernels.choose(len(ops), kernels.INTERVAL_MIN_OPS) == "numpy":
            from ..kernels import numpy_impl

            if numpy_impl.min_start_clean(
                [op.start for op in ops],
                [op.min_start for op in ops],
                self.eps,
            ):
                self.report.checks["min-start"] = len(ops)
                return
            # Violations exist: fall back to the pure scan for the report.
        for op in self.schedule.ops:
            if op.start + self.eps < op.min_start:
                self._flag(
                    code="min-start", uid=op.uid, time=op.start,
                    gate_index=op.gate_index,
                    message=(
                        f"op {op.uid} starts at {op.start} before its "
                        f"release time {op.min_start}"
                    ),
                )
        self.report.checks["min-start"] = len(self.schedule.ops)

    # -- program order -------------------------------------------------------

    def check_dependencies(self, dag: DagCircuit) -> None:
        """DAG order: wire edges per shared qubit, barrier edges in full.

        A wire edge only constrains the qubits the two gates share (moving
        an operand of the successor early is legal while the predecessor
        still executes on its other operands).  A barrier edge links gates
        on disjoint qubits, so it serialises *everything*: no op of the
        successor node may start before the predecessor node has fully
        finished.
        """
        ops_by_node: Dict[int, List[ScheduledOp]] = {}
        for op in self.schedule.ops:
            if op.gate_index is None:
                self._flag(
                    code="coverage", uid=op.uid,
                    message=f"op {op.uid} carries no gate index",
                )
                continue
            if not 0 <= op.gate_index < len(dag.nodes):
                self._flag(
                    code="coverage", uid=op.uid, gate_index=op.gate_index,
                    message=(
                        f"op {op.uid} references gate {op.gate_index} "
                        f"outside the DAG ({len(dag.nodes)} nodes)"
                    ),
                )
                continue
            ops_by_node.setdefault(op.gate_index, []).append(op)

        for node in dag.nodes:
            if node.index not in ops_by_node:
                self._flag(
                    code="coverage", gate_index=node.index,
                    message=(
                        f"DAG node {node.index} ({node.gate}) produced no "
                        f"scheduled op"
                    ),
                )

        edges = 0
        for node in dag.nodes:
            node_ops = ops_by_node.get(node.index)
            if not node_ops:
                continue
            for pred_index in node.predecessors:
                pred_ops = ops_by_node.get(pred_index)
                if not pred_ops:
                    continue
                edges += 1
                if pred_index in node.barrier_predecessors:
                    self._check_barrier_edge(dag, pred_index, pred_ops, node, node_ops)
                else:
                    self._check_wire_edge(dag, pred_index, pred_ops, node, node_ops)
        self.report.checks["dependency"] = edges

    def _check_wire_edge(self, dag, pred_index, pred_ops, node, node_ops) -> None:
        shared = set(node.qubits) & set(dag.node(pred_index).qubits)
        for qubit in shared:
            pred_end = max(
                (op.end for op in pred_ops if qubit in op.qubits), default=None
            )
            node_start = min(
                (op.start for op in node_ops if qubit in op.qubits), default=None
            )
            if pred_end is None or node_start is None:
                continue
            if node_start + self.eps < pred_end:
                first = min(
                    (op for op in node_ops if qubit in op.qubits),
                    key=lambda op: op.start,
                )
                self._flag(
                    code="dependency", uid=first.uid, qubit=qubit,
                    gate_index=node.index, time=node_start,
                    message=(
                        f"gate {node.index} runs on qubit {qubit} at "
                        f"{node_start}, before predecessor gate "
                        f"{pred_index} finishes at {pred_end}"
                    ),
                )

    def _check_barrier_edge(self, dag, pred_index, pred_ops, node, node_ops) -> None:
        pred_end = max(op.end for op in pred_ops)
        node_start = min(op.start for op in node_ops)
        if node_start + self.eps < pred_end:
            first = min(node_ops, key=lambda op: op.start)
            self._flag(
                code="barrier", uid=first.uid, gate_index=node.index,
                time=node_start,
                message=(
                    f"gate {node.index} starts at {node_start}, crossing "
                    f"the barrier behind gate {pred_index} "
                    f"(finishes at {pred_end})"
                ),
            )

    # -- magic-state accounting ----------------------------------------------

    def check_magic_states(
        self,
        distill_times: Mapping[int, float],
        expected_t_states: Optional[int] = None,
    ) -> None:
        """Per-factory distillation pipeline bound plus global conservation.

        Each consume op declares its source factory (the scheduler tags it
        in ``note``).  For one factory producing a state every
        ``distill_time``, the k-th earliest consumption cannot start before
        ``k * distill_time`` no matter how collections interleave — the
        pipeline has produced only k-1 states before that.  This bound
        deliberately ignores output-buffer back-pressure (which only delays
        states further), so it can never flag a feasible schedule.  A state
        consumed before its round completes, or one distilled state consumed
        by two gates, compresses the sequence below the bound and is caught.
        """
        consumes: Dict[int, List[ScheduledOp]] = {}
        total = 0
        for op in self.schedule.ops:
            if op.kind != "gate":
                continue
            factory = op.magic_factory()
            if factory is None:
                continue
            total += 1
            if factory not in distill_times:
                self._flag(
                    code="magic-count", uid=op.uid, gate_index=op.gate_index,
                    message=(
                        f"op {op.uid} consumes a state from unknown "
                        f"factory f{factory}"
                    ),
                )
                continue
            consumes.setdefault(factory, []).append(op)

        for factory, ops in sorted(consumes.items()):
            distill = distill_times[factory]
            ordered = sorted(ops, key=lambda op: (op.start, op.uid))
            for k, op in enumerate(ordered, start=1):
                floor = k * distill
                if op.start + self.eps < floor:
                    self._flag(
                        code="magic-pipeline", uid=op.uid, time=op.start,
                        gate_index=op.gate_index,
                        message=(
                            f"factory f{factory}: consumption #{k} starts at "
                            f"{op.start}, before the pipeline can have "
                            f"produced {k} states ({floor})"
                        ),
                    )

        if expected_t_states is not None and total != expected_t_states:
            self._flag(
                code="magic-count",
                message=(
                    f"{total} magic-state consumption(s) scheduled but the "
                    f"circuit requires {expected_t_states}"
                ),
            )
        self.report.checks["magic-state"] = total


def raise_if_invalid(report: ValidationReport) -> ValidationReport:
    """Raise :class:`ValidationError` when the report has violations."""
    if not report.ok:
        raise ValidationError(report)
    return report
