"""Schedule validity engine: adversarial replay checks for compiled schedules.

Independent of the scheduler's own bookkeeping — see
:mod:`repro.verify.validator` for the invariants checked, and
:mod:`repro.verify.mutations` for the self-test layer that proves the
validator catches each corruption class it claims to.
"""

from .mutations import MUTATIONS, MutationOutcome, run_self_test
from .report import VIOLATION_CODES, ValidationError, ValidationReport, Violation
from .validator import (
    ScheduleValidator,
    config_distill_times,
    env_forced,
    raise_if_invalid,
    validate_result,
    validate_schedule,
)

__all__ = [
    "MUTATIONS",
    "MutationOutcome",
    "ScheduleValidator",
    "config_distill_times",
    "env_forced",
    "ValidationError",
    "ValidationReport",
    "Violation",
    "VIOLATION_CODES",
    "raise_if_invalid",
    "run_self_test",
    "validate_result",
    "validate_schedule",
]
