"""Structured outcome of one schedule validation run.

A :class:`ValidationReport` is machine-readable first: every problem the
validator finds becomes one :class:`Violation` record with a stable ``code``
(the violation class), the offending op uid(s) and enough context (qubit,
cell, time, gate index) to locate the defect without re-running anything.
The CLI renders :meth:`ValidationReport.summary`; tests and CI assert on
``report.ok`` and on the violation codes directly.

Violation classes
-----------------
``structure``
    Malformed schedule container: duplicate/non-monotone uids, negative
    start or duration, an op starting before time zero.
``footprint``
    An op's declared cell footprint is structurally impossible: a move
    (move/evict/restore) or route hop without its (origin, dest) cell pair,
    or an ancilla-consuming gate (H/SX, CNOT merge, magic-state consume)
    with no locked cell at all.
``timeline``
    Per-qubit timeline broken: two ops occupy the same program qubit at
    overlapping times, or appear out of schedule order on that wire.
``cell-conflict``
    Two ops lock the same grid cell (their :meth:`ScheduledOp.resource_cells`
    footprints) at overlapping times.
``min-start``
    An op starts before its declared external release time (``min_start``:
    magic-state availability or a barrier floor) — the Sec. V-D re-timing
    contract is broken.
``dependency``
    DAG wire order broken: a gate's op runs on a shared qubit before a
    predecessor gate's last op on that qubit has finished.
``barrier``
    Barrier serialisation broken: an op of a barrier-successor node starts
    before a barrier-predecessor node has completely finished.
``coverage``
    Gate/DAG mismatch: a DAG node produced no scheduled op at all, or an op
    references a gate index outside the DAG.
``magic-pipeline``
    A magic state is consumed before its distillation pipeline could have
    produced it: the k-th earliest consumption from one factory starts
    before ``k * distill_time`` (a state consumed twice compresses the
    sequence below this bound too).
``magic-count``
    Magic-state conservation broken: the number of consume operations does
    not match the circuit's T-count under the synthesis model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: the closed set of violation classes the validator can emit.
VIOLATION_CODES = (
    "structure",
    "footprint",
    "timeline",
    "cell-conflict",
    "min-start",
    "dependency",
    "barrier",
    "coverage",
    "magic-pipeline",
    "magic-count",
)


@dataclass(frozen=True)
class Violation:
    """One rule the schedule breaks.

    Attributes:
        code: violation class, one of :data:`VIOLATION_CODES`.
        message: human-readable description with concrete values.
        uid: offending op uid (or the later op of a conflicting pair).
        other_uid: the earlier op of a pair, when the violation is pairwise.
        gate_index: DAG node involved, when known.
        qubit: program qubit involved, when the rule is per-qubit.
        cell: grid cell involved, when the rule is per-cell.
        time: time coordinate of the violation (usually the bad start).
    """

    code: str
    message: str
    uid: Optional[int] = None
    other_uid: Optional[int] = None
    gate_index: Optional[int] = None
    qubit: Optional[int] = None
    cell: Optional[Tuple[int, int]] = None
    time: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "uid": self.uid,
            "other_uid": self.other_uid,
            "gate_index": self.gate_index,
            "qubit": self.qubit,
            "cell": None if self.cell is None else list(self.cell),
            "time": self.time,
        }

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"


@dataclass
class ValidationReport:
    """Everything one validation run established about a schedule."""

    violations: List[Violation] = field(default_factory=list)
    #: check name -> number of facts examined (ops, intervals, edges, ...).
    checks: Dict[str, int] = field(default_factory=dict)
    ops_checked: int = 0
    label: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def count(self, code: str) -> int:
        """Number of violations of one class."""
        return sum(1 for v in self.violations if v.code == code)

    def codes(self) -> Dict[str, int]:
        """Violation class -> occurrence count."""
        histogram: Dict[str, int] = {}
        for violation in self.violations:
            histogram[violation.code] = histogram.get(violation.code, 0) + 1
        return histogram

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "ok": self.ok,
            "ops_checked": self.ops_checked,
            "checks": dict(self.checks),
            "violations": [v.to_dict() for v in self.violations],
        }

    def summary(self, limit: int = 10) -> str:
        """Short human-readable digest (CLI output)."""
        head = f"validated {self.ops_checked} ops"
        if self.label:
            head = f"{self.label}: {head}"
        if self.ok:
            return f"{head}: OK"
        parts = ", ".join(f"{code} x{n}" for code, n in sorted(self.codes().items()))
        lines = [f"{head}: {len(self.violations)} violation(s) ({parts})"]
        for violation in self.violations[:limit]:
            lines.append(f"  {violation}")
        if len(self.violations) > limit:
            lines.append(f"  ... ({len(self.violations) - limit} more)")
        return "\n".join(lines)


class ValidationError(RuntimeError):
    """Raised when a schedule fails validation and the caller asked to raise.

    Carries the full :class:`ValidationReport` as :attr:`report`.
    """

    def __init__(self, report: ValidationReport) -> None:
        super().__init__(report.summary())
        self.report = report

    def __reduce__(self):
        # Exceptions pickle as (class, self.args); args here is the summary
        # string, which __init__ cannot consume.  Reduce to the report so
        # the error crosses process-pool boundaries intact (``--jobs N``
        # workers) instead of killing the pool on unpickling.
        return (type(self), (self.report,))
