"""Mutation self-tests: prove the validator catches what it claims to.

A validator that silently passes everything is worse than no validator, so
this layer seeds *known* corruptions into a known-good schedule — swapped
op times, shrunk cell footprints, magic states consumed before distillation,
duplicated consumptions, ops pulled across dependencies and barriers,
deleted gates — and asserts each one is flagged with the expected violation
class.  CI runs this over freshly compiled schedules; a validator regression
(a check weakened or skipped) fails the build even when every real schedule
is clean.

Each mutation is a pure function ``(schedule, ctx) -> Schedule | None``;
``None`` means the corruption is not applicable to this schedule (e.g. no
barrier edges to violate) and the self-test records it as skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..ir.circuit import Circuit
from ..ir.dag import DagCircuit
from ..scheduling.events import Schedule, ScheduledOp
from .validator import validate_schedule


@dataclass(frozen=True)
class MutationContext:
    """Everything a mutation may consult about the schedule's origin."""

    dag: DagCircuit
    distill_times: Mapping[int, float]
    expected_t_states: int


@dataclass(frozen=True)
class MutationOutcome:
    """Result of seeding one corruption class."""

    name: str
    expected_code: str
    applicable: bool
    caught: bool
    found_codes: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """A skipped mutation is not a failure; an uncaught one is."""
        return self.caught or not self.applicable


def _rebuild(ops: List[ScheduledOp]) -> Schedule:
    return Schedule(ops=list(ops))


def _consumes(schedule: Schedule) -> List[Tuple[int, ScheduledOp]]:
    """(index-in-ops, op) of every magic-state consume op."""
    return [
        (i, op)
        for i, op in enumerate(schedule.ops)
        if op.kind == "gate" and op.magic_factory() is not None
    ]


# -- mutation functions -------------------------------------------------------


def mutate_swap_op_times(schedule: Schedule, ctx: MutationContext) -> Optional[Schedule]:
    """Exchange the start times of two ops on one qubit timeline."""
    by_qubit: Dict[int, List[int]] = {}
    for i, op in enumerate(schedule.ops):
        if op.duration <= 0:
            continue
        for q in op.qubits:
            by_qubit.setdefault(q, []).append(i)
    for indices in by_qubit.values():
        if len(indices) < 2:
            continue
        first, last = indices[0], indices[-1]
        a, b = schedule.ops[first], schedule.ops[last]
        if b.start <= a.start:
            continue
        ops = list(schedule.ops)
        ops[first] = replace(a, start=b.start)
        ops[last] = replace(b, start=a.start)
        return _rebuild(ops)
    return None


def mutate_shrink_footprint(schedule: Schedule, ctx: MutationContext) -> Optional[Schedule]:
    """Erase the cell footprint of an ancilla-consuming gate op."""
    for i, op in enumerate(schedule.ops):
        if op.kind == "gate" and op.cells and op.duration > 0:
            ops = list(schedule.ops)
            ops[i] = replace(op, cells=())
            return _rebuild(ops)
    return None


def mutate_steal_magic_state(schedule: Schedule, ctx: MutationContext) -> Optional[Schedule]:
    """Consume a magic state before its distillation round completes."""
    for i, op in _consumes(schedule):
        distill = ctx.distill_times.get(op.magic_factory())
        if distill is None:
            continue
        early = distill / 2.0
        ops = list(schedule.ops)
        ops[i] = replace(op, start=early, min_start=early)
        return _rebuild(ops)
    return None


def mutate_duplicate_consume(schedule: Schedule, ctx: MutationContext) -> Optional[Schedule]:
    """Consume one distilled state twice (conservation violation)."""
    consumes = _consumes(schedule)
    if not consumes:
        return None
    _, op = consumes[-1]
    max_uid = max(existing.uid for existing in schedule.ops)
    ops = list(schedule.ops)
    ops.append(replace(op, uid=max_uid + 1))
    return _rebuild(ops)


def mutate_reorder_dependents(schedule: Schedule, ctx: MutationContext) -> Optional[Schedule]:
    """Start a gate on a shared wire before its predecessor finishes."""
    ops_by_node: Dict[int, List[int]] = {}
    for i, op in enumerate(schedule.ops):
        if op.gate_index is not None:
            ops_by_node.setdefault(op.gate_index, []).append(i)
    for node in ctx.dag.nodes:
        for pred_index in node.wire_predecessors:
            shared = set(node.qubits) & set(ctx.dag.node(pred_index).qubits)
            if not shared:
                continue
            qubit = min(shared)
            pred_ops = [
                schedule.ops[i]
                for i in ops_by_node.get(pred_index, ())
                if qubit in schedule.ops[i].qubits
            ]
            node_indices = [
                i
                for i in ops_by_node.get(node.index, ())
                if qubit in schedule.ops[i].qubits
            ]
            if not pred_ops or not node_indices:
                continue
            pred_first = min(pred_ops, key=lambda op: op.start)
            if pred_first.duration <= 0:
                continue
            target = node_indices[0]
            ops = list(schedule.ops)
            ops[target] = replace(
                ops[target], start=pred_first.start, min_start=0.0
            )
            return _rebuild(ops)
    return None


def mutate_pull_across_barrier(schedule: Schedule, ctx: MutationContext) -> Optional[Schedule]:
    """Start a barrier-successor op before the barrier's floor."""
    ops_by_node: Dict[int, List[int]] = {}
    for i, op in enumerate(schedule.ops):
        if op.gate_index is not None:
            ops_by_node.setdefault(op.gate_index, []).append(i)
    for node in ctx.dag.nodes:
        for pred_index in node.barrier_predecessors:
            pred_indices = ops_by_node.get(pred_index, ())
            node_indices = ops_by_node.get(node.index, ())
            if not pred_indices or not node_indices:
                continue
            pred_end = max(schedule.ops[i].end for i in pred_indices)
            if pred_end <= 0:
                continue
            target = node_indices[0]
            ops = list(schedule.ops)
            ops[target] = replace(ops[target], start=0.0, min_start=0.0)
            return _rebuild(ops)
    return None


def mutate_violate_min_start(schedule: Schedule, ctx: MutationContext) -> Optional[Schedule]:
    """Start an op before its declared external release time."""
    for i, op in enumerate(schedule.ops):
        if op.min_start > 0:
            ops = list(schedule.ops)
            ops[i] = replace(op, start=op.min_start / 2.0)
            return _rebuild(ops)
    return None


def mutate_cell_collision(schedule: Schedule, ctx: MutationContext) -> Optional[Schedule]:
    """Retime one op so its footprint collides with another's."""
    locked = [
        (i, op)
        for i, op in enumerate(schedule.ops)
        if op.duration > 0 and op.resource_cells()
    ]
    if len(locked) < 2:
        return None
    (_, a), (j, b) = locked[0], locked[1]
    ops = list(schedule.ops)
    ops[j] = replace(b, start=a.start, min_start=0.0, cells=a.cells)
    return _rebuild(ops)


def mutate_drop_gate(schedule: Schedule, ctx: MutationContext) -> Optional[Schedule]:
    """Delete every op of one DAG node (the gate silently vanishes)."""
    with_gate = [op.gate_index for op in schedule.ops if op.gate_index is not None]
    if not with_gate:
        return None
    victim = with_gate[-1]
    ops = [op for op in schedule.ops if op.gate_index != victim]
    if len(ops) == len(schedule.ops):
        return None
    return _rebuild(ops)


#: mutation name -> (function, violation class the validator must raise).
MUTATIONS: Dict[str, Tuple[Callable, str]] = {
    "swap-op-times": (mutate_swap_op_times, "timeline"),
    "shrink-footprint": (mutate_shrink_footprint, "footprint"),
    "steal-magic-state": (mutate_steal_magic_state, "magic-pipeline"),
    "duplicate-consume": (mutate_duplicate_consume, "magic-count"),
    "reorder-dependents": (mutate_reorder_dependents, "dependency"),
    "pull-across-barrier": (mutate_pull_across_barrier, "barrier"),
    "violate-min-start": (mutate_violate_min_start, "min-start"),
    "cell-collision": (mutate_cell_collision, "cell-conflict"),
    "drop-gate": (mutate_drop_gate, "coverage"),
}


def run_self_test(
    schedule: Schedule,
    circuit: Circuit,
    distill_times: Mapping[int, float],
    expected_t_states: int,
) -> List[MutationOutcome]:
    """Seed every corruption class and validate each mutated schedule.

    The input schedule must itself be valid (the caller should have checked
    that already); each mutation then flips exactly one invariant and the
    validator must report the matching violation class.
    """
    ctx = MutationContext(
        dag=DagCircuit(circuit),
        distill_times=distill_times,
        expected_t_states=expected_t_states,
    )
    outcomes: List[MutationOutcome] = []
    for name, (mutate, expected_code) in MUTATIONS.items():
        mutated = mutate(schedule, ctx)
        if mutated is None:
            outcomes.append(
                MutationOutcome(
                    name=name, expected_code=expected_code,
                    applicable=False, caught=False,
                )
            )
            continue
        report = validate_schedule(
            mutated,
            dag=ctx.dag,
            distill_times=ctx.distill_times,
            expected_t_states=ctx.expected_t_states,
            label=f"mutation:{name}",
        )
        found = tuple(sorted(report.codes()))
        outcomes.append(
            MutationOutcome(
                name=name, expected_code=expected_code, applicable=True,
                caught=expected_code in report.codes(), found_codes=found,
            )
        )
    return outcomes
