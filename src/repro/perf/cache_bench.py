"""Tiered-cache benchmark: a cold engine fleet warming from one peer.

``repro cache-bench`` measures the tentpole behaviour of the tiered
cache end to end, with a real ``cache-serve`` peer on a real socket:

1. **seed** — one engine (disk + remote tiers) compiles the benchmark
   matrix; every fill propagates to the peer.
2. **warm_fleet** — ``engines - 1`` cold engines, each with a fresh,
   empty disk cache, resolve the same matrix against the seeded peer.
   Every case must resolve as a remote hit: the fleet performs **zero**
   compilations (the CLI exits 1 otherwise).
3. **disk** — a fresh engine (no remote) over one warmed disk directory:
   remote hits were promoted, so everything now serves from disk.
4. **memo** — the same engine resolves the matrix again, entirely from
   its in-process memo.
5. **remote_down** — the peer is stopped; a fresh engine pointing at the
   dead address recompiles everything.  The outage degrades to misses —
   no errors reach the caller.

Every phase's results must carry identical behavioural fingerprints
(checked in-run, case by case), and the report is shaped like
``BENCH_routing.json`` so ``--baseline`` can gate it with the standard
:func:`~repro.perf.bench.has_drift` check.  ``meta.cache_bench`` records
per-phase walls, sweep counters and tier stats.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from .. import __version__
from ..sweep import CompileCache, SweepEngine
from ..workloads import load_benchmark
from .bench import BenchCase, BenchReport, _case_config, bench_cases

#: default output file for the tiered-cache trajectory.
BENCH_CACHE_FILENAME = "BENCH_cache.json"


def _resolve_matrix(
    engine: SweepEngine, cases: List[BenchCase], circuits: Dict[str, object]
) -> Dict[str, dict]:
    """Resolve every case through ``engine``; rows keyed like BenchReport."""
    rows: Dict[str, dict] = {}
    for case in cases:
        start = time.perf_counter()
        result = engine.compile(circuits[case.workload], _case_config(case))
        wall = time.perf_counter() - start
        rows[case.key] = {
            "wall": round(wall, 4),
            "total_qubits": result.total_qubits,
            **result.fingerprint(),
        }
    return rows


def _phase_snapshot(engine: SweepEngine, wall: float) -> dict:
    return {
        "wall": round(wall, 4),
        **engine.counters.as_dict(),
        "tiers": engine.tier_stats(),
    }


def _check_identical(
    reference: Dict[str, dict], rows: Dict[str, dict], phase: str
) -> None:
    from ..compiler.result import FINGERPRINT_FIELDS

    for key, row in rows.items():
        for field in FINGERPRINT_FIELDS:
            if reference[key].get(field) != row.get(field):
                raise AssertionError(
                    f"tier path {phase!r} changed the fingerprint of {key}: "
                    f"{field} {reference[key].get(field)!r} -> {row.get(field)!r}"
                )


def run_cache_bench(
    fast: bool = False,
    engines: int = 3,
    jobs: int = 1,
    progress=None,
) -> BenchReport:
    """Run the five tier-path phases and return the combined report.

    ``report.cases`` carries the seed phase's rows (full fingerprints, so
    drift can be gated against ``BENCH_routing.json``); every other phase
    is verified in-run to produce byte-identical fingerprints.
    """
    from ..service import CachePeerThread, RemoteCache
    from ..service.client import RetryPolicy

    engines = max(2, int(engines))
    cases = bench_cases(fast)
    circuits = {c.workload: load_benchmark(c.workload) for c in cases}
    report = BenchReport(
        meta={
            "version": __version__,
            "mode": "fast" if fast else "full",
            "engines": engines,
            "jobs": max(1, jobs),
        }
    )
    phases: Dict[str, dict] = {}
    sweep_start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-cache-bench-") as tmp:
        tmp_path = Path(tmp)
        peer_cache = CompileCache(tmp_path / "peer")
        with CachePeerThread(cache=peer_cache, allow_shutdown=False) as peer:
            host, port = peer.address

            # 1. seed: one engine compiles the matrix and fills the peer
            seeder = SweepEngine(
                jobs=max(1, jobs),
                cache=CompileCache(tmp_path / "seed"),
                remote=RemoteCache(host, port),
            )
            start = time.perf_counter()
            reference = _resolve_matrix(seeder, cases, circuits)
            phases["seed"] = _phase_snapshot(seeder, time.perf_counter() - start)
            seeder.shutdown()
            if progress is not None:
                progress(f"[seed] {seeder.counters.describe()}")

            # 2. warm fleet: cold engines, fresh disks, one shared peer
            fleet_compiled = 0
            fleet_remote_hits = 0
            warm_dir = tmp_path / "warm-0"
            start = time.perf_counter()
            for index in range(engines - 1):
                member = SweepEngine(
                    cache=CompileCache(tmp_path / f"warm-{index}"),
                    remote=RemoteCache(host, port),
                )
                rows = _resolve_matrix(member, cases, circuits)
                _check_identical(reference, rows, "remote")
                fleet_compiled += member.counters.compiled
                fleet_remote_hits += member.counters.remote_hits
                member.shutdown()
            phases["warm_fleet"] = {
                "wall": round(time.perf_counter() - start, 4),
                "engines": engines - 1,
                "compiled": fleet_compiled,
                "remote_hits": fleet_remote_hits,
            }
            if progress is not None:
                progress(
                    f"[warm_fleet] {engines - 1} engine(s): "
                    f"{fleet_remote_hits} remote hits, "
                    f"{fleet_compiled} compiled"
                )

            # 3. disk: promotion left a warmed disk dir — no remote needed
            disk_engine = SweepEngine(cache=CompileCache(warm_dir))
            start = time.perf_counter()
            rows = _resolve_matrix(disk_engine, cases, circuits)
            _check_identical(reference, rows, "disk")
            phases["disk"] = _phase_snapshot(
                disk_engine, time.perf_counter() - start
            )
            if progress is not None:
                progress(f"[disk] {disk_engine.counters.describe()}")

            # 4. memo: the same engine again, now entirely in-process
            start = time.perf_counter()
            rows = _resolve_matrix(disk_engine, cases, circuits)
            _check_identical(reference, rows, "memo")
            phases["memo"] = _phase_snapshot(
                disk_engine, time.perf_counter() - start
            )
            disk_engine.shutdown()

        # 5. remote down: the peer is gone; outage must degrade to a miss
        down = SweepEngine(
            cache=CompileCache(tmp_path / "down"),
            remote=RemoteCache(
                host,
                port,
                timeout=0.2,
                retry=RetryPolicy(attempts=1, base_delay=0.0, max_delay=0.0),
                breaker_cooldown=30.0,
            ),
        )
        start = time.perf_counter()
        rows = _resolve_matrix(down, cases, circuits)
        _check_identical(reference, rows, "remote_down")
        phases["remote_down"] = _phase_snapshot(
            down, time.perf_counter() - start
        )
        down.shutdown()
        if progress is not None:
            progress(f"[remote_down] {down.counters.describe()}")

    report.cases = reference
    report.total_wall = sum(row["wall"] for row in reference.values())
    report.meta["sweep_wall"] = round(time.perf_counter() - sweep_start, 4)
    report.meta["cache_bench"] = phases
    return report


def write_cache_report(report: BenchReport, path: str) -> None:
    """Persist a cache-bench report (same JSON shape as ``BENCH_routing``)."""
    report.write(path)
