"""End-to-end compile-time benchmark harness.

The routing/scheduling inner loop is the compiler's hot path; this module
measures it the way users experience it — wall time of full compilations
over the fig9/fig11 workload suite (condensed-matter Trotter circuits at
several lattice sizes, routing-path counts and factory counts).

Each run writes ``BENCH_routing.json``: per-case wall time plus the
behavioural fingerprint (makespan, scheduler stats, op counts), so future
performance work has a trajectory to regress against — a speedup only
counts when the fingerprint is unchanged.

Usage::

    repro bench                 # full suite, writes BENCH_routing.json
    repro bench --fast          # smoke suite (seconds), for CI
    repro bench --repeat 3      # best-of-3 wall times
    repro bench --jobs 4        # compile the matrix on 4 processes
    repro bench --cache-dir DIR # resolve through the persistent sweep cache
    repro bench --baseline BENCH_routing.json   # compare against a file

With ``--jobs`` the behavioural fingerprints are unchanged (results are
bit-identical to serial compilation); per-case walls are then measured
inside the workers and ``meta.sweep_wall`` records the actual elapsed time
of the whole sweep.  With a cache, per-case wall becomes the time to
*resolve* the case through the engine (near zero when warm), and
``meta.cache`` records the hit/miss counters — the sweep-level speedup the
trajectory is meant to capture.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import __version__, kernels
from ..compiler.config import CompilerConfig
from ..compiler.pipeline import FaultTolerantCompiler
from ..compiler.result import FINGERPRINT_FIELDS
from ..sweep import CompileCache, CompileJob, SweepEngine
from ..workloads import load_benchmark
from . import profiler

#: default output file, tracked over time as the perf trajectory.
BENCH_FILENAME = "BENCH_routing.json"

#: (workload, routing_paths, num_factories) matrix for the full suite —
#: the fig9 sweep shape (r x factories) plus fig11-style r variation.
#: A superset of the fast matrix, so a full baseline can gate fast CI runs.
_FULL_MATRIX = [
    ("ising_2d_2x2", 3, 1),
    ("heisenberg_2d_2x2", 3, 1),
    ("fermi_hubbard_2d_2x2", 4, 1),
    ("ising_2d_4x4", 3, 1),
    ("ising_2d_4x4", 4, 2),
    ("ising_2d_4x4", 6, 4),
    ("heisenberg_2d_4x4", 3, 1),
    ("heisenberg_2d_4x4", 5, 2),
    ("fermi_hubbard_2d_4x4", 4, 1),
    ("fermi_hubbard_2d_4x4", 6, 2),
    ("ising_2d_6x6", 3, 1),
    ("ising_2d_6x6", 6, 2),
    ("heisenberg_2d_6x6", 4, 1),
    ("ising_2d_8x8", 4, 2),
    ("heisenberg_2d_8x8", 6, 2),
    ("ising_2d_10x10", 4, 2),
]

#: quick smoke matrix (sub-second): CI and pre-commit sanity.
_FAST_MATRIX = [
    ("ising_2d_2x2", 3, 1),
    ("heisenberg_2d_2x2", 3, 1),
    ("fermi_hubbard_2d_2x2", 4, 1),
    ("ising_2d_4x4", 4, 2),
]


@dataclass(frozen=True)
class BenchCase:
    """One benchmark point: a workload compiled at fixed (r, factories)."""

    workload: str
    routing_paths: int
    num_factories: int

    @property
    def key(self) -> str:
        return f"{self.workload}/r{self.routing_paths}/f{self.num_factories}"


@dataclass
class BenchReport:
    """Results of one harness run."""

    cases: Dict[str, dict] = field(default_factory=dict)
    total_wall: float = 0.0
    meta: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "meta": self.meta,
            "total_wall": round(self.total_wall, 4),
            "cases": self.cases,
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")

    def to_text(self) -> str:
        width = max((len(k) for k in self.cases), default=10)
        lines = [
            f"{'case'.ljust(width)}  {'wall_s':>8}  {'makespan':>9}  "
            f"{'ops':>6}  {'moves':>6}"
        ]
        for key, row in self.cases.items():
            lines.append(
                f"{key.ljust(width)}  {row['wall']:>8.3f}  "
                f"{row['makespan']:>9.1f}  {row['num_ops']:>6}  "
                f"{row['num_moves']:>6}"
            )
        lines.append(f"total wall time: {self.total_wall:.3f}s")
        return "\n".join(lines)


def bench_cases(fast: bool = False, workloads: Optional[List[str]] = None) -> List[BenchCase]:
    """The benchmark matrix, optionally filtered to named workloads."""
    matrix = _FAST_MATRIX if fast else _FULL_MATRIX
    cases = [BenchCase(*entry) for entry in matrix]
    if workloads:
        cases = [c for c in cases if c.workload in workloads]
    return cases


def _case_config(case: BenchCase) -> CompilerConfig:
    return CompilerConfig(
        routing_paths=case.routing_paths, num_factories=case.num_factories
    )


def _row_from_result(result, wall: float) -> dict:
    return {
        "wall": round(wall, 4),
        "total_qubits": result.total_qubits,
        **result.fingerprint(),
    }


def _run_case(
    case: BenchCase,
    repeat: int,
    validate: bool = False,
    profile: bool = False,
    backend: Optional[str] = None,
) -> dict:
    circuit = load_benchmark(case.workload)
    config = _case_config(case)
    compiler = FaultTolerantCompiler(config)
    walls: List[float] = []
    result = None
    with kernels.use_backend(backend):
        for _ in range(max(1, repeat)):
            start = time.perf_counter()
            result = compiler.compile(circuit)
            walls.append(time.perf_counter() - start)
        # best-of-N is the headline number (least scheduler/cache noise);
        # the median rides along so cross-machine comparisons can see
        # dispersion.
        row = _row_from_result(result, min(walls))
        row["wall_median"] = round(statistics.median(walls), 4)
        if profile:
            # one extra instrumented compile AFTER the timed repetitions, so
            # attribution never contaminates the walls it explains
            with profiler.capture() as prof:
                compiler.compile(circuit)
            row["phases"] = prof.as_dict()
        if validate:
            # outside the timed region: walls measure compilation, not
            # auditing
            from ..verify import raise_if_invalid, validate_result

            raise_if_invalid(
                validate_result(result, circuit, config, label=case.key)
            )
    return row


def _run_case_payload(payload: Tuple[BenchCase, int, bool, bool, Optional[str]]) -> dict:
    """Worker entry point for ``--jobs``: one timed case per process."""
    case, repeat, validate, profile, backend = payload
    return _run_case(case, repeat, validate, profile, backend)


def _merge_phase_dicts(total: Dict[str, dict], phases: Dict[str, dict]) -> None:
    """Accumulate one case's phase breakdown into the suite-wide totals."""
    for name, stats in phases.items():
        agg = total.setdefault(name, {"wall": 0.0, "self": 0.0, "calls": 0})
        agg["wall"] = round(agg["wall"] + stats["wall"], 6)
        agg["self"] = round(agg["self"] + stats["self"], 6)
        agg["calls"] += stats["calls"]


def run_bench(
    fast: bool = False,
    repeat: int = 1,
    workloads: Optional[List[str]] = None,
    progress=None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    remote=None,
    validate: bool = False,
    profile: bool = False,
    backend: Optional[str] = None,
) -> BenchReport:
    """Compile the suite, timing each case (best-of-``repeat``).

    Args:
        fast: use the smoke matrix instead of the full fig9/fig11 suite.
        repeat: timing repetitions per case; the minimum wall time is kept
            (behavioural outputs are deterministic across repetitions).
        workloads: optional workload-name filter.
        progress: optional callable invoked with a line per finished case.
        jobs: worker processes; behavioural outputs stay bit-identical, and
            ``meta.sweep_wall`` records the true elapsed time of the sweep.
        cache_dir: resolve cases through a persistent
            :class:`~repro.sweep.CompileCache` rooted here; per-case wall is
            then the resolution time (near zero when warm) and ``meta.cache``
            carries the hit/miss counters.
        remote: optional :class:`~repro.service.RemoteCache` tier below the
            disk cache (the ``--remote-cache`` flag); forces the engine
            resolution path even without ``cache_dir``.  Per-tier counters
            land in ``meta.cache_tiers``.
        validate: replay-validate every case's schedule (outside the timed
            region); raises :class:`~repro.verify.ValidationError` on the
            first violation.
        profile: run one extra instrumented compile per case (after the
            timed repetitions) and attach the per-phase wall/call breakdown
            as ``meta.phases``; unsupported with ``cache_dir`` (cache
            resolution has no compile phases to attribute).
        backend: compute-kernel backend for every compile ("auto", "pure"
            or "numpy"); behavioural outputs are identical across backends,
            only walls change.  Recorded as ``meta.backend`` (resolved).
    """
    jobs = max(1, jobs)
    report = BenchReport(
        meta={
            "version": __version__,
            "python": platform.python_version(),
            "mode": "fast" if fast else "full",
            "repeats": max(1, repeat),
            "jobs": jobs,
            # resolve up front: a 'numpy' pin without numpy fails here,
            # loudly, rather than silently falling back mid-suite
            "backend": kernels.resolve(backend),
        }
    )
    if validate:
        report.meta["validated"] = True
    engine_path = cache_dir is not None or remote is not None
    if profile and engine_path:
        raise ValueError("--profile attributes compile phases; it does not apply to cache resolution runs")
    cases = bench_cases(fast, workloads)
    sweep_start = time.perf_counter()
    if engine_path:
        # cache resolution is single-shot, so label the walls honestly
        report.meta["repeats"] = 1
        engine = SweepEngine(
            jobs=jobs,
            cache=CompileCache(cache_dir) if cache_dir is not None else None,
            remote=remote,
        )
        circuits = {c.workload: load_benchmark(c.workload) for c in cases}
        if jobs > 1:
            engine.prefetch(
                [
                    CompileJob(circuits[c.workload], _case_config(c), tag="bench")
                    for c in cases
                ]
            )

        def timed_resolution(case: BenchCase) -> dict:
            start = time.perf_counter()
            with kernels.use_backend(backend):
                result = engine.compile(circuits[case.workload], _case_config(case))
            wall = time.perf_counter() - start
            if validate:
                # after the timer stops: walls measure resolution, not auditing
                from ..verify import raise_if_invalid, validate_result

                raise_if_invalid(
                    validate_result(
                        result, circuits[case.workload], _case_config(case),
                        label=case.key,
                    )
                )
            return _row_from_result(result, wall)

        rows = map(timed_resolution, cases)
    elif jobs > 1:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(cases) or 1))
        rows = pool.map(
            _run_case_payload,
            [(c, repeat, validate, profile, backend) for c in cases],
        )
    else:
        pool = None
        rows = (
            _run_case(case, repeat, validate, profile, backend) for case in cases
        )
    suite_phases: Dict[str, dict] = {}
    try:
        for case, row in zip(cases, rows):
            case_phases = row.pop("phases", None)
            if case_phases:
                _merge_phase_dicts(suite_phases, case_phases)
            report.cases[case.key] = row
            report.total_wall += row["wall"]
            if progress is not None:
                progress(f"{case.key}: {row['wall']:.3f}s makespan={row['makespan']}")
    finally:
        if engine_path:
            report.meta["cache"] = engine.counters.as_dict()
            report.meta["cache_tiers"] = engine.tier_stats()
            engine.shutdown()
        elif jobs > 1:
            pool.shutdown()
    report.meta["sweep_wall"] = round(time.perf_counter() - sweep_start, 4)
    if profile:
        # suite-wide aggregate, sorted widest-first like PhaseProfiler.as_dict
        report.meta["phases"] = {
            name: stats
            for name, stats in sorted(
                suite_phases.items(), key=lambda kv: -kv[1]["wall"]
            )
        }
    return report


#: per-case fields that make up the behavioural fingerprint — imported
#: from the canonical definition next to CompilationResult.fingerprint so
#: the drift gate, the report rows and the service responses cannot diverge.
_FINGERPRINT_FIELDS = FINGERPRINT_FIELDS


def report_from_dict(data: dict) -> BenchReport:
    """Rehydrate a ``BENCH_*.json`` payload for comparison helpers."""
    return BenchReport(
        cases=dict(data.get("cases", {})),
        total_wall=float(data.get("total_wall") or 0.0),
        meta=dict(data.get("meta", {})),
    )


def phases_table(phases: Dict[str, dict]) -> str:
    """Render a ``meta.phases`` breakdown the way ``--profile`` prints it."""
    if not phases:
        return "(no phases recorded)"
    width = max(len(name) for name in phases)
    lines = [f"{'phase'.ljust(width)}  {'wall_s':>9}  {'self_s':>9}  {'calls':>9}"]
    for name, stats in phases.items():
        lines.append(
            f"{name.ljust(width)}  {stats['wall']:>9.4f}  "
            f"{stats['self']:>9.4f}  {stats['calls']:>9}"
        )
    return "\n".join(lines)


def compare_phases(baseline_meta: dict, current_meta: dict) -> List[str]:
    """Per-phase speedup lines for two reports that both carry ``meta.phases``.

    Empty when either side was recorded without ``--profile`` — phase
    attribution is optional, the per-case comparison always runs.
    """
    base = baseline_meta.get("phases") or {}
    cur = current_meta.get("phases") or {}
    if not base or not cur:
        return []
    width = max(len(name) for name in {*base, *cur})
    lines = [
        f"{'phase'.ljust(width)}  {'base_s':>9}  {'new_s':>9}  {'speedup':>8}"
    ]
    for name in sorted({*base, *cur}, key=lambda n: -(base.get(n, {}).get("wall", 0.0))):
        b = base.get(name, {}).get("wall")
        c = cur.get(name, {}).get("wall")
        if b is None or c is None:
            lines.append(
                f"{name.ljust(width)}  "
                f"{(f'{b:9.4f}' if b is not None else '        -')}  "
                f"{(f'{c:9.4f}' if c is not None else '        -')}  "
                f"{'-':>8}"
            )
            continue
        ratio = f"{b / c:7.2f}x" if c else f"{'inf':>7} "
        lines.append(f"{name.ljust(width)}  {b:>9.4f}  {c:>9.4f}  {ratio}")
    return lines


def has_drift(baseline: dict, current: BenchReport) -> bool:
    """True when any shared case's behavioural fingerprint changed.

    Cases missing from the baseline are not drift (the matrix may grow);
    only a changed fingerprint field on a case both runs share counts.
    CI gates on this.
    """
    base_cases = baseline.get("cases", {})
    for key, row in current.cases.items():
        base = base_cases.get(key)
        if base is None:
            continue
        for field_name in _FINGERPRINT_FIELDS:
            if base.get(field_name) != row.get(field_name):
                return True
    return False


def compare_reports(baseline: dict, current: BenchReport) -> List[str]:
    """Human-readable comparison lines against a previous ``BENCH_*.json``.

    Flags any behavioural drift (makespan / stats / op counts) — a perf
    change must not alter the compiled schedule — and reports per-case and
    total speedup.
    """
    lines: List[str] = []
    base_cases = baseline.get("cases", {})
    drift = False
    for key, row in current.cases.items():
        base = base_cases.get(key)
        if base is None:
            lines.append(f"{key}: no baseline entry")
            continue
        for field_name in _FINGERPRINT_FIELDS:
            if base.get(field_name) != row.get(field_name):
                drift = True
                lines.append(
                    f"{key}: BEHAVIOUR DRIFT in {field_name}: "
                    f"{base.get(field_name)} -> {row.get(field_name)}"
                )
        if base.get("wall") and row.get("wall"):
            lines.append(f"{key}: {base['wall'] / row['wall']:.2f}x vs baseline")
    unexercised = sorted(set(base_cases) - set(current.cases))
    if unexercised:
        # not drift (fast runs exercise a subset of a full baseline), but a
        # silently shrinking matrix should at least be visible
        lines.append(
            f"note: {len(unexercised)} baseline case(s) not exercised in "
            f"this run: {', '.join(unexercised[:5])}"
            + ("..." if len(unexercised) > 5 else "")
        )
    base_total = baseline.get("total_wall")
    if base_total and current.total_wall:
        lines.append(
            f"total: {base_total / current.total_wall:.2f}x vs baseline"
            f" ({base_total:.3f}s -> {current.total_wall:.3f}s)"
        )
    if not drift:
        lines.append("behaviour: identical to baseline")
    return lines
