"""Low-overhead per-phase wall/call profiler for the compile pipeline.

Performance claims need attribution: "the compiler got 2x faster" is only
auditable when the trajectory says *which phase* paid for it.  This module
provides named phase seams — a context manager and a decorator — that the
pipeline, router, scheduler, optimiser and validator wrap around their hot
sections.  When no profile is active every seam is a single global load
and ``is None`` test, so instrumented code runs at full speed; when a
:class:`PhaseProfiler` is active each seam costs two ``perf_counter``
calls and a couple of dict operations.

Phases nest: a ``route.path`` search inside ``schedule.cnot`` is recorded
under both, and each phase tracks *exclusive* time (``self``) next to
inclusive wall time, so the breakdown sums sensibly even with nesting.

Usage::

    from repro.perf import profiler

    with profiler.capture() as prof:
        compiler.compile(circuit)
    print(prof.table())

or through the CLI: ``repro bench --profile`` attaches the breakdown to
``BENCH_routing.json`` under ``meta.phases``.

The profiler is process-local and not thread-safe by design — compile
work fans out across *processes* (the sweep engine, the service pool),
each of which profiles independently.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Dict, Optional

#: the currently active profiler, or None (the fast path).  One per
#: process; nested ``capture()`` calls are rejected.
_ACTIVE: Optional["PhaseProfiler"] = None


class PhaseStats:
    """Accumulated wall/call counters for one named phase."""

    __slots__ = ("wall", "self_wall", "calls")

    def __init__(self) -> None:
        self.wall = 0.0       # inclusive: children counted
        self.self_wall = 0.0  # exclusive: children subtracted
        self.calls = 0

    def as_dict(self) -> dict:
        return {
            "wall": round(self.wall, 6),
            "self": round(self.self_wall, 6),
            "calls": self.calls,
        }


class PhaseProfiler:
    """Collects per-phase timings while installed via :func:`capture`."""

    __slots__ = ("phases", "_stack")

    def __init__(self) -> None:
        self.phases: Dict[str, PhaseStats] = {}
        # stack of [name, start, child_time] frames for exclusive-time
        # accounting; a plain list is faster than frame objects.
        self._stack = []

    # -- seam entry/exit (hot when active) ---------------------------------

    def enter(self, name: str) -> None:
        self._stack.append([name, perf_counter(), 0.0])

    def exit(self) -> None:
        name, start, child = self._stack.pop()
        elapsed = perf_counter() - start
        stats = self.phases.get(name)
        if stats is None:
            stats = self.phases[name] = PhaseStats()
        stats.calls += 1
        stats.self_wall += elapsed - child
        if self._stack:
            parent = self._stack[-1]
            parent[2] += elapsed
            # Re-entrant phases (recursive planning): only the outermost
            # activation contributes inclusive wall, or nested calls would
            # double-count the same seconds.
            for frame in self._stack:
                if frame[0] == name:
                    return
        stats.wall += elapsed

    # -- reporting ---------------------------------------------------------

    def as_dict(self) -> Dict[str, dict]:
        """Phase name -> {wall, self, calls}, sorted by inclusive wall."""
        return {
            name: stats.as_dict()
            for name, stats in sorted(
                self.phases.items(), key=lambda kv: -kv[1].wall
            )
        }

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's counters into this one (suite totals)."""
        for name, theirs in other.phases.items():
            stats = self.phases.get(name)
            if stats is None:
                stats = self.phases[name] = PhaseStats()
            stats.wall += theirs.wall
            stats.self_wall += theirs.self_wall
            stats.calls += theirs.calls

    def table(self) -> str:
        """Human-readable breakdown, widest phases first."""
        rows = self.as_dict()
        if not rows:
            return "(no phases recorded)"
        width = max(len(name) for name in rows)
        lines = [
            f"{'phase'.ljust(width)}  {'wall_s':>9}  {'self_s':>9}  {'calls':>9}"
        ]
        for name, stats in rows.items():
            lines.append(
                f"{name.ljust(width)}  {stats['wall']:>9.4f}  "
                f"{stats['self']:>9.4f}  {stats['calls']:>9}"
            )
        return "\n".join(lines)


@contextmanager
def capture():
    """Install a fresh profiler for the duration of the ``with`` block."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a phase profiler is already active")
    prof = PhaseProfiler()
    _ACTIVE = prof
    try:
        yield prof
    finally:
        _ACTIVE = None


def active() -> Optional[PhaseProfiler]:
    """The installed profiler, or None."""
    return _ACTIVE


class _PhaseSeam:
    """Context-manager seam: times its block when a profiler is active.

    A plain slotted class instead of ``@contextmanager``: seams sit inside
    per-route and per-op loops, and skipping the generator machinery keeps
    the inactive path to an attribute load and an ``is None`` test.
    """

    __slots__ = ("name", "_entered")

    def __init__(self, name: str) -> None:
        self.name = name
        self._entered = False

    def __enter__(self) -> None:
        prof = _ACTIVE
        if prof is not None:
            self._entered = True
            prof.enter(self.name)

    def __exit__(self, *exc) -> bool:
        # Guarded by the entry flag so a profiler installed mid-block
        # never sees an exit() without its matching enter().
        if self._entered:
            self._entered = False
            prof = _ACTIVE
            if prof is not None:
                prof.exit()
        return False


def phase(name: str) -> _PhaseSeam:
    """Context-manager seam: time the enclosed block under ``name``."""
    return _PhaseSeam(name)


def profiled(name: str) -> Callable:
    """Decorator seam: time every call of the wrapped function.

    The inactive path is one global load and an ``is None`` test on top
    of the call itself.
    """

    def wrap(fn: Callable) -> Callable:
        def timed(*args, **kwargs):
            prof = _ACTIVE
            if prof is None:
                return fn(*args, **kwargs)
            prof.enter(name)
            try:
                return fn(*args, **kwargs)
            finally:
                prof.exit()

        timed.__name__ = fn.__name__
        timed.__qualname__ = fn.__qualname__
        timed.__doc__ = fn.__doc__
        timed.__wrapped__ = fn
        timed.__module__ = fn.__module__
        return timed

    return wrap
