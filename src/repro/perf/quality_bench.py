"""Schedule-quality trajectory harness (``repro quality-bench``).

:mod:`repro.perf.bench` answers "did the compiler get slower?" and gates
CI on *behavioural drift* — any fingerprint change fails.  This module
answers the orthogonal question "did the schedules get worse?" and gates
CI on *quality regression* only: the committed ``BENCH_quality.json``
records, per benchmark case and per placement/delivery strategy, how far
each schedule sits above its Eq. 2 lower bound plus the eviction and
displacement counters behind that gap.  A change that reroutes qubits
differently but compiles equally tight schedules passes here (and must
regenerate the perf baseline); a change that quietly inflates makespan or
eviction churn fails here even if every test stays green.

The quality ratio divides by :func:`repro.metrics.quality_denominator`,
so Clifford-only cases (zero distillation bound) degrade gracefully to
"time per d" instead of dividing by zero — see satellite note in
``docs/architecture.md``.

The gate is one-sided and compares shared (case, strategy) pairs only:
a fast CI run may gate against a full-matrix baseline, and improvements
never fail — they just mean the baseline should be regenerated to
ratchet the trajectory.
"""

from __future__ import annotations

import json
import platform
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import __version__
from ..compiler.config import CompilerConfig
from ..compiler.pipeline import FaultTolerantCompiler
from ..metrics.spacetime import quality_denominator
from ..strategies import STRATEGY_NAMES
from ..workloads import load_benchmark
from .bench import BenchCase, bench_cases

#: the committed quality-trajectory baseline, CI-gated.
BENCH_QUALITY_FILENAME = "BENCH_quality.json"

#: relative tolerance of the regression gate.  Compiles are deterministic,
#: so any real regression exceeds this; the epsilon only absorbs float
#: round-tripping through JSON.
QUALITY_RTOL = 1e-9

#: aux-stat counters copied into every quality row (0.0 when absent).
_AUX_COUNTERS = (
    "restores",
    "restore_cycle_breaks",
    "displacement_aborts",
)


@dataclass
class QualityReport:
    """Results of one quality-bench run.

    ``cases`` maps ``case_key -> strategy_name -> row``; each row carries
    the makespan, the Eq. 2 bound, the gated ``quality`` ratio and the
    churn counters that explain it.
    """

    cases: Dict[str, Dict[str, dict]] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"meta": self.meta, "cases": self.cases}

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")

    def to_text(self) -> str:
        width = max((len(k) for k in self.cases), default=10)
        lines = [
            f"{'case'.ljust(width)}  {'strategy':>9}  {'makespan':>9}  "
            f"{'bound':>8}  {'quality':>8}  {'evict':>6}  {'breaks':>6}"
        ]
        for key, per_strategy in self.cases.items():
            for strategy, row in per_strategy.items():
                lines.append(
                    f"{key.ljust(width)}  {strategy:>9}  "
                    f"{row['makespan']:>9.1f}  {row['lower_bound']:>8.1f}  "
                    f"{row['quality']:>8.3f}  {row['evictions']:>6.0f}  "
                    f"{row['restore_cycle_breaks']:>6.0f}"
                )
        return "\n".join(lines)


def quality_report_from_dict(data: dict) -> QualityReport:
    """Rehydrate a ``BENCH_quality.json`` payload."""
    return QualityReport(
        cases={k: dict(v) for k, v in data.get("cases", {}).items()},
        meta=dict(data.get("meta", {})),
    )


def _quality_row(result, wall: float) -> dict:
    aux = result.aux_stats
    row = {
        "wall": round(wall, 4),
        "makespan": result.execution_time,
        "lower_bound": result.lower_bound,
        "quality": round(
            result.execution_time / quality_denominator(result.lower_bound), 6
        ),
        "num_moves": result.schedule.num_moves,
        "evictions": result.stats.get("evictions", 0.0),
    }
    for counter in _AUX_COUNTERS:
        row[counter] = aux.get(counter, 0.0)
    return row


def _run_quality_case(
    payload: Tuple[BenchCase, str, bool]
) -> Tuple[str, str, dict]:
    """One (case, strategy) compile; module-level for ``--jobs`` pickling."""
    case, strategy, validate = payload
    circuit = load_benchmark(case.workload)
    config = CompilerConfig(
        routing_paths=case.routing_paths,
        num_factories=case.num_factories,
        strategy=strategy,
    )
    start = time.perf_counter()
    result = FaultTolerantCompiler(config).compile(circuit)
    wall = time.perf_counter() - start
    if validate:
        # outside the timed region, same policy as the perf harness
        from ..verify import raise_if_invalid, validate_result

        raise_if_invalid(
            validate_result(result, circuit, config, label=f"{case.key}/{strategy}")
        )
    return case.key, strategy, _quality_row(result, wall)


def run_quality_bench(
    fast: bool = False,
    strategies: Optional[List[str]] = None,
    workloads: Optional[List[str]] = None,
    validate: bool = False,
    jobs: int = 1,
    progress=None,
) -> QualityReport:
    """Compile the benchmark matrix under every strategy and score quality.

    Args:
        fast: use the smoke matrix (the CI gate) instead of the full suite.
        strategies: strategy names to exercise; default all registered.
        workloads: optional workload-name filter.
        validate: replay-validate every compiled schedule (outside the
            timed region); raises on the first violation.
        jobs: worker processes (compiles are deterministic, so parallelism
            never changes the report body).
        progress: optional callable invoked with a line per finished row.
    """
    names = list(strategies or STRATEGY_NAMES)
    for name in names:
        if name not in STRATEGY_NAMES:
            raise ValueError(
                f"unknown strategy {name!r}; known: {', '.join(STRATEGY_NAMES)}"
            )
    report = QualityReport(
        meta={
            "version": __version__,
            "python": platform.python_version(),
            "mode": "fast" if fast else "full",
            "strategies": names,
        }
    )
    if validate:
        report.meta["validated"] = True
    payloads = [
        (case, strategy, validate)
        for case in bench_cases(fast, workloads)
        for strategy in names
    ]
    sweep_start = time.perf_counter()
    if max(1, jobs) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(payloads) or 1)) as pool:
            rows = list(pool.map(_run_quality_case, payloads))
    else:
        rows = [_run_quality_case(p) for p in payloads]
    for key, strategy, row in rows:
        report.cases.setdefault(key, {})[strategy] = row
        if progress is not None:
            progress(
                f"{key}/{strategy}: quality={row['quality']:.3f} "
                f"evictions={row['evictions']:.0f}"
            )
    report.meta["sweep_wall"] = round(time.perf_counter() - sweep_start, 4)
    return report


def quality_regressions(baseline: dict, current: QualityReport) -> List[str]:
    """One-sided regression check: shared (case, strategy) pairs only.

    Returns one line per regression — a quality ratio above the baseline
    beyond :data:`QUALITY_RTOL`.  Improvements and new rows never fail;
    an empty list means the gate passes.
    """
    regressions: List[str] = []
    base_cases = baseline.get("cases", {})
    for key, per_strategy in current.cases.items():
        base_strategies = base_cases.get(key)
        if not base_strategies:
            continue
        for strategy, row in per_strategy.items():
            base = base_strategies.get(strategy)
            if base is None:
                continue
            allowed = base["quality"] * (1.0 + QUALITY_RTOL)
            if row["quality"] > allowed:
                regressions.append(
                    f"{key}/{strategy}: quality regressed "
                    f"{base['quality']:.6f} -> {row['quality']:.6f} "
                    f"(makespan {base['makespan']} -> {row['makespan']})"
                )
    return regressions


def compare_quality(baseline: dict, current: QualityReport) -> List[str]:
    """Human-readable quality delta lines against a committed baseline."""
    lines: List[str] = []
    base_cases = baseline.get("cases", {})
    for key, per_strategy in current.cases.items():
        base_strategies = base_cases.get(key, {})
        for strategy, row in per_strategy.items():
            base = base_strategies.get(strategy)
            if base is None:
                lines.append(f"{key}/{strategy}: no baseline entry")
                continue
            dq = row["quality"] - base["quality"]
            de = row["evictions"] - base["evictions"]
            if dq == 0 and de == 0:
                continue
            lines.append(
                f"{key}/{strategy}: quality {base['quality']:.3f} -> "
                f"{row['quality']:.3f} ({dq:+.3f}), evictions "
                f"{base['evictions']:.0f} -> {row['evictions']:.0f} ({de:+.0f})"
            )
    if not lines:
        lines.append("quality: identical to baseline")
    return lines
