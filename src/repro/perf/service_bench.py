"""Throughput smoke harness for the compile service.

Boots a real :class:`~repro.service.ServiceThread` (own event loop, TCP
socket, persistent worker pool, fresh disk cache) and measures the three
behaviours that make the service worth running:

* **cold** — every case of the fast bench matrix compiled once through
  the service (per-case wall includes protocol + scheduling overhead);
* **warm** — a sustained stream of repeat requests over the same cases:
  all must resolve from the memo with **zero recompilation**; reports
  requests/second and client-observed p50/p95;
* **coalesce** — a burst of concurrent identical requests for one
  uncached job: exactly one compilation, the rest piggyback;
* **degraded** — a sustained stream of fresh compiles while a seeded
  fault hook SIGKILLs every 10th worker dispatch: every request must
  still succeed (the supervised pool respawns workers and retries), and
  the phase reports the throughput cost of running under that failure
  rate plus a **recovery** leg showing warm throughput is intact after
  the faults stop;
* **gateway** — a complete :class:`~repro.gateway.GatewayCluster` (two
  backend shards behind the HTTP front door, one shared cache peer)
  under mixed cold/warm multi-client load with rate limiting on:
  sustained rps, shed rate, client p99, per-shard dispatch, and the
  fingerprint of every fast-matrix case served through the gateway —
  the committed fingerprints are what CI gates against drift.

``repro service-bench`` writes the numbers to ``BENCH_service.json`` —
the committed copy is the service-layer perf trajectory, the same way
``BENCH_routing.json`` tracks the routing core.  Throughput numbers are
machine-dependent; the *invariants* (warm compiled-count zero, coalesced
burst costing one compile, degraded failure-count zero) are what CI
asserts.
"""

from __future__ import annotations

import json
import platform
import shutil
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from .. import __version__
from ..service.batcher import LatencyWindow
from ..service.client import Client, RetryPolicy
from ..service.server import ServiceThread
from ..sweep import CompileCache
from ..sweep.supervisor import FAULT_KILL
from .bench import bench_cases

#: default output file, tracked over time as the service perf trajectory.
BENCH_SERVICE_FILENAME = "BENCH_service.json"

#: the coalesce-burst job: in the full bench matrix but not the fast one,
#: so it is guaranteed cold after the cold/warm phases.
_COALESCE_CASE = ("ising_2d_4x4", 3, 1)

#: degraded phase: SIGKILL every Nth worker dispatch (a 10% kill rate).
_KILL_EVERY = 10


class _KillRateFaults:
    """Fault hook killing every ``every``-th first-attempt dispatch.

    Retries always run clean so the phase measures recovery cost, not a
    pathological kill-the-retry loop; the hook stays dormant until the
    degraded phase flips ``enabled``.
    """

    def __init__(self, every: int = _KILL_EVERY) -> None:
        self.every = every
        self.enabled = False
        self.kills = 0
        self._dispatches = 0

    def __call__(self, job_seq: int, attempt: int):
        if not self.enabled or attempt > 1:
            return None
        self._dispatches += 1
        if self._dispatches % self.every == 0:
            self.kills += 1
            return (FAULT_KILL,)
        return None


def run_service_bench(
    jobs: int = 2,
    requests: int = 200,
    clients: int = 8,
    cache_dir: Optional[str] = None,
    progress=None,
) -> dict:
    """Run the three-phase service benchmark; returns the report dict.

    Args:
        jobs: worker processes in the service's compile pool.
        requests: round-trips in the sustained warm phase.
        clients: concurrent connections in the coalesce burst.
        cache_dir: service cache root; defaults to a fresh temp dir so
            the cold phase is genuinely cold.
        progress: optional callable for per-phase status lines.
    """

    def note(text: str) -> None:
        if progress is not None:
            progress(text)

    owned_cache_dir = None
    if cache_dir is None:
        cache_dir = owned_cache_dir = tempfile.mkdtemp(
            prefix="repro-service-bench-"
        )
    try:
        return _run_phases(jobs, requests, clients, cache_dir, note)
    finally:
        if owned_cache_dir is not None:
            shutil.rmtree(owned_cache_dir, ignore_errors=True)


def _run_phases(
    jobs: int, requests: int, clients: int, cache_dir: str, note
) -> dict:
    cases = bench_cases(fast=True)
    report: dict = {
        "meta": {
            "version": __version__,
            "python": platform.python_version(),
            "jobs": jobs,
            "requests": requests,
            "clients": clients,
        }
    }
    kill_faults = _KillRateFaults()
    with ServiceThread(
        jobs=jobs,
        cache=CompileCache(cache_dir),
        job_attempts=3,
        worker_faults=kill_faults,
    ) as service:
        host, port = service.address
        note(f"service on {host}:{port} ({jobs} workers, cache {cache_dir})")

        with Client(host, port) as client:
            # -- cold phase ------------------------------------------------
            cold: Dict[str, float] = {}
            cold_start = time.perf_counter()
            for case in cases:
                begin = time.perf_counter()
                reply = client.compile(
                    workload=case.workload,
                    routing_paths=case.routing_paths,
                    num_factories=case.num_factories,
                )
                cold[case.key] = round(time.perf_counter() - begin, 4)
                if reply.source != "compiled":
                    raise RuntimeError(
                        f"cold case {case.key} resolved from {reply.source!r}"
                    )
            cold_wall = time.perf_counter() - cold_start
            report["cold"] = {
                "cases": cold,
                "total_wall": round(cold_wall, 4),
            }
            note(f"cold: {len(cases)} cases in {cold_wall:.3f}s")

            # -- warm sustained phase --------------------------------------
            latency = LatencyWindow(maxlen=max(requests, 1))
            sources: Dict[str, int] = {}
            warm_start = time.perf_counter()
            for index in range(requests):
                case = cases[index % len(cases)]
                begin = time.perf_counter()
                reply = client.compile(
                    workload=case.workload,
                    routing_paths=case.routing_paths,
                    num_factories=case.num_factories,
                )
                latency.add(time.perf_counter() - begin)
                sources[reply.source] = sources.get(reply.source, 0) + 1
            warm_wall = time.perf_counter() - warm_start
            report["warm"] = {
                "requests": requests,
                "total_wall": round(warm_wall, 4),
                "rps": round(requests / warm_wall, 1) if warm_wall else None,
                "sources": sources,
                **latency.snapshot(),
            }
            note(
                f"warm: {requests} requests in {warm_wall:.3f}s "
                f"({report['warm']['rps']} req/s, "
                f"p95 {report['warm']['p95_ms']}ms)"
            )
            if set(sources) - {"memo", "disk"}:
                raise RuntimeError(f"warm phase recompiled: sources {sources}")

        # -- coalesce burst ------------------------------------------------
        workload, routing_paths, num_factories = _COALESCE_CASE

        def one_burst_request(_: int) -> str:
            with Client(host, port) as burst_client:
                return burst_client.compile(
                    workload=workload,
                    routing_paths=routing_paths,
                    num_factories=num_factories,
                ).source

        burst_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            burst_sources: List[str] = list(
                pool.map(one_burst_request, range(clients))
            )
        burst_wall = time.perf_counter() - burst_start
        compiled = burst_sources.count("compiled")
        report["coalesce"] = {
            "clients": clients,
            "total_wall": round(burst_wall, 4),
            "compiled": compiled,
            "coalesced": burst_sources.count("coalesced"),
            "cache_hits": burst_sources.count("memo")
            + burst_sources.count("disk"),
        }
        note(
            f"coalesce: {clients} concurrent identical requests -> "
            f"{compiled} compilation(s)"
        )
        if compiled != 1:
            raise RuntimeError(
                f"coalesce burst compiled {compiled} times (want exactly 1)"
            )

        # -- degraded phase: sustained load under a 10% worker-kill rate ---
        report["degraded"] = _degraded_phase(
            host, port, service, kill_faults, note
        )

        with Client(host, port) as client:
            server_stats = client.stats()
        # the cache path is machine-specific noise in a committed
        # trajectory file — drop it from the persisted snapshot
        if isinstance(server_stats.get("cache"), dict):
            server_stats["cache"].pop("dir", None)
        report["server"] = server_stats

    # -- gateway phase: the full fleet behind the HTTP front door ----------
    report["gateway"] = _gateway_phase(jobs, requests, clients, note)
    return report


#: fresh gateway-phase combos — outside the fast matrix (and within the
#: r <= 2k+2 layout bound of the tiny workloads), so they are the cold
#: fraction of the mixed multi-client load.
_GATEWAY_FRESH = [
    (workload, routing_paths, 1)
    for workload in ("ising_2d_2x2", "heisenberg_2d_2x2", "fermi_hubbard_2d_2x2")
    for routing_paths in (5, 6)
]

#: gateway-phase admission knobs: generous enough that steady mixed load
#: mostly passes, tight enough that the warm burst leg sheds.
_GATEWAY_RATE = 150.0
_GATEWAY_BURST = 50.0


def _gateway_phase(jobs: int, requests: int, clients: int, note) -> dict:
    """Mixed cold/warm multi-client load through a sharded gateway fleet."""
    from ..gateway import GatewayClient, GatewayCluster, GatewayError

    cases = bench_cases(fast=True)
    with GatewayCluster(
        shards=2,
        jobs=jobs,
        rate=_GATEWAY_RATE,
        burst=_GATEWAY_BURST,
        max_pending=64,
    ) as cluster:
        host, port = cluster.address
        note(
            f"gateway on {host}:{port} (2 shards x {jobs} worker(s), "
            f"rate {_GATEWAY_RATE}/s burst {_GATEWAY_BURST})"
        )

        def patient(call, **kwargs):
            # the correctness legs share the admission bucket with the
            # mixed load; they wait the limiter out rather than counting
            # sheds — only the mixed leg measures shedding
            while True:
                try:
                    return call(**kwargs)
                except GatewayError as exc:
                    if exc.code not in ("rate-limited", "overloaded"):
                        raise
                    time.sleep(min(exc.retry_after or 0.05, 0.2))

        # cold leg: the fast matrix once through the front door; these
        # fingerprints are the committed drift gate
        fingerprints: Dict[str, dict] = {}
        cold_start = time.perf_counter()
        with GatewayClient(host, port, poll_interval=0.005) as client:
            for case in cases:
                payload = patient(
                    client.compile,
                    workload=case.workload,
                    routing_paths=case.routing_paths,
                    num_factories=case.num_factories,
                )
                if payload["status"] != "done":
                    raise RuntimeError(
                        f"gateway cold case {case.key} ended "
                        f"{payload['status']!r}: {payload.get('error')}"
                    )
                fingerprints[case.key] = payload["result"]["fingerprint"]
        cold_wall = time.perf_counter() - cold_start

        # mixed multi-client leg: warm fast-matrix repeats + fresh combos
        per_client = max(1, requests // max(clients, 1))

        def mixed_worker(worker_index: int):
            import random as _random

            rnd = _random.Random(1000 + worker_index)
            shed = failures = completed = 0
            with GatewayClient(host, port, poll_interval=0.005) as worker:
                for _ in range(per_client):
                    if rnd.random() < 0.2:
                        workload, routing_paths, num_factories = rnd.choice(
                            _GATEWAY_FRESH
                        )
                    else:
                        case = rnd.choice(cases)
                        workload = case.workload
                        routing_paths = case.routing_paths
                        num_factories = case.num_factories
                    try:
                        payload = worker.compile(
                            workload=workload,
                            routing_paths=routing_paths,
                            num_factories=num_factories,
                        )
                    except GatewayError as exc:
                        if exc.code in ("rate-limited", "overloaded"):
                            shed += 1
                            time.sleep(min(exc.retry_after or 0.02, 0.1))
                        else:
                            failures += 1
                    else:
                        if payload["status"] == "done":
                            completed += 1
                            seen = fingerprints.get(payload["id"])
                            if (
                                seen is not None
                                and seen != payload["result"]["fingerprint"]
                            ):
                                failures += 1
                        else:
                            failures += 1
            return shed, failures, completed

        mixed_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            outcomes = list(pool.map(mixed_worker, range(clients)))
        mixed_wall = time.perf_counter() - mixed_start
        shed = sum(outcome[0] for outcome in outcomes)
        failures = sum(outcome[1] for outcome in outcomes)
        completed = sum(outcome[2] for outcome in outcomes)
        attempts = shed + failures + completed

        # resubmission leg: every fast-matrix key again — all must come
        # back from the job store with zero new backend dispatches
        with GatewayClient(host, port, poll_interval=0.005) as client:
            before = [
                entry["dispatched"]
                for entry in client.stats()["shards"]
            ]
            for case in cases:
                payload = patient(
                    client.submit,
                    workload=case.workload,
                    routing_paths=case.routing_paths,
                    num_factories=case.num_factories,
                )
                if payload["status"] != "done":
                    raise RuntimeError(
                        f"resubmitted case {case.key} not served from the "
                        f"store (status {payload['status']!r})"
                    )
            stats = client.stats()
            after = [entry["dispatched"] for entry in stats["shards"]]
        if after != before:
            raise RuntimeError(
                f"resubmission dispatched to backends: {before} -> {after}"
            )

        latency = stats["gateway"]["latency"]
        tenants = stats["gateway"]["tenants"]
        phase = {
            "shards": 2,
            "cases": fingerprints,
            "cold": {
                "cases": len(cases),
                "total_wall": round(cold_wall, 4),
            },
            "mixed": {
                "clients": clients,
                "requests": attempts,
                "completed": completed,
                "failures": failures,
                "shed": shed,
                "shed_rate": round(shed / attempts, 4) if attempts else 0.0,
                "total_wall": round(mixed_wall, 4),
                "rps": (
                    round(completed / mixed_wall, 1) if mixed_wall else None
                ),
                "p50_ms": latency.get("p50_ms"),
                "p99_ms": latency.get("p99_ms"),
            },
            "per_shard": [
                {
                    "shard": entry["shard"],
                    "dispatched": entry["dispatched"],
                    "healthy": entry["healthy"],
                }
                for entry in stats["shards"]
            ],
            "tenants": tenants,
            "resubmit_zero_dispatch": True,
        }
    note(
        f"gateway: {completed} completed of {attempts} submissions "
        f"({phase['mixed']['rps']} req/s, shed rate "
        f"{phase['mixed']['shed_rate']}, p99 {latency.get('p99_ms')}ms)"
    )
    if failures:
        raise RuntimeError(
            f"gateway phase lost {failures} request(s) without a "
            "shed/rate-limit verdict"
        )
    return phase


def gateway_baseline_mismatches(baseline: dict, report: dict) -> List[str]:
    """Fingerprint drift between two reports' gateway phases.

    Compares the ``gateway.cases`` fingerprints — the behavioural part of
    the phase; throughput numbers are machine-dependent and not gated.
    Returns human-readable mismatch lines (empty = no drift).
    """
    base_cases = (baseline.get("gateway") or {}).get("cases") or {}
    current_cases = (report.get("gateway") or {}).get("cases") or {}
    if not base_cases:
        return ["baseline has no gateway phase (run `repro service-bench`)"]
    mismatches: List[str] = []
    for key in sorted(base_cases):
        if key not in current_cases:
            mismatches.append(f"{key}: missing from the current gateway phase")
            continue
        fields = set(base_cases[key]) | set(current_cases[key])
        for field_name in sorted(fields):
            want = base_cases[key].get(field_name)
            got = current_cases[key].get(field_name)
            if want != got:
                mismatches.append(
                    f"{key}: {field_name} {got!r} != baseline {want!r}"
                )
    return mismatches


def _degraded_phase(host, port, service, kill_faults, note) -> dict:
    """Sustained fresh compiles under worker kills, then a recovery leg."""
    # fresh configs (not in the fast matrix) so requests actually reach
    # the worker pool instead of the memo; repeats mix in warm traffic
    combos = [
        (workload, r, f)
        for workload in (
            "ising_2d_2x2", "heisenberg_2d_2x2", "fermi_hubbard_2d_2x2"
        )
        for r in (3, 4, 5, 6)
        for f in (1, 2)
    ]
    pool_before = service.service.engine.pool_stats() or {}
    kill_faults.enabled = True
    latency = LatencyWindow(maxlen=len(combos))
    failures = 0
    degraded_start = time.perf_counter()
    try:
        with Client(
            host, port, timeout=120.0,
            retry=RetryPolicy(attempts=3, base_delay=0.05),
        ) as client:
            for workload, routing_paths, num_factories in combos:
                begin = time.perf_counter()
                try:
                    client.compile(
                        workload=workload,
                        routing_paths=routing_paths,
                        num_factories=num_factories,
                    )
                except Exception:  # noqa: BLE001 — counted, phase-fatal below
                    failures += 1
                latency.add(time.perf_counter() - begin)
    finally:
        kill_faults.enabled = False
    degraded_wall = time.perf_counter() - degraded_start
    pool_after = service.service.engine.pool_stats() or {}

    # recovery leg: warm traffic must be back to zero-recompile service
    recovery_sources: Dict[str, int] = {}
    recovery_start = time.perf_counter()
    with Client(host, port) as client:
        for workload, routing_paths, num_factories in combos:
            reply = client.compile(
                workload=workload,
                routing_paths=routing_paths,
                num_factories=num_factories,
            )
            recovery_sources[reply.source] = (
                recovery_sources.get(reply.source, 0) + 1
            )
    recovery_wall = time.perf_counter() - recovery_start

    phase = {
        "requests": len(combos),
        "failures": failures,
        "worker_kills": kill_faults.kills,
        "worker_restarts": (
            pool_after.get("restarts", 0) - pool_before.get("restarts", 0)
        ),
        "job_retries": (
            pool_after.get("retries", 0) - pool_before.get("retries", 0)
        ),
        "total_wall": round(degraded_wall, 4),
        "rps": round(len(combos) / degraded_wall, 1) if degraded_wall else None,
        **latency.snapshot(),
        "recovery": {
            "requests": len(combos),
            "total_wall": round(recovery_wall, 4),
            "rps": (
                round(len(combos) / recovery_wall, 1) if recovery_wall else None
            ),
            "sources": recovery_sources,
        },
    }
    note(
        f"degraded: {len(combos)} requests under a 1/{kill_faults.every} "
        f"worker-kill rate in {degraded_wall:.3f}s "
        f"({kill_faults.kills} kill(s), {failures} failure(s)); "
        f"recovery {phase['recovery']['rps']} req/s warm"
    )
    if failures:
        raise RuntimeError(
            f"degraded phase lost {failures} request(s) under worker kills"
        )
    if set(recovery_sources) - {"memo", "disk"}:
        raise RuntimeError(
            f"recovery leg recompiled: sources {recovery_sources}"
        )
    return phase


def write_service_report(report: dict, path: str) -> None:
    """Persist a service bench report as pretty sorted JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def service_report_text(report: dict) -> str:
    """Human-readable digest of one service bench report."""
    warm = report["warm"]
    coalesce = report["coalesce"]
    engine = report["server"]["engine"]
    lines = [
        f"cold : {len(report['cold']['cases'])} cases in "
        f"{report['cold']['total_wall']:.3f}s",
        f"warm : {warm['requests']} requests in {warm['total_wall']:.3f}s "
        f"= {warm['rps']} req/s (p50 {warm['p50_ms']}ms, "
        f"p95 {warm['p95_ms']}ms), 0 recompilations",
        f"burst: {coalesce['clients']} identical concurrent requests -> "
        f"{coalesce['compiled']} compiled, {coalesce['coalesced']} "
        f"coalesced, {coalesce['cache_hits']} cache hits",
        f"total compilations server-side: {engine['compiled']}",
    ]
    degraded = report.get("degraded")
    if degraded:
        lines.insert(
            3,
            f"chaos: {degraded['requests']} requests under a "
            f"{degraded['worker_kills']}-kill storm = {degraded['rps']} req/s "
            f"(p95 {degraded['p95_ms']}ms, {degraded['failures']} failures, "
            f"{degraded['worker_restarts']} worker restarts); recovery "
            f"{degraded['recovery']['rps']} req/s",
        )
    gateway = report.get("gateway")
    if gateway:
        mixed = gateway["mixed"]
        lines.append(
            f"gate : {mixed['completed']}/{mixed['requests']} submissions "
            f"through {gateway['shards']} shards = {mixed['rps']} req/s "
            f"(shed rate {mixed['shed_rate']}, p99 {mixed['p99_ms']}ms), "
            "resubmission served with 0 dispatches"
        )
    return "\n".join(lines)
