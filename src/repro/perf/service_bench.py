"""Throughput smoke harness for the compile service.

Boots a real :class:`~repro.service.ServiceThread` (own event loop, TCP
socket, persistent worker pool, fresh disk cache) and measures the three
behaviours that make the service worth running:

* **cold** — every case of the fast bench matrix compiled once through
  the service (per-case wall includes protocol + scheduling overhead);
* **warm** — a sustained stream of repeat requests over the same cases:
  all must resolve from the memo with **zero recompilation**; reports
  requests/second and client-observed p50/p95;
* **coalesce** — a burst of concurrent identical requests for one
  uncached job: exactly one compilation, the rest piggyback;
* **degraded** — a sustained stream of fresh compiles while a seeded
  fault hook SIGKILLs every 10th worker dispatch: every request must
  still succeed (the supervised pool respawns workers and retries), and
  the phase reports the throughput cost of running under that failure
  rate plus a **recovery** leg showing warm throughput is intact after
  the faults stop.

``repro service-bench`` writes the numbers to ``BENCH_service.json`` —
the committed copy is the service-layer perf trajectory, the same way
``BENCH_routing.json`` tracks the routing core.  Throughput numbers are
machine-dependent; the *invariants* (warm compiled-count zero, coalesced
burst costing one compile, degraded failure-count zero) are what CI
asserts.
"""

from __future__ import annotations

import json
import platform
import shutil
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional

from .. import __version__
from ..service.batcher import LatencyWindow
from ..service.client import Client, RetryPolicy
from ..service.server import ServiceThread
from ..sweep import CompileCache
from ..sweep.supervisor import FAULT_KILL
from .bench import bench_cases

#: default output file, tracked over time as the service perf trajectory.
BENCH_SERVICE_FILENAME = "BENCH_service.json"

#: the coalesce-burst job: in the full bench matrix but not the fast one,
#: so it is guaranteed cold after the cold/warm phases.
_COALESCE_CASE = ("ising_2d_4x4", 3, 1)

#: degraded phase: SIGKILL every Nth worker dispatch (a 10% kill rate).
_KILL_EVERY = 10


class _KillRateFaults:
    """Fault hook killing every ``every``-th first-attempt dispatch.

    Retries always run clean so the phase measures recovery cost, not a
    pathological kill-the-retry loop; the hook stays dormant until the
    degraded phase flips ``enabled``.
    """

    def __init__(self, every: int = _KILL_EVERY) -> None:
        self.every = every
        self.enabled = False
        self.kills = 0
        self._dispatches = 0

    def __call__(self, job_seq: int, attempt: int):
        if not self.enabled or attempt > 1:
            return None
        self._dispatches += 1
        if self._dispatches % self.every == 0:
            self.kills += 1
            return (FAULT_KILL,)
        return None


def run_service_bench(
    jobs: int = 2,
    requests: int = 200,
    clients: int = 8,
    cache_dir: Optional[str] = None,
    progress=None,
) -> dict:
    """Run the three-phase service benchmark; returns the report dict.

    Args:
        jobs: worker processes in the service's compile pool.
        requests: round-trips in the sustained warm phase.
        clients: concurrent connections in the coalesce burst.
        cache_dir: service cache root; defaults to a fresh temp dir so
            the cold phase is genuinely cold.
        progress: optional callable for per-phase status lines.
    """

    def note(text: str) -> None:
        if progress is not None:
            progress(text)

    owned_cache_dir = None
    if cache_dir is None:
        cache_dir = owned_cache_dir = tempfile.mkdtemp(
            prefix="repro-service-bench-"
        )
    try:
        return _run_phases(jobs, requests, clients, cache_dir, note)
    finally:
        if owned_cache_dir is not None:
            shutil.rmtree(owned_cache_dir, ignore_errors=True)


def _run_phases(
    jobs: int, requests: int, clients: int, cache_dir: str, note
) -> dict:
    cases = bench_cases(fast=True)
    report: dict = {
        "meta": {
            "version": __version__,
            "python": platform.python_version(),
            "jobs": jobs,
            "requests": requests,
            "clients": clients,
        }
    }
    kill_faults = _KillRateFaults()
    with ServiceThread(
        jobs=jobs,
        cache=CompileCache(cache_dir),
        job_attempts=3,
        worker_faults=kill_faults,
    ) as service:
        host, port = service.address
        note(f"service on {host}:{port} ({jobs} workers, cache {cache_dir})")

        with Client(host, port) as client:
            # -- cold phase ------------------------------------------------
            cold: Dict[str, float] = {}
            cold_start = time.perf_counter()
            for case in cases:
                begin = time.perf_counter()
                reply = client.compile(
                    workload=case.workload,
                    routing_paths=case.routing_paths,
                    num_factories=case.num_factories,
                )
                cold[case.key] = round(time.perf_counter() - begin, 4)
                if reply.source != "compiled":
                    raise RuntimeError(
                        f"cold case {case.key} resolved from {reply.source!r}"
                    )
            cold_wall = time.perf_counter() - cold_start
            report["cold"] = {
                "cases": cold,
                "total_wall": round(cold_wall, 4),
            }
            note(f"cold: {len(cases)} cases in {cold_wall:.3f}s")

            # -- warm sustained phase --------------------------------------
            latency = LatencyWindow(maxlen=max(requests, 1))
            sources: Dict[str, int] = {}
            warm_start = time.perf_counter()
            for index in range(requests):
                case = cases[index % len(cases)]
                begin = time.perf_counter()
                reply = client.compile(
                    workload=case.workload,
                    routing_paths=case.routing_paths,
                    num_factories=case.num_factories,
                )
                latency.add(time.perf_counter() - begin)
                sources[reply.source] = sources.get(reply.source, 0) + 1
            warm_wall = time.perf_counter() - warm_start
            report["warm"] = {
                "requests": requests,
                "total_wall": round(warm_wall, 4),
                "rps": round(requests / warm_wall, 1) if warm_wall else None,
                "sources": sources,
                **latency.snapshot(),
            }
            note(
                f"warm: {requests} requests in {warm_wall:.3f}s "
                f"({report['warm']['rps']} req/s, "
                f"p95 {report['warm']['p95_ms']}ms)"
            )
            if set(sources) - {"memo", "disk"}:
                raise RuntimeError(f"warm phase recompiled: sources {sources}")

        # -- coalesce burst ------------------------------------------------
        workload, routing_paths, num_factories = _COALESCE_CASE

        def one_burst_request(_: int) -> str:
            with Client(host, port) as burst_client:
                return burst_client.compile(
                    workload=workload,
                    routing_paths=routing_paths,
                    num_factories=num_factories,
                ).source

        burst_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as pool:
            burst_sources: List[str] = list(
                pool.map(one_burst_request, range(clients))
            )
        burst_wall = time.perf_counter() - burst_start
        compiled = burst_sources.count("compiled")
        report["coalesce"] = {
            "clients": clients,
            "total_wall": round(burst_wall, 4),
            "compiled": compiled,
            "coalesced": burst_sources.count("coalesced"),
            "cache_hits": burst_sources.count("memo")
            + burst_sources.count("disk"),
        }
        note(
            f"coalesce: {clients} concurrent identical requests -> "
            f"{compiled} compilation(s)"
        )
        if compiled != 1:
            raise RuntimeError(
                f"coalesce burst compiled {compiled} times (want exactly 1)"
            )

        # -- degraded phase: sustained load under a 10% worker-kill rate ---
        report["degraded"] = _degraded_phase(
            host, port, service, kill_faults, note
        )

        with Client(host, port) as client:
            server_stats = client.stats()
        # the cache path is machine-specific noise in a committed
        # trajectory file — drop it from the persisted snapshot
        if isinstance(server_stats.get("cache"), dict):
            server_stats["cache"].pop("dir", None)
        report["server"] = server_stats
    return report


def _degraded_phase(host, port, service, kill_faults, note) -> dict:
    """Sustained fresh compiles under worker kills, then a recovery leg."""
    # fresh configs (not in the fast matrix) so requests actually reach
    # the worker pool instead of the memo; repeats mix in warm traffic
    combos = [
        (workload, r, f)
        for workload in (
            "ising_2d_2x2", "heisenberg_2d_2x2", "fermi_hubbard_2d_2x2"
        )
        for r in (3, 4, 5, 6)
        for f in (1, 2)
    ]
    pool_before = service.service.engine.pool_stats() or {}
    kill_faults.enabled = True
    latency = LatencyWindow(maxlen=len(combos))
    failures = 0
    degraded_start = time.perf_counter()
    try:
        with Client(
            host, port, timeout=120.0,
            retry=RetryPolicy(attempts=3, base_delay=0.05),
        ) as client:
            for workload, routing_paths, num_factories in combos:
                begin = time.perf_counter()
                try:
                    client.compile(
                        workload=workload,
                        routing_paths=routing_paths,
                        num_factories=num_factories,
                    )
                except Exception:  # noqa: BLE001 — counted, phase-fatal below
                    failures += 1
                latency.add(time.perf_counter() - begin)
    finally:
        kill_faults.enabled = False
    degraded_wall = time.perf_counter() - degraded_start
    pool_after = service.service.engine.pool_stats() or {}

    # recovery leg: warm traffic must be back to zero-recompile service
    recovery_sources: Dict[str, int] = {}
    recovery_start = time.perf_counter()
    with Client(host, port) as client:
        for workload, routing_paths, num_factories in combos:
            reply = client.compile(
                workload=workload,
                routing_paths=routing_paths,
                num_factories=num_factories,
            )
            recovery_sources[reply.source] = (
                recovery_sources.get(reply.source, 0) + 1
            )
    recovery_wall = time.perf_counter() - recovery_start

    phase = {
        "requests": len(combos),
        "failures": failures,
        "worker_kills": kill_faults.kills,
        "worker_restarts": (
            pool_after.get("restarts", 0) - pool_before.get("restarts", 0)
        ),
        "job_retries": (
            pool_after.get("retries", 0) - pool_before.get("retries", 0)
        ),
        "total_wall": round(degraded_wall, 4),
        "rps": round(len(combos) / degraded_wall, 1) if degraded_wall else None,
        **latency.snapshot(),
        "recovery": {
            "requests": len(combos),
            "total_wall": round(recovery_wall, 4),
            "rps": (
                round(len(combos) / recovery_wall, 1) if recovery_wall else None
            ),
            "sources": recovery_sources,
        },
    }
    note(
        f"degraded: {len(combos)} requests under a 1/{kill_faults.every} "
        f"worker-kill rate in {degraded_wall:.3f}s "
        f"({kill_faults.kills} kill(s), {failures} failure(s)); "
        f"recovery {phase['recovery']['rps']} req/s warm"
    )
    if failures:
        raise RuntimeError(
            f"degraded phase lost {failures} request(s) under worker kills"
        )
    if set(recovery_sources) - {"memo", "disk"}:
        raise RuntimeError(
            f"recovery leg recompiled: sources {recovery_sources}"
        )
    return phase


def write_service_report(report: dict, path: str) -> None:
    """Persist a service bench report as pretty sorted JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")


def service_report_text(report: dict) -> str:
    """Human-readable digest of one service bench report."""
    warm = report["warm"]
    coalesce = report["coalesce"]
    engine = report["server"]["engine"]
    lines = [
        f"cold : {len(report['cold']['cases'])} cases in "
        f"{report['cold']['total_wall']:.3f}s",
        f"warm : {warm['requests']} requests in {warm['total_wall']:.3f}s "
        f"= {warm['rps']} req/s (p50 {warm['p50_ms']}ms, "
        f"p95 {warm['p95_ms']}ms), 0 recompilations",
        f"burst: {coalesce['clients']} identical concurrent requests -> "
        f"{coalesce['compiled']} compiled, {coalesce['coalesced']} "
        f"coalesced, {coalesce['cache_hits']} cache hits",
        f"total compilations server-side: {engine['compiled']}",
    ]
    degraded = report.get("degraded")
    if degraded:
        lines.insert(
            3,
            f"chaos: {degraded['requests']} requests under a "
            f"{degraded['worker_kills']}-kill storm = {degraded['rps']} req/s "
            f"(p95 {degraded['p95_ms']}ms, {degraded['failures']} failures, "
            f"{degraded['worker_restarts']} worker restarts); recovery "
            f"{degraded['recovery']['rps']} req/s",
        )
    return "\n".join(lines)
