"""Compiler performance benchmarking (the ``repro bench`` subcommand)."""

from .bench import (
    BENCH_FILENAME,
    BenchCase,
    BenchReport,
    bench_cases,
    compare_reports,
    has_drift,
    run_bench,
)

__all__ = [
    "BENCH_FILENAME",
    "BenchCase",
    "BenchReport",
    "bench_cases",
    "compare_reports",
    "has_drift",
    "run_bench",
]
