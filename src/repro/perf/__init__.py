"""Compiler performance benchmarking.

Two harnesses, two committed trajectory files:

* :mod:`~repro.perf.bench` (``repro bench``) times end-to-end
  compilations over the workload suite and gates on the behavioural
  fingerprint — ``BENCH_routing.json``;
* :mod:`~repro.perf.service_bench` (``repro service-bench``) measures
  the compile service's cold/warm/coalesce behaviour and sustained
  throughput — ``BENCH_service.json``.
"""

from .bench import (
    BENCH_FILENAME,
    BenchCase,
    BenchReport,
    bench_cases,
    compare_reports,
    has_drift,
    run_bench,
)
from .service_bench import (
    BENCH_SERVICE_FILENAME,
    run_service_bench,
    service_report_text,
    write_service_report,
)

__all__ = [
    "BENCH_FILENAME",
    "BENCH_SERVICE_FILENAME",
    "BenchCase",
    "BenchReport",
    "bench_cases",
    "compare_reports",
    "has_drift",
    "run_bench",
    "run_service_bench",
    "service_report_text",
    "write_service_report",
]
