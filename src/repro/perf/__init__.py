"""Compiler performance benchmarking.

Three harnesses, three committed trajectory files:

* :mod:`~repro.perf.bench` (``repro bench``) times end-to-end
  compilations over the workload suite and gates on the behavioural
  fingerprint — ``BENCH_routing.json``;
* :mod:`~repro.perf.service_bench` (``repro service-bench``) measures
  the compile service's cold/warm/coalesce behaviour and sustained
  throughput — ``BENCH_service.json``;
* :mod:`~repro.perf.cache_bench` (``repro cache-bench``) drives the
  tiered cache through every resolution path — a cold engine fleet
  warming from one seeded ``cache-serve`` peer, disk/memo promotion,
  and a peer outage — ``BENCH_cache.json``.

plus :mod:`~repro.perf.profiler`, the per-phase attribution layer both
harnesses and the compile pipeline share (``repro bench --profile``).

Exports resolve lazily (PEP 562): the profiler's seams live inside the
hot compile modules (routing, scheduling, verify), so importing
``repro.perf.profiler`` from them must not drag the bench harness — and
with it the whole compiler package — back in through this ``__init__``.
"""

_BENCH_EXPORTS = {
    "BENCH_FILENAME",
    "BenchCase",
    "BenchReport",
    "bench_cases",
    "compare_reports",
    "has_drift",
    "run_bench",
}
_SERVICE_EXPORTS = {
    "BENCH_SERVICE_FILENAME",
    "run_service_bench",
    "service_report_text",
    "write_service_report",
}
_CACHE_BENCH_EXPORTS = {
    "BENCH_CACHE_FILENAME",
    "run_cache_bench",
    "write_cache_report",
}
_QUALITY_EXPORTS = {
    "BENCH_QUALITY_FILENAME",
    "QualityReport",
    "compare_quality",
    "quality_regressions",
    "run_quality_bench",
}

__all__ = sorted(
    _BENCH_EXPORTS | _SERVICE_EXPORTS | _CACHE_BENCH_EXPORTS | _QUALITY_EXPORTS
)


def __getattr__(name):
    if name in _BENCH_EXPORTS:
        from . import bench

        return getattr(bench, name)
    if name in _SERVICE_EXPORTS:
        from . import service_bench

        return getattr(service_bench, name)
    if name in _CACHE_BENCH_EXPORTS:
        from . import cache_bench

        return getattr(cache_bench, name)
    if name in _QUALITY_EXPORTS:
        from . import quality_bench

        return getattr(quality_bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
