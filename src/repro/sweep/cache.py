"""Persistent, content-addressed store of compilation results (disk tier).

Each entry is one JSON file named by its job key (see
:mod:`repro.sweep.jobs`): ``<cache_dir>/<key[:2]>/<key>.json``.  Because
the key already covers the circuit, the full compiler config and the
serialization schema, invalidation is automatic — any change to the input
or the format simply addresses a different file.  Deleting the directory
(or passing ``--no-cache``) is always safe.

:class:`CompileCache` is the **disk tier** of the tiered cache (see
:mod:`repro.sweep.tiers`): it implements the :class:`CacheBackend`
contract (``get``/``put``/``stats``) on top of its crash-safe store, and
optionally enforces a byte ``size_budget`` with least-recently-used
eviction.  Eviction never removes an entry that is being read right now
(reads pin their key), so a tight budget degrades hit rate, never
correctness.

The store is crash-safe in both directions:

* **writes** go to a temp file in the entry's directory, are ``fsync``\\ ed,
  and land via ``os.replace`` — a crash (or a parallel writer) can never
  leave a torn entry under the final name, and a power loss cannot leave
  an empty one.  A failing write (disk full, permission error) is
  *counted*, not raised: the cache is an accelerator, so the caller's
  freshly compiled result must still reach the client.
* **reads** verify a SHA-256 checksum recorded at write time over the
  canonical result payload.  An entry that fails to parse, fails its
  checksum, or carries the wrong key is **quarantined** — moved into
  ``<cache_dir>/quarantine/`` and counted — never silently served and
  never allowed to crash the request; the lookup simply misses and the
  job recompiles.  Transient I/O errors (``EIO`` and friends) miss
  without quarantining, since the bytes on disk may be fine.

The quarantine directory itself is bounded (``quarantine_cap`` entries,
oldest evicted first), so a flaky disk cannot grow it without limit.

``FaultInjector`` is the seam the chaos harness uses to make disk
failures deterministic: its hooks run inside ``load``/``store`` and may
raise ``OSError`` or truncate the just-written file.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..compiler.result import CompilationResult
from .tiers import CacheBackend

#: environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: subdirectory (under the cache root) where corrupt entries are moved.
QUARANTINE_DIR = "quarantine"

#: default bound on quarantined entries kept around for post-mortems.
DEFAULT_QUARANTINE_CAP = 64


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro/sweep``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweep"


def payload_checksum(result_dict: dict) -> str:
    """SHA-256 over the canonical JSON form of a serialized result."""
    canonical = json.dumps(result_dict, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


class FaultInjector:
    """Deterministic disk-fault hooks for the chaos harness.

    Subclass (or assign the attributes) to inject failures; the default
    hooks do nothing.  ``on_read``/``on_write`` run inside
    :meth:`CompileCache.load` / :meth:`CompileCache.store` and may raise
    ``OSError`` to simulate I/O failure; ``after_write`` runs after the
    entry has landed under its final name and may mutilate it (truncate,
    overwrite) to simulate a torn write that snuck past the journal.
    """

    def on_read(self, path: Path) -> None:  # pragma: no cover - default no-op
        pass

    def on_write(self, path: Path) -> None:  # pragma: no cover - default no-op
        pass

    def after_write(self, path: Path) -> None:  # pragma: no cover - no-op
        pass


class CompileCache(CacheBackend):
    """On-disk result store with hit/miss and corruption accounting.

    The disk tier of the tiered cache: implements the
    :class:`~repro.sweep.tiers.CacheBackend` contract, plus the legacy
    object-level :meth:`load`/:meth:`store` API the rest of the codebase
    grew up with.

    Args:
        cache_dir: entry-tree root (default ``$REPRO_CACHE_DIR``, else
            ``~/.cache/repro/sweep``).
        faults: optional :class:`FaultInjector` (chaos harness seam).
        size_budget: soft bound in bytes on the entry tree; exceeding it
            evicts least-recently-used entries (pinned — currently being
            read — entries are skipped).  None disables eviction.
        quarantine_cap: bound on files kept in ``quarantine/``; the
            oldest are deleted beyond it.  None disables the cap.

    Attributes:
        hits / misses / stores: counters since construction (misses count
            only failed lookups, not stores).
        quarantined: corrupt entries moved aside by :meth:`load`.
        read_errors: transient I/O failures during :meth:`load` (missed
            without quarantining).
        store_errors: failed :meth:`store` calls (swallowed, counted).
        evictions: entries removed by the size budget.
        quarantine_evictions: quarantined files removed by the cap.
    """

    name = "disk"
    trusted = True
    object_store = False

    def __init__(
        self,
        cache_dir: Union[str, Path, None] = None,
        faults: Optional[FaultInjector] = None,
        size_budget: Optional[int] = None,
        quarantine_cap: Optional[int] = DEFAULT_QUARANTINE_CAP,
    ) -> None:
        super().__init__()
        self.root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.faults = faults
        self.size_budget = size_budget
        self.quarantine_cap = quarantine_cap
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0
        self.read_errors = 0
        self.store_errors = 0
        self.quarantine_evictions = 0
        # LRU index over the entry tree (key -> size in bytes), built
        # lazily from a directory scan the first time the budget matters.
        self._index: Optional["OrderedDict[str, int]"] = None
        self._index_bytes = 0
        # keys with a read in flight; eviction must never unlink them
        self._pins: Dict[str, int] = {}
        self._mu = threading.Lock()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- read path ----------------------------------------------------------

    def _read_entry(self, key: str) -> Optional[Tuple[dict, CompilationResult]]:
        """The verified ``(payload, result)`` for ``key``, or None.

        A missing file is a plain miss.  A present-but-unreadable file is
        a miss that counts a ``read_error`` (the bytes may be fine — the
        I/O was not).  A readable file whose contents fail to parse,
        carry the wrong key, or fail the checksum is quarantined: moved
        to ``quarantine/`` and counted, so corruption is visible in
        stats and can never be served or re-hit on the next lookup.
        """
        path = self._path(key)
        try:
            if self.faults is not None:
                self.faults.on_read(path)
            with open(path) as handle:
                raw = handle.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.read_errors += 1
            self.misses += 1
            return None
        try:
            data = json.loads(raw)
            if data["key"] != key:
                raise ValueError("entry is addressed by a different key")
            if data["checksum"] != payload_checksum(data["result"]):
                raise ValueError("entry failed its checksum")
            result = CompilationResult.from_dict(data["result"])
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self._forget(key)
            self.misses += 1
            return None
        self.hits += 1
        self._touch(key, len(raw))
        return data["result"], result

    def _pinned_read(self, key: str) -> Optional[Tuple[dict, CompilationResult]]:
        """Read ``key`` with the entry pinned against concurrent eviction."""
        started = time.perf_counter()
        self._pin(key)
        try:
            return self._read_entry(key)
        finally:
            self._unpin(key)
            self.get_ms += (time.perf_counter() - started) * 1000.0

    def load(self, key: str) -> Optional[CompilationResult]:
        """The verified cached result for ``key``, or None (see `_read_entry`)."""
        entry = self._pinned_read(key)
        return None if entry is None else entry[1]

    def get(self, key: str) -> Optional[dict]:
        """CacheBackend contract: the serialized result for ``key``, or None."""
        entry = self._pinned_read(key)
        return None if entry is None else entry[0]

    def get_result(self, key: str) -> Optional[CompilationResult]:
        return self.load(key)

    # -- write path ---------------------------------------------------------

    def _write_entry(self, key: str, result_dict: dict) -> None:
        path = self._path(key)
        envelope = {
            "key": key,
            "checksum": payload_checksum(result_dict),
            "result": result_dict,
        }
        text = json.dumps(envelope, sort_keys=True)
        tmp = None
        try:
            if self.faults is not None:
                self.faults.on_write(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            tmp = None
        except OSError:
            self.store_errors += 1
            return
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        self.stores += 1
        self._touch(key, len(text))
        self._evict_to_budget()
        if self.faults is not None:
            self.faults.after_write(path)

    def put(self, key: str, result_dict: dict) -> None:
        """Durably persist a serialized result under ``key`` (atomic).

        A failing write is swallowed and counted in ``store_errors``: the
        cache accelerates later runs, it must never fail the run that is
        trying to warm it.
        """
        started = time.perf_counter()
        try:
            self._write_entry(key, result_dict)
        finally:
            self.put_ms += (time.perf_counter() - started) * 1000.0

    def store(self, key: str, result: CompilationResult) -> None:
        """Object-level :meth:`put` (the legacy API)."""
        self.put(key, result.to_dict())

    def put_result(
        self,
        key: str,
        result: CompilationResult,
        payload: Optional[dict] = None,
    ) -> None:
        self.put(key, payload if payload is not None else result.to_dict())

    # -- LRU size budget ----------------------------------------------------

    def _ensure_index(self) -> None:
        if self._index is not None:
            return
        with self._mu:
            if self._index is not None:
                return
            entries = []
            if self.root.is_dir():
                for path in self.root.glob("[0-9a-f][0-9a-f]/*.json"):
                    try:
                        stat = path.stat()
                    except OSError:
                        continue
                    entries.append((stat.st_mtime, path.stem, stat.st_size))
            index: "OrderedDict[str, int]" = OrderedDict()
            total = 0
            # oldest first, so a cold start evicts stale entries first
            for _, key, size in sorted(entries):
                index[key] = size
                total += size
            self._index = index
            self._index_bytes = total

    def _touch(self, key: str, size: int) -> None:
        """Record ``key`` as most-recently-used at ``size`` bytes."""
        if self.size_budget is None:
            return
        self._ensure_index()
        with self._mu:
            old = self._index.pop(key, None)
            if old is not None:
                self._index_bytes -= old
            self._index[key] = size
            self._index_bytes += size

    def _forget(self, key: str) -> None:
        if self._index is None:
            return
        with self._mu:
            old = self._index.pop(key, None)
            if old is not None:
                self._index_bytes -= old

    def _evict_to_budget(self) -> None:
        """Unlink least-recently-used entries until under ``size_budget``.

        Pinned keys (a read is in flight) are never victims: the budget
        is a soft bound, and an entry being served right now must remain
        on disk until its read completes.
        """
        if self.size_budget is None:
            return
        victims = []
        with self._mu:
            while self._index_bytes > self.size_budget:
                victim = next(
                    (k for k in self._index if k not in self._pins), None
                )
                if victim is None:  # everything left is pinned
                    break
                self._index_bytes -= self._index.pop(victim)
                victims.append(victim)
        for key in victims:
            try:
                os.unlink(self._path(key))
            except OSError:
                pass
            self.evictions += 1

    def _pin(self, key: str) -> None:
        with self._mu:
            self._pins[key] = self._pins.get(key, 0) + 1

    def _unpin(self, key: str) -> None:
        with self._mu:
            count = self._pins.get(key, 0) - 1
            if count <= 0:
                self._pins.pop(key, None)
            else:
                self._pins[key] = count

    def discard(self, key: str) -> bool:
        """Drop one entry from the tree (the chaos harness's purge hook)."""
        removed = False
        try:
            os.unlink(self._path(key))
            removed = True
        except OSError:
            pass
        self._forget(key)
        return removed

    # -- quarantine ---------------------------------------------------------

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (best effort — never raises)."""
        target_dir = self.root / QUARANTINE_DIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            # quarantine dir unwritable: fall back to deleting the entry
            # so the corruption at least cannot be re-read
            try:
                os.unlink(path)
            except OSError:
                pass
        self.quarantined += 1
        self._trim_quarantine()

    def quarantine_payload(
        self, key: str, result_dict: dict, reason: str = "remote"
    ) -> None:
        """Park a poisoned payload that never touched the entry tree.

        Used when an **untrusted** tier (a remote peer) serves an entry
        that fails replay validation: the bytes were never written under
        ``<key[:2]>/<key>.json``, but keeping them around (bounded, like
        every quarantined entry) makes the poisoning diagnosable.
        """
        target_dir = self.root / QUARANTINE_DIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            target = target_dir / f"{key}.{reason}.json"
            with open(target, "w") as handle:
                json.dump(
                    {"key": key, "reason": reason, "result": result_dict},
                    handle,
                    sort_keys=True,
                )
        except OSError:
            return
        self.quarantined += 1
        self._trim_quarantine()

    def _trim_quarantine(self) -> None:
        """Delete the oldest quarantined files beyond ``quarantine_cap``."""
        if self.quarantine_cap is None:
            return
        target_dir = self.root / QUARANTINE_DIR
        try:
            files = [p for p in target_dir.iterdir() if p.is_file()]
        except OSError:
            return
        if len(files) <= self.quarantine_cap:
            return

        def _mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0

        files.sort(key=lambda p: (_mtime(p), p.name))
        for victim in files[: len(files) - self.quarantine_cap]:
            try:
                victim.unlink()
                self.quarantine_evictions += 1
            except OSError:
                pass

    # -- reporting ----------------------------------------------------------

    def contains(self, key: str) -> bool:
        return self._path(key).is_file()

    def health(self) -> dict:
        """Counter snapshot for the service stats endpoint."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "read_errors": self.read_errors,
            "store_errors": self.store_errors,
        }

    def stats(self) -> dict:
        """CacheBackend tier snapshot: :meth:`health` plus eviction/latency."""
        snap = dict(self.health())
        snap.update(
            {
                "evictions": self.evictions,
                "quarantine_evictions": self.quarantine_evictions,
                "size_budget": self.size_budget,
                "get_ms": round(self.get_ms, 3),
                "put_ms": round(self.put_ms, 3),
            }
        )
        if self._index is not None:
            snap["entries"] = len(self._index)
            snap["size_bytes"] = self._index_bytes
        return snap

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("[0-9a-f][0-9a-f]/*.json"))
