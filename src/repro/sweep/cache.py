"""Persistent, content-addressed store of compilation results.

Each entry is one JSON file named by its job key (see
:mod:`repro.sweep.jobs`): ``<cache_dir>/<key[:2]>/<key>.json``.  Because
the key already covers the circuit, the full compiler config and the
serialization schema, invalidation is automatic — any change to the input
or the format simply addresses a different file.  Deleting the directory
(or passing ``--no-cache``) is always safe.

The store is crash-safe in both directions:

* **writes** go to a temp file in the entry's directory, are ``fsync``\\ ed,
  and land via ``os.replace`` — a crash (or a parallel writer) can never
  leave a torn entry under the final name, and a power loss cannot leave
  an empty one.  A failing write (disk full, permission error) is
  *counted*, not raised: the cache is an accelerator, so the caller's
  freshly compiled result must still reach the client.
* **reads** verify a SHA-256 checksum recorded at write time over the
  canonical result payload.  An entry that fails to parse, fails its
  checksum, or carries the wrong key is **quarantined** — moved into
  ``<cache_dir>/quarantine/`` and counted — never silently served and
  never allowed to crash the request; the lookup simply misses and the
  job recompiles.  Transient I/O errors (``EIO`` and friends) miss
  without quarantining, since the bytes on disk may be fine.

``FaultInjector`` is the seam the chaos harness uses to make disk
failures deterministic: its hooks run inside ``load``/``store`` and may
raise ``OSError`` or truncate the just-written file.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from ..compiler.result import CompilationResult

#: environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: subdirectory (under the cache root) where corrupt entries are moved.
QUARANTINE_DIR = "quarantine"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro/sweep``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweep"


def payload_checksum(result_dict: dict) -> str:
    """SHA-256 over the canonical JSON form of a serialized result."""
    canonical = json.dumps(result_dict, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


class FaultInjector:
    """Deterministic disk-fault hooks for the chaos harness.

    Subclass (or assign the attributes) to inject failures; the default
    hooks do nothing.  ``on_read``/``on_write`` run inside
    :meth:`CompileCache.load` / :meth:`CompileCache.store` and may raise
    ``OSError`` to simulate I/O failure; ``after_write`` runs after the
    entry has landed under its final name and may mutilate it (truncate,
    overwrite) to simulate a torn write that snuck past the journal.
    """

    def on_read(self, path: Path) -> None:  # pragma: no cover - default no-op
        pass

    def on_write(self, path: Path) -> None:  # pragma: no cover - default no-op
        pass

    def after_write(self, path: Path) -> None:  # pragma: no cover - no-op
        pass


class CompileCache:
    """On-disk result store with hit/miss and corruption accounting.

    Attributes:
        hits / misses / stores: counters since construction (misses count
            only failed lookups, not stores).
        quarantined: corrupt entries moved aside by :meth:`load`.
        read_errors: transient I/O failures during :meth:`load` (missed
            without quarantining).
        store_errors: failed :meth:`store` calls (swallowed, counted).
    """

    def __init__(
        self,
        cache_dir: Union[str, Path, None] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.faults = faults
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0
        self.read_errors = 0
        self.store_errors = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[CompilationResult]:
        """The verified cached result for ``key``, or None.

        A missing file is a plain miss.  A present-but-unreadable file is
        a miss that counts a ``read_error`` (the bytes may be fine — the
        I/O was not).  A readable file whose contents fail to parse,
        carry the wrong key, or fail the checksum is quarantined: moved
        to ``quarantine/`` and counted, so corruption is visible in
        stats and can never be served or re-hit on the next lookup.
        """
        path = self._path(key)
        try:
            if self.faults is not None:
                self.faults.on_read(path)
            with open(path) as handle:
                raw = handle.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.read_errors += 1
            self.misses += 1
            return None
        try:
            data = json.loads(raw)
            if data["key"] != key:
                raise ValueError("entry is addressed by a different key")
            if data["checksum"] != payload_checksum(data["result"]):
                raise ValueError("entry failed its checksum")
            result = CompilationResult.from_dict(data["result"])
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (best effort — never raises)."""
        target_dir = self.root / QUARANTINE_DIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            # quarantine dir unwritable: fall back to deleting the entry
            # so the corruption at least cannot be re-read
            try:
                os.unlink(path)
            except OSError:
                pass
        self.quarantined += 1

    def store(self, key: str, result: CompilationResult) -> None:
        """Durably persist ``result`` under ``key`` (atomic, checksummed).

        A failing write is swallowed and counted in ``store_errors``: the
        cache accelerates later runs, it must never fail the run that is
        trying to warm it.
        """
        path = self._path(key)
        result_dict = result.to_dict()
        payload = {
            "key": key,
            "checksum": payload_checksum(result_dict),
            "result": result_dict,
        }
        tmp = None
        try:
            if self.faults is not None:
                self.faults.on_write(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            tmp = None
        except OSError:
            self.store_errors += 1
            return
        finally:
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        self.stores += 1
        if self.faults is not None:
            self.faults.after_write(path)

    def contains(self, key: str) -> bool:
        return self._path(key).is_file()

    def health(self) -> dict:
        """Counter snapshot for the service stats endpoint."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "read_errors": self.read_errors,
            "store_errors": self.store_errors,
        }

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("[0-9a-f][0-9a-f]/*.json"))
