"""Persistent, content-addressed store of compilation results.

Each entry is one JSON file named by its job key (see
:mod:`repro.sweep.jobs`): ``<cache_dir>/<key[:2]>/<key>.json``.  Because
the key already covers the circuit, the full compiler config and the
serialization schema, invalidation is automatic — any change to the input
or the format simply addresses a different file.  Deleting the directory
(or passing ``--no-cache``) is always safe.

Writes are atomic (temp file + ``os.replace``), so a crashed or parallel
run can never leave a torn entry; unreadable or corrupt entries are treated
as misses and overwritten.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from ..compiler.result import CompilationResult

#: environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro/sweep``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweep"


class CompileCache:
    """On-disk result store with hit/miss accounting.

    Attributes:
        hits / misses / stores: counters since construction (misses count
            only failed lookups, not stores).
    """

    def __init__(self, cache_dir: Union[str, Path, None] = None) -> None:
        self.root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[CompilationResult]:
        """The cached result for ``key``, or None (corrupt files miss too)."""
        path = self._path(key)
        try:
            with open(path) as handle:
                data = json.load(handle)
            result = CompilationResult.from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, result: CompilationResult) -> None:
        """Atomically persist ``result`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "result": result.to_dict()}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def contains(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
