"""Declarative compile jobs and their content-addressed identities.

A :class:`CompileJob` is one point of an experiment sweep: a circuit plus a
fully resolved :class:`~repro.compiler.config.CompilerConfig`.  Figures
declare grids of jobs; the planner dedupes them by :attr:`CompileJob.key`
(fig9/fig11/fig12 share many points) and the executor fans the survivors
out across processes.

The key is a content address: a SHA-256 over the circuit's canonical gate
stream and the full config.  Anything that can change a compilation's
output — gate list, register width, circuit name (it flows into result
tables), every config knob including the nested instruction set, factory
and synthesis models — feeds the hash, so a cache hit is only possible for
a byte-identical sweep point.  ``CACHE_SCHEMA`` is hashed in too: bump it
whenever the serialized :class:`~repro.compiler.result.CompilationResult`
layout changes, and every stale on-disk entry invalidates itself.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from functools import cached_property, lru_cache
from pathlib import Path
from typing import Optional

from .. import __version__
from ..compiler.config import CompilerConfig
from ..ir.circuit import Circuit

#: serialization-format version; part of every job key.
#: 2: CompilationResult gained ``aux_stats``; older cached payloads would
#: deserialize with empty diagnostics, so re-address them.
CACHE_SCHEMA = 2


@lru_cache(maxsize=1)
def compiler_revision() -> str:
    """SHA-256 over the ``repro`` package sources (computed once per process).

    Folding the code itself into every job key makes persistent-cache
    invalidation automatic: editing any compiler source re-addresses every
    entry, so a warm cache can never serve results produced by older code.
    Hashing the whole package is deliberately conservative (a docstring
    edit also invalidates) — a stale figure is far worse than a cold cache.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for source in sorted(package_root.rglob("*.py")):
        digest.update(str(source.relative_to(package_root)).encode())
        digest.update(b"\0")
        try:
            digest.update(source.read_bytes())
        except OSError:
            continue
        digest.update(b"\0")
    return digest.hexdigest()


def circuit_fingerprint(circuit: Circuit) -> str:
    """SHA-256 over the canonical gate stream (name, qubits, params)."""
    digest = hashlib.sha256()
    digest.update(f"{circuit.name}|{circuit.num_qubits}\n".encode())
    for gate in circuit:
        qubits = ",".join(map(str, gate.qubits))
        param = "" if gate.param is None else repr(gate.param)
        digest.update(f"{gate.name}|{qubits}|{param}\n".encode())
    return digest.hexdigest()


def config_fingerprint(config: CompilerConfig) -> str:
    """SHA-256 over the full config, nested models included.

    The compute-kernel ``backend`` is excluded: backends are bit-identical
    by contract (the fuzz parity oracle enforces it), so a cache entry
    produced on one backend must hit on any other.
    """
    payload = asdict(config)
    payload.pop("backend", None)
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class CompileJob:
    """One (circuit, config) compile point of a sweep.

    Attributes:
        circuit: the program to compile.
        config: the fully resolved compiler configuration.
        tag: optional human-readable origin (e.g. ``"fig9"``), for logs
            only — it does not participate in the identity key.
    """

    circuit: Circuit
    config: CompilerConfig
    tag: Optional[str] = None

    @cached_property
    def key(self) -> str:
        """Content address used for dedupe, memoisation and the disk cache.

        Cached: the underlying hash walks the whole gate stream, and the
        planner/executor consult the key several times per job.
        """
        return job_key(self.circuit, self.config)


def job_key(circuit: Circuit, config: CompilerConfig) -> str:
    """The content address of one compile point.

    The compiler version *and* a hash of the package sources participate,
    so persisted results cannot outlive the code that produced them.
    """
    digest = hashlib.sha256()
    digest.update(
        f"schema={CACHE_SCHEMA}|compiler={__version__}"
        f"|rev={compiler_revision()}\n".encode()
    )
    digest.update(circuit_fingerprint(circuit).encode())
    digest.update(b"\n")
    digest.update(config_fingerprint(config).encode())
    return digest.hexdigest()
