"""Sweep planning: collapse overlapping figure grids into unique jobs.

The paper figures re-visit the same (model, r, factories) points over and
over — fig9's full grid contains most of fig11's and fig12's r sweeps, the
headline aggregates re-use fig13's candidate layouts, and so on.  Running
each figure naively repays every shared compilation.  ``plan_jobs`` keeps
the first occurrence of every distinct job key, so a multi-figure run
compiles each point exactly once no matter how many figures request it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from .jobs import CompileJob


@dataclass
class SweepPlan:
    """Deduplicated execution plan for a batch of requested jobs.

    Attributes:
        unique: first occurrence of each distinct job, in request order
            (deterministic — the executor and any progress output follow it).
        requested: total number of jobs handed to the planner.
        duplicates_by_key: key -> number of extra requests folded away.
    """

    unique: List[CompileJob] = field(default_factory=list)
    requested: int = 0
    duplicates_by_key: Dict[str, int] = field(default_factory=dict)

    @property
    def duplicates(self) -> int:
        """Compilations avoided by dedupe."""
        return self.requested - len(self.unique)

    def describe(self) -> str:
        return (
            f"sweep plan: {self.requested} requested points -> "
            f"{len(self.unique)} unique compilations "
            f"({self.duplicates} shared across figures)"
        )


def plan_jobs(jobs: Iterable[CompileJob]) -> SweepPlan:
    """Dedupe ``jobs`` by content key, preserving first-seen order."""
    plan = SweepPlan()
    seen: Dict[str, int] = {}
    for job in jobs:
        plan.requested += 1
        key = job.key
        if key in seen:
            plan.duplicates_by_key[key] = plan.duplicates_by_key.get(key, 0) + 1
            continue
        seen[key] = len(plan.unique)
        plan.unique.append(job)
    return plan
