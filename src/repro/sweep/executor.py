"""Parallel sweep execution with memoisation and the persistent cache.

:class:`SweepEngine` is the single entry point the experiment layer
compiles through.  Resolution order for every job:

1. **memo** — results already materialised in this process;
2. **disk** — the content-addressed :class:`~repro.sweep.cache.CompileCache`;
3. **compile** — in-process for single jobs, or fanned out over a
   ``ProcessPoolExecutor`` by :meth:`SweepEngine.prefetch`.

Workers ship results back as their stable ``to_dict`` form (the same bytes
the cache persists), so a result is identical whether it was computed
serially, in a worker, or read back from disk — parallel and cached runs
are bit-identical to serial ones.

The engine is installed per run with :func:`use_engine`;
``experiments.runner`` falls back to a private serial engine when none is
active, which keeps plain library calls (and the test suite) free of disk
and process-pool side effects.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..compiler.config import CompilerConfig
from ..compiler.pipeline import FaultTolerantCompiler
from ..compiler.result import CompilationResult
from ..ir.circuit import Circuit
from .cache import CompileCache
from .jobs import CompileJob, job_key
from .planner import plan_jobs


@dataclass
class SweepCounters:
    """Where every requested compilation was resolved from."""

    memo_hits: int = 0
    disk_hits: int = 0
    compiled: int = 0

    @property
    def requests(self) -> int:
        return self.memo_hits + self.disk_hits + self.compiled

    def as_dict(self) -> Dict[str, int]:
        return {
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "compiled": self.compiled,
        }

    def describe(self) -> str:
        return (
            f"{self.requests} compile requests: {self.compiled} compiled, "
            f"{self.disk_hits} disk hits, {self.memo_hits} memo hits"
        )


def _compile_payload(payload: Tuple[Circuit, CompilerConfig]) -> dict:
    """Worker entry point: compile one job, return the serialized result."""
    circuit, config = payload
    return FaultTolerantCompiler(config).compile(circuit).to_dict()


class SweepEngine:
    """Executes compile jobs with dedupe, caching and process fan-out.

    Args:
        jobs: worker processes for :meth:`prefetch` (1 = fully serial).
        cache: optional persistent store; None keeps everything in-memory.
        validate: replay-validate every resolved result against its circuit
            and config (once per job key, wherever it came from — fresh
            compile, worker, memo or disk, so cache corruption is caught
            too).  Raises :class:`~repro.verify.ValidationError`.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[CompileCache] = None,
        validate: bool = False,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.validate = validate
        self.counters = SweepCounters()
        self._memo: Dict[str, CompilationResult] = {}
        self._validated: set = set()

    def _check(
        self, circuit: Circuit, config: CompilerConfig, result: CompilationResult,
        key: Optional[str] = None, fresh: bool = False,
    ) -> CompilationResult:
        """Validate one resolved result (at most once per job key).

        ``fresh`` marks a result this engine just compiled: with
        ``REPRO_VALIDATE`` forcing validation inside every compile (also in
        worker processes, which inherit the env), re-validating here would
        audit the same schedule twice.
        """
        if not self.validate:
            return result
        if key is not None and key in self._validated:
            return result
        from ..verify import env_forced, raise_if_invalid, validate_result

        if not (fresh and env_forced()):
            raise_if_invalid(
                validate_result(result, circuit, config, label=circuit.name)
            )
        if key is not None:
            self._validated.add(key)
        return result

    # -- single-point API ---------------------------------------------------

    def compile(
        self,
        circuit: Circuit,
        config: CompilerConfig,
        use_cache: bool = True,
    ) -> CompilationResult:
        """Resolve one compile point (memo -> disk -> in-process compile)."""
        if not use_cache:
            self.counters.compiled += 1
            return self._check(
                circuit, config, FaultTolerantCompiler(config).compile(circuit),
                fresh=True,
            )
        key = job_key(circuit, config)
        hit = self._lookup(key)
        if hit is not None:
            return self._check(circuit, config, hit, key)
        result = FaultTolerantCompiler(config).compile(circuit)
        self.counters.compiled += 1
        self._remember(key, result)
        return self._check(circuit, config, result, key, fresh=True)

    def _lookup(self, key: str) -> Optional[CompilationResult]:
        memo = self._memo.get(key)
        if memo is not None:
            self.counters.memo_hits += 1
            return memo
        if self.cache is not None:
            cached = self.cache.load(key)
            if cached is not None:
                self.counters.disk_hits += 1
                self._memo[key] = cached
                return cached
        return None

    def _remember(self, key: str, result: CompilationResult) -> None:
        self._memo[key] = result
        if self.cache is not None:
            self.cache.store(key, result)

    @property
    def validated_keys(self) -> frozenset:
        """Job keys whose results passed replay validation this process."""
        return frozenset(self._validated)

    def clear_memo(self) -> None:
        """Drop in-process results (the disk cache is untouched)."""
        self._memo.clear()

    # -- batch API ----------------------------------------------------------

    def prefetch(self, jobs: Sequence[CompileJob], progress=None) -> None:
        """Materialise every job into the memo, compiling misses in parallel.

        Jobs are deduped first; misses are dispatched to a process pool in
        plan order and collected in the same order, so the memo's contents
        never depend on worker timing.  After ``prefetch`` returns, table
        construction hits the memo only and stays deterministic.
        """
        plan = plan_jobs(jobs)
        missing: List[CompileJob] = []
        for job in plan.unique:
            hit = self._lookup(job.key)
            if hit is None:
                missing.append(job)
            else:
                self._check(job.circuit, job.config, hit, job.key)
        if progress is not None and plan.requested:
            progress(
                f"{plan.describe()}; {len(missing)} to compile "
                f"({self.counters.disk_hits} already cached)"
            )
        if not missing:
            return
        if self.jobs == 1 or len(missing) == 1:
            for job in missing:
                result = FaultTolerantCompiler(job.config).compile(job.circuit)
                self.counters.compiled += 1
                self._remember(job.key, result)
                self._check(job.circuit, job.config, result, job.key, fresh=True)
                if progress is not None:
                    progress(f"compiled {job.tag or 'job'} {job.key[:12]}")
            return
        workers = min(self.jobs, len(missing))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_compile_payload, (job.circuit, job.config))
                for job in missing
            ]
            for job, future in zip(missing, futures):
                result = CompilationResult.from_dict(future.result())
                self.counters.compiled += 1
                self._remember(job.key, result)
                self._check(job.circuit, job.config, result, job.key, fresh=True)
                if progress is not None:
                    progress(f"compiled {job.tag or 'job'} {job.key[:12]}")


# -- active engine ------------------------------------------------------------

_ACTIVE: Optional[SweepEngine] = None


def active_engine() -> Optional[SweepEngine]:
    """The engine installed by :func:`use_engine`, if any."""
    return _ACTIVE


@contextmanager
def use_engine(engine: SweepEngine) -> Iterator[SweepEngine]:
    """Route ``experiments.runner`` compilations through ``engine``."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = engine
    try:
        yield engine
    finally:
        _ACTIVE = previous
