"""Parallel sweep execution with memoisation and the persistent cache.

:class:`SweepEngine` is the single entry point the experiment layer
compiles through.  Resolution order for every job (the tier stack of
:mod:`repro.sweep.tiers`):

1. **memo** — a bounded LRU of results already materialised in this
   process (:class:`~repro.sweep.tiers.MemoryCache`);
2. **disk** — the content-addressed :class:`~repro.sweep.cache.CompileCache`;
3. **remote** — an optional :class:`~repro.service.remote_cache.RemoteCache`
   peer shared across a fleet of engines; remote hits are
   replay-validated on ingest (a poisoned entry can never propagate)
   and **promoted** into disk and memo, and a peer outage degrades to a
   miss, never an error;
4. **compile** — in-process for single jobs, or fanned out over a
   :class:`~repro.sweep.supervisor.SupervisedPool` by
   :meth:`SweepEngine.prefetch` (the pool survives worker crashes and
   enforces per-job deadlines; see :mod:`repro.sweep.supervisor`).

Workers ship results back as their stable ``to_dict`` form (the same bytes
the cache persists), so a result is identical whether it was computed
serially, in a worker, or read back from disk — parallel and cached runs
are bit-identical to serial ones.

The engine is installed per run with :func:`use_engine`;
``experiments.runner`` falls back to a private serial engine when none is
active, which keeps plain library calls (and the test suite) free of disk
and process-pool side effects.

Batch CLI runs use ephemeral engines whose pools live for one
:meth:`SweepEngine.prefetch`.  The compile service instead constructs one
``SweepEngine(..., persistent=True)`` and keeps it for the process
lifetime: :meth:`SweepEngine.submit` / :meth:`SweepEngine.adopt` dispatch
single jobs to the long-lived pool, :meth:`SweepEngine.cached_result`
resolves warm hits without compiling, and :meth:`SweepEngine.shutdown`
tears the pool down on exit.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..compiler.config import CompilerConfig
from ..compiler.pipeline import FaultTolerantCompiler
from ..compiler.result import CompilationResult
from ..ir.circuit import Circuit
from .cache import CompileCache
from .jobs import CompileJob, job_key
from .planner import plan_jobs
from .supervisor import Fault, SupervisedPool
from .tiers import DEFAULT_MEMO_LIMIT, CacheBackend, MemoryCache, TieredCache


@dataclass
class SweepCounters:
    """Tier provenance of every requested compilation."""

    memo_hits: int = 0
    disk_hits: int = 0
    remote_hits: int = 0
    compiled: int = 0

    @property
    def requests(self) -> int:
        return self.memo_hits + self.disk_hits + self.remote_hits + self.compiled

    def record_source(self, source: str) -> None:
        """Count one resolution by its tier name."""
        if source == "memo":
            self.memo_hits += 1
        elif source == "disk":
            self.disk_hits += 1
        elif source == "remote":
            self.remote_hits += 1
        else:
            self.compiled += 1

    def as_dict(self) -> Dict[str, int]:
        return {
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "remote_hits": self.remote_hits,
            "compiled": self.compiled,
        }

    def describe(self) -> str:
        return (
            f"{self.requests} compile requests: {self.compiled} compiled, "
            f"{self.disk_hits} disk hits, {self.memo_hits} memo hits, "
            f"{self.remote_hits} remote hits"
        )


def _compile_payload(payload: Tuple[Circuit, CompilerConfig]) -> dict:
    """Worker entry point: compile one job, return the serialized result."""
    circuit, config = payload
    return FaultTolerantCompiler(config).compile(circuit).to_dict()


class SweepEngine:
    """Executes compile jobs with dedupe, caching and process fan-out.

    Args:
        jobs: worker processes for :meth:`prefetch` (1 = fully serial).
        cache: optional persistent store; None keeps everything in-memory.
        remote: optional untrusted remote tier (a
            :class:`~repro.service.remote_cache.RemoteCache`, or any
            :class:`~repro.sweep.tiers.CacheBackend`).  Remote hits are
            **always** replay-validated before being served or promoted,
            independent of ``validate`` — remote bytes crossed a trust
            boundary.  Rejected entries are quarantined in the local
            disk cache (when present) and resolved as a miss.
        memo_limit: entry bound on the in-process memo tier (LRU).
        validate: replay-validate every resolved result against its circuit
            and config (once per job key, wherever it came from — fresh
            compile, worker, memo or disk, so cache corruption is caught
            too).  Raises :class:`~repro.verify.ValidationError`.
        persistent: keep one long-lived worker pool alive across calls
            instead of spinning a pool up per :meth:`prefetch`.  This is
            the mode the compile service runs in: the pool is created
            lazily on first use, :meth:`submit` dispatches single jobs to
            it, and :meth:`shutdown` (or the context-manager exit) tears
            it down.
        job_deadline: per-job compile budget in seconds enforced by the
            worker pool (None = unbounded).  A wedged worker is killed and
            the job retried; exhausted budgets surface as
            :class:`~repro.sweep.supervisor.JobTimeout`.
        job_attempts: attempts per job before a worker crash or deadline
            expiry becomes the job's failure (1 = never retry).
        worker_faults: optional seeded ``(job_seq, attempt) -> Fault``
            hook forwarded to the pool — the chaos harness's entry point
            for deterministic worker kills and stalls.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[CompileCache] = None,
        remote: Optional[CacheBackend] = None,
        validate: bool = False,
        persistent: bool = False,
        job_deadline: Optional[float] = None,
        job_attempts: int = 3,
        worker_faults: Optional[Callable[[int, int], Fault]] = None,
        memo_limit: int = DEFAULT_MEMO_LIMIT,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.remote = remote
        self.validate = validate
        self.persistent = bool(persistent)
        self.job_deadline = job_deadline
        self.job_attempts = max(1, int(job_attempts))
        self.worker_faults = worker_faults
        self.counters = SweepCounters()
        self.memo = MemoryCache(limit=memo_limit)
        tiers = [self.memo]
        if cache is not None:
            tiers.append(cache)
        if remote is not None:
            tiers.append(remote)
        self.tiers = TieredCache(tiers)
        self._validated: set = set()
        self._pool: Optional[SupervisedPool] = None
        # guards counter mutation on the service paths, where
        # cached_result/adopt run on multiple executor threads at once
        # (the tiers carry their own locks)
        self._lock = threading.Lock()

    def _check(
        self, circuit: Circuit, config: CompilerConfig, result: CompilationResult,
        key: Optional[str] = None, fresh: bool = False,
    ) -> CompilationResult:
        """Validate one resolved result (at most once per job key).

        ``fresh`` marks a result this engine just compiled: with
        ``REPRO_VALIDATE`` forcing validation inside every compile (also in
        worker processes, which inherit the env), re-validating here would
        audit the same schedule twice.
        """
        if not self.validate:
            return result
        if key is not None and key in self._validated:
            return result
        from ..verify import env_forced, raise_if_invalid, validate_result

        if not (fresh and env_forced()):
            raise_if_invalid(
                validate_result(result, circuit, config, label=circuit.name)
            )
        if key is not None:
            self._validated.add(key)
        return result

    # -- single-point API ---------------------------------------------------

    def compile(
        self,
        circuit: Circuit,
        config: CompilerConfig,
        use_cache: bool = True,
    ) -> CompilationResult:
        """Resolve one compile point (memo -> disk -> remote -> compile)."""
        if not use_cache:
            self.counters.compiled += 1
            return self._check(
                circuit, config, FaultTolerantCompiler(config).compile(circuit),
                fresh=True,
            )
        key = job_key(circuit, config)
        hit = self._lookup(key, circuit, config)
        if hit is not None:
            return self._check(circuit, config, hit, key)
        result = FaultTolerantCompiler(config).compile(circuit)
        self.counters.compiled += 1
        # validate before persisting: an invalid schedule must never reach
        # the memo or the shared disk cache, where a later non-validating
        # run would trust it
        self._check(circuit, config, result, key, fresh=True)
        self._remember(key, result)
        return result

    def _lookup(
        self, key: str, circuit: Circuit, config: CompilerConfig
    ) -> Optional[CompilationResult]:
        hit = self._lookup_sourced(key, circuit, config)
        return None if hit is None else hit[0]

    def _ingest_guard(
        self, circuit: Circuit, config: CompilerConfig
    ) -> Callable[[CacheBackend, str, CompilationResult], bool]:
        """The poisoning defense for untrusted (remote) tier hits.

        Replay-validates the entry against the job's own circuit and
        config — regardless of ``self.validate``, since remote bytes
        crossed a trust boundary.  A failing entry is quarantined in the
        local disk cache (evidence for debugging a bad peer) and the
        lookup treats it as a miss.
        """
        from ..verify import validate_result

        def guard(
            tier: CacheBackend, key: str, result: CompilationResult
        ) -> bool:
            report = validate_result(result, circuit, config, label=circuit.name)
            if report.ok:
                self._validated.add(key)
                return True
            if self.cache is not None:
                self.cache.quarantine_payload(
                    key, result.to_dict(), reason=tier.name
                )
            return False

        return guard

    def _lookup_sourced(
        self, key: str, circuit: Circuit, config: CompilerConfig
    ) -> Optional[Tuple[CompilationResult, str]]:
        """Tier lookup returning ``(result, "memo" | "disk" | "remote")``.

        A hit at a lower tier is promoted into the tiers above it, so
        the next lookup for the same key resolves at the memo.
        """
        guard = (
            self._ingest_guard(circuit, config)
            if self.remote is not None
            else None
        )
        hit = self.tiers.lookup(key, guard=guard)
        if hit is None:
            return None
        result, source = hit
        with self._lock:
            self.counters.record_source(source)
        return result, source

    def _remember(
        self,
        key: str,
        result: CompilationResult,
        payload: Optional[dict] = None,
    ) -> None:
        """Fill every tier (memo, disk, and the remote peer when present)."""
        self.tiers.fill(key, result, payload)

    @property
    def validated_keys(self) -> frozenset:
        """Job keys whose results passed replay validation this process."""
        return frozenset(self._validated)

    def clear_memo(self) -> None:
        """Drop in-process results (the disk cache is untouched)."""
        self.memo.clear()

    def purge(self, key: str) -> None:
        """Forget one key in the local tiers (memo + disk).

        The remote peer is deliberately untouched — this is the chaos
        harness's hook for forcing the next lookup to resolve remotely.
        """
        self.memo.discard(key)
        if self.cache is not None:
            self.cache.discard(key)
        self._validated.discard(key)

    def tier_stats(self) -> Dict[str, dict]:
        """Per-tier hit/miss/latency/eviction counters, keyed by tier name."""
        return self.tiers.stats()

    # -- long-lived service API ---------------------------------------------

    def pool(self) -> SupervisedPool:
        """The persistent worker pool, created lazily on first use.

        Only available on engines constructed with ``persistent=True`` —
        ephemeral engines deliberately keep their pools scoped to one
        :meth:`prefetch` call so library users never leak processes.
        """
        if not self.persistent:
            raise RuntimeError(
                "pool() requires a persistent engine "
                "(construct with SweepEngine(..., persistent=True))"
            )
        if self._pool is None:
            self._pool = self._make_pool(self.jobs)
        return self._pool

    def _make_pool(self, workers: int) -> SupervisedPool:
        return SupervisedPool(
            workers=workers,
            deadline=self.job_deadline,
            max_attempts=self.job_attempts,
            fault_hook=self.worker_faults,
        )

    def pool_stats(self) -> Optional[Dict[str, int]]:
        """Supervision counters of the live pool (None before first use)."""
        if self._pool is None:
            return None
        return self._pool.stats.as_dict()

    def submit(self, circuit: Circuit, config: CompilerConfig) -> "Future[dict]":
        """Dispatch one compile to the persistent pool.

        Returns a future of the result's stable ``to_dict`` payload (the
        same bytes the cache persists).  The caller is expected to hand
        the payload back to :meth:`adopt`, which folds it into the memo,
        the disk cache and the counters.  Cache lookup is *not* performed
        here — pair with :meth:`cached_result` first.
        """
        return self.pool().submit(_compile_payload, (circuit, config))

    def cached_result(
        self,
        circuit: Circuit,
        config: CompilerConfig,
        key: Optional[str] = None,
    ) -> Optional[Tuple[CompilationResult, str]]:
        """Resolve a job from the cache tiers only; never compiles.

        Returns ``(result, source)`` with source ``"memo"``, ``"disk"``
        or ``"remote"``, or None on a cold miss.  Validates the hit when
        the engine was constructed with ``validate=True`` (catching
        cache corruption); remote hits are replay-validated regardless.
        """
        if key is None:
            key = job_key(circuit, config)
        hit = self._lookup_sourced(key, circuit, config)
        if hit is None:
            return None
        result, source = hit
        self._check(circuit, config, result, key)
        return result, source

    def adopt(
        self,
        circuit: Circuit,
        config: CompilerConfig,
        payload: dict,
        key: Optional[str] = None,
    ) -> CompilationResult:
        """Fold a worker-produced ``to_dict`` payload into this engine.

        Counts the compilation, memoises (and persists) the result, and
        validates it when the engine validates.  This is the collection
        half of :meth:`submit`, split out so an async caller can await
        the worker future on its own event loop.
        """
        result = CompilationResult.from_dict(payload)
        if key is None:
            key = job_key(circuit, config)
        with self._lock:
            self.counters.compiled += 1
        # validate before persisting (see :meth:`compile`)
        self._check(circuit, config, result, key, fresh=True)
        self._remember(key, result, payload)
        return result

    def shutdown(self) -> None:
        """Tear down the persistent pool (idempotent; memo survives)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        close = getattr(self.remote, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- batch API ----------------------------------------------------------

    def prefetch(
        self,
        jobs: Sequence[CompileJob],
        progress=None,
        tolerant: bool = False,
    ) -> None:
        """Materialise every job into the memo, compiling misses in parallel.

        Jobs are deduped first; misses are dispatched to a process pool in
        plan order and collected in the same order, so the memo's contents
        never depend on worker timing.  After ``prefetch`` returns, table
        construction hits the memo only and stays deterministic.

        ``tolerant=True`` skips jobs whose compile raises instead of
        aborting the whole batch — the fuzz runner uses it so one crashing
        scenario does not discard every other scenario's parallel compile
        (the crash is re-found and attributed when the scenario is checked
        individually).  Batch experiment runs keep the default fail-fast
        behaviour.
        """
        plan = plan_jobs(jobs)
        missing: List[CompileJob] = []
        for job in plan.unique:
            hit = self._lookup(job.key, job.circuit, job.config)
            if hit is None:
                missing.append(job)
            else:
                self._check(job.circuit, job.config, hit, job.key)
        if progress is not None and plan.requested:
            cached = len(plan.unique) - len(missing)
            progress(
                f"{plan.describe()}; {len(missing)} to compile "
                f"({cached} already cached)"
            )
        if not missing:
            return
        if self.jobs == 1 or len(missing) == 1:
            for job in missing:
                try:
                    result = FaultTolerantCompiler(job.config).compile(job.circuit)
                except Exception:
                    if not tolerant:
                        raise
                    continue
                self.counters.compiled += 1
                self._remember(job.key, result)
                self._check(job.circuit, job.config, result, job.key, fresh=True)
                if progress is not None:
                    progress(f"compiled {job.tag or 'job'} {job.key[:12]}")
            return
        if self.persistent:
            self._collect(self.pool(), missing, progress, tolerant)
        else:
            workers = min(self.jobs, len(missing))
            with self._make_pool(workers) as pool:
                self._collect(pool, missing, progress, tolerant)

    def _collect(
        self,
        pool: SupervisedPool,
        missing: List[CompileJob],
        progress,
        tolerant: bool = False,
    ) -> None:
        """Fan ``missing`` out over ``pool`` and adopt results in plan order."""
        futures = [
            pool.submit(_compile_payload, (job.circuit, job.config))
            for job in missing
        ]
        for job, future in zip(missing, futures):
            try:
                payload = future.result()
            except Exception:
                if not tolerant:
                    raise
                continue  # the per-job check re-finds and attributes it
            self.adopt(job.circuit, job.config, payload, job.key)
            if progress is not None:
                progress(f"compiled {job.tag or 'job'} {job.key[:12]}")


# -- active engine ------------------------------------------------------------

_ACTIVE: Optional[SweepEngine] = None


def active_engine() -> Optional[SweepEngine]:
    """The engine installed by :func:`use_engine`, if any."""
    return _ACTIVE


@contextmanager
def use_engine(engine: SweepEngine) -> Iterator[SweepEngine]:
    """Route ``experiments.runner`` compilations through ``engine``."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = engine
    try:
        yield engine
    finally:
        _ACTIVE = previous
