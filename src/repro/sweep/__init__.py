"""Parallel sweep engine: declarative compile-job grids, a dedupe planner,
a process-pool executor and a tiered content-addressed result cache
(bounded in-process memo -> crash-safe disk -> optional remote peer)."""

from .cache import (
    CACHE_DIR_ENV,
    CompileCache,
    default_cache_dir,
    payload_checksum,
)
from .executor import (
    SweepCounters,
    SweepEngine,
    active_engine,
    use_engine,
)
from .tiers import (
    DEFAULT_MEMO_LIMIT,
    CacheBackend,
    MemoryCache,
    TieredCache,
)
from .jobs import (
    CACHE_SCHEMA,
    CompileJob,
    circuit_fingerprint,
    compiler_revision,
    config_fingerprint,
    job_key,
)
from .planner import SweepPlan, plan_jobs
from .supervisor import (
    JobCrashed,
    JobFailure,
    JobTimeout,
    PoolStats,
    SupervisedPool,
)

__all__ = [
    "JobCrashed",
    "JobFailure",
    "JobTimeout",
    "PoolStats",
    "SupervisedPool",
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA",
    "CacheBackend",
    "CompileCache",
    "CompileJob",
    "DEFAULT_MEMO_LIMIT",
    "MemoryCache",
    "SweepCounters",
    "SweepEngine",
    "SweepPlan",
    "TieredCache",
    "active_engine",
    "circuit_fingerprint",
    "compiler_revision",
    "config_fingerprint",
    "default_cache_dir",
    "job_key",
    "payload_checksum",
    "plan_jobs",
    "use_engine",
]
