"""Parallel sweep engine: declarative compile-job grids, a dedupe planner,
a process-pool executor and a persistent content-addressed result cache."""

from .cache import CACHE_DIR_ENV, CompileCache, default_cache_dir
from .executor import (
    SweepCounters,
    SweepEngine,
    active_engine,
    use_engine,
)
from .jobs import (
    CACHE_SCHEMA,
    CompileJob,
    circuit_fingerprint,
    compiler_revision,
    config_fingerprint,
    job_key,
)
from .planner import SweepPlan, plan_jobs
from .supervisor import (
    JobCrashed,
    JobFailure,
    JobTimeout,
    PoolStats,
    SupervisedPool,
)

__all__ = [
    "JobCrashed",
    "JobFailure",
    "JobTimeout",
    "PoolStats",
    "SupervisedPool",
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA",
    "CompileCache",
    "CompileJob",
    "SweepCounters",
    "SweepEngine",
    "SweepPlan",
    "active_engine",
    "circuit_fingerprint",
    "compiler_revision",
    "config_fingerprint",
    "default_cache_dir",
    "job_key",
    "plan_jobs",
    "use_engine",
]
