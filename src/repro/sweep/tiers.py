"""The tiered cache: one ``CacheBackend`` contract, memo -> disk -> remote.

Caching used to be smeared across the stack — an unbounded ``_memo`` dict
inside :class:`~repro.sweep.executor.SweepEngine`, the crash-safe disk
:class:`~repro.sweep.cache.CompileCache`, and nothing at all between
fleet members.  This module gives every tier the same shape:

* :class:`CacheBackend` — the contract: ``get(key) -> result dict | None``,
  ``put(key, result_dict)``, ``stats()``.  Every backend counts hits,
  misses, puts, evictions, errors and cumulative get/put latency, so the
  service ``stats`` op and ``repro bench`` meta can report each tier.
* :class:`MemoryCache` — the in-process memo tier: a bounded LRU of
  live :class:`~repro.compiler.result.CompilationResult` objects
  (``SweepEngine._memo``, extracted and given an eviction policy).
* :class:`~repro.sweep.cache.CompileCache` — the disk tier (defined in
  its own module; it subclasses :class:`CacheBackend`).
* :class:`~repro.service.remote_cache.RemoteCache` — the remote tier,
  speaking the service line protocol to a ``repro cache-serve`` peer.
  It is the one **untrusted** tier: remote bytes crossed a network from
  a machine we do not control, so :class:`TieredCache` replay-validates
  them on ingest before they may be served or promoted.

:class:`TieredCache` stacks backends in lookup order.  A hit at depth N
is **promoted** into every tier above it (a remote hit warms disk and
memo; a disk hit warms memo), so the next lookup resolves at the
cheapest possible tier.  A fill (freshly compiled result) lands in every
tier, which is how one engine's compile becomes the whole fleet's warm
hit.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..compiler.result import CompilationResult

#: default bound on the in-process memo tier (entries, not bytes).
DEFAULT_MEMO_LIMIT = 4096

#: a guard decides whether a hit from an untrusted tier may be served:
#: ``guard(tier, key, result) -> bool``.  False rejects the entry (the
#: lookup continues deeper / misses); the guard is responsible for any
#: local quarantine bookkeeping.
IngestGuard = Callable[["CacheBackend", str, CompilationResult], bool]


class CacheBackend:
    """Contract and shared accounting for one cache tier.

    Subclasses implement ``_get(key) -> Optional[dict]`` and
    ``_put(key, result_dict)``; the public :meth:`get`/:meth:`put`
    wrappers record hit/miss/put counters and cumulative latency.
    Backends that hold live result objects (the memo tier) override
    :meth:`get_result`/:meth:`put_result` to skip the dict round-trip —
    those overrides must record the same counters via
    :meth:`_record_get`/:meth:`_record_put`.

    Attributes:
        name: stable tier name (``"memo"``/``"disk"``/``"remote"``) used
            as the provenance label in sweep counters and stats payloads.
        trusted: False for tiers whose bytes crossed a trust boundary;
            :class:`TieredCache` replay-validates their hits on ingest.
        object_store: True when the tier stores live result objects and
            ignores the serialized payload (lets :class:`TieredCache`
            skip ``to_dict`` when no dict-storing tier needs filling).
    """

    name = "tier"
    trusted = True
    object_store = False

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.errors = 0
        self.rejected = 0
        self.get_ms = 0.0
        self.put_ms = 0.0
        self._stats_lock = threading.Lock()

    # -- counter recording (shared by wrappers and fast-path overrides) -----

    def _record_get(self, hit: bool, started: float) -> None:
        elapsed = (time.perf_counter() - started) * 1000.0
        with self._stats_lock:
            self.get_ms += elapsed
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def _record_put(self, started: float) -> None:
        elapsed = (time.perf_counter() - started) * 1000.0
        with self._stats_lock:
            self.put_ms += elapsed
            self.puts += 1

    # -- the dict-level contract --------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The serialized result stored under ``key``, or None (a miss)."""
        started = time.perf_counter()
        payload = self._get(key)
        self._record_get(payload is not None, started)
        return payload

    def put(self, key: str, result_dict: dict) -> None:
        """Store a serialized result under ``key`` (best effort)."""
        started = time.perf_counter()
        self._put(key, result_dict)
        self._record_put(started)

    def _get(self, key: str) -> Optional[dict]:
        raise NotImplementedError

    def _put(self, key: str, result_dict: dict) -> None:
        raise NotImplementedError

    # -- object-level fast path (what the engine actually calls) ------------

    def get_result(self, key: str) -> Optional[CompilationResult]:
        """Like :meth:`get` but returning a live result object."""
        payload = self.get(key)
        if payload is None:
            return None
        return CompilationResult.from_dict(payload)

    def put_result(
        self,
        key: str,
        result: CompilationResult,
        payload: Optional[dict] = None,
    ) -> None:
        """Like :meth:`put` from a live result.

        ``payload`` lets callers that already serialized the result (a
        worker round-trip, a fill into several tiers) avoid repeating
        ``to_dict`` per tier.
        """
        self.put(key, payload if payload is not None else result.to_dict())

    # -- reporting ----------------------------------------------------------

    def stats(self) -> dict:
        """Hit/miss/latency/eviction counter snapshot for this tier."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "errors": self.errors,
            "rejected": self.rejected,
            "get_ms": round(self.get_ms, 3),
            "put_ms": round(self.put_ms, 3),
        }


class MemoryCache(CacheBackend):
    """The memo tier: a bounded LRU of live results, thread-safe.

    This is ``SweepEngine._memo`` promoted to a real backend: same
    in-process speed (no serialization on the fast path), but bounded —
    a paper-scale sweep or a long-lived service can no longer grow the
    memo without limit.  Eviction is least-recently-used; a hit (or a
    re-put) refreshes recency.
    """

    name = "memo"
    trusted = True
    object_store = True

    def __init__(self, limit: int = DEFAULT_MEMO_LIMIT) -> None:
        super().__init__()
        self.limit = max(1, int(limit))
        self._entries: "OrderedDict[str, CompilationResult]" = OrderedDict()
        self._lock = threading.Lock()

    def _fetch(self, key: str) -> Optional[CompilationResult]:
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
            return result

    def _insert(self, key: str, result: CompilationResult) -> None:
        evicted = 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = result
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            with self._stats_lock:
                self.evictions += evicted

    def _get(self, key: str) -> Optional[dict]:
        result = self._fetch(key)
        return None if result is None else result.to_dict()

    def _put(self, key: str, result_dict: dict) -> None:
        self._insert(key, CompilationResult.from_dict(result_dict))

    def get_result(self, key: str) -> Optional[CompilationResult]:
        started = time.perf_counter()
        result = self._fetch(key)
        self._record_get(result is not None, started)
        return result

    def put_result(
        self,
        key: str,
        result: CompilationResult,
        payload: Optional[dict] = None,
    ) -> None:
        started = time.perf_counter()
        self._insert(key, result)
        self._record_put(started)

    def discard(self, key: str) -> bool:
        """Drop one entry (the chaos harness's purge hook)."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        snap = super().stats()
        snap["entries"] = len(self)
        snap["limit"] = self.limit
        return snap


class TieredCache:
    """An ordered stack of :class:`CacheBackend` tiers.

    Lookup walks the tiers cheapest-first and **promotes on hit**: a
    result found at depth N is written into every tier above it, so the
    stack converges toward serving from the memo.  Fills (fresh
    compiles) land in every tier — including the remote peer, which is
    how one engine's work warms the fleet.

    Hits from untrusted tiers pass through the ``guard`` first; a
    rejected entry is never served and never promoted (the lookup keeps
    walking deeper tiers, and ultimately misses).
    """

    def __init__(self, tiers: Sequence[CacheBackend]) -> None:
        self.tiers: List[CacheBackend] = list(tiers)

    def lookup(
        self, key: str, guard: Optional[IngestGuard] = None
    ) -> Optional[Tuple[CompilationResult, str]]:
        """Resolve ``key`` to ``(result, tier_name)``, or None on a miss."""
        for depth, tier in enumerate(self.tiers):
            result = tier.get_result(key)
            if result is None:
                continue
            if not tier.trusted and guard is not None:
                if not guard(tier, key, result):
                    with tier._stats_lock:
                        tier.rejected += 1
                    continue
            self._promote(key, result, depth)
            return result, tier.name
        return None

    def _promote(self, key: str, result: CompilationResult, depth: int) -> None:
        if depth == 0:
            return
        upper = self.tiers[:depth]
        payload = None
        if any(not tier.object_store for tier in upper):
            payload = result.to_dict()
        for tier in upper:
            tier.put_result(key, result, payload)

    def fill(
        self,
        key: str,
        result: CompilationResult,
        payload: Optional[dict] = None,
    ) -> None:
        """Store a fresh result in every tier (serializing at most once)."""
        if payload is None and any(not t.object_store for t in self.tiers):
            payload = result.to_dict()
        for tier in self.tiers:
            tier.put_result(key, result, payload)

    def stats(self) -> Dict[str, dict]:
        """Per-tier counter snapshots, keyed by tier name."""
        return {tier.name: tier.stats() for tier in self.tiers}
