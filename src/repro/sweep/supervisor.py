"""Supervised worker pool: crash detection, respawn, deadlines, retries.

``concurrent.futures.ProcessPoolExecutor`` treats any worker death as
fatal: the pool flips to ``BrokenProcessPool``, every pending future
fails, and the executor is unusable afterwards.  For a long-lived compile
service that is exactly wrong — one OOM-killed or wedged worker must cost
*one retried job*, not the whole server.  :class:`SupervisedPool` is the
replacement the sweep engine and the compile service run on:

* **crash detection** — a supervisor thread polls worker liveness; a
  worker that dies (crash, ``kill -9``, OOM) is noticed within one poll
  interval and the job it was running is requeued on a fresh worker with
  a bounded attempt budget (:class:`JobCrashed` once the budget is spent);
* **deadlines** — a job that runs past ``deadline`` seconds has its
  worker killed and is retried the same way (:class:`JobTimeout` once the
  budget is spent), so a wedged compile can never hang a client forever;
* **pool recycling** — because SIGKILL can land while a worker holds the
  shared result queue's internal write lock, any worker death
  conservatively discards every queue and respawns the whole fleet; jobs
  running innocently on healthy workers are requeued without burning an
  attempt, and results already in flight are drained first (after the
  fleet is dead, so nothing is mid-write) so finished work is never
  recompiled;
* **deterministic fault injection** — an optional ``fault_hook``
  (see :mod:`repro.faultinject`) decides per ``(job_seq, attempt)``
  whether the worker executing that attempt should kill itself or stall,
  which is how the chaos harness turns worker failure into a seeded,
  reproducible event instead of an external race.

Scheduling is supervisor-side: each worker has a private inbox and holds
at most one job, so a death is attributed to exactly the job its worker
was assigned — no announcement message that a SIGKILL could swallow.
Results are delivered through ordinary :class:`concurrent.futures.Future`
objects, so the pool drops into every call site that used
``ProcessPoolExecutor.submit(fn, payload)``.  Retrying is safe here by
construction: compilation is deterministic and results are
content-addressed, so attempt N produces the same bytes attempt 1 would
have.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

#: fault verdicts a ``fault_hook`` may return for one (job_seq, attempt).
FAULT_KILL = "kill"  #: worker SIGKILLs itself instead of running the job
FAULT_HANG = "hang"  #: worker stalls ``seconds`` before running the job

#: type of the seeded fault decision: None, ("kill",) or ("hang", seconds).
Fault = Optional[Tuple]

#: supervisor poll cadence; also the detection latency for a dead worker.
DEFAULT_POLL_S = 0.02


class JobFailure(RuntimeError):
    """Base class for jobs the pool could not complete."""

    #: machine-readable cause, mirrored into service error frames.
    code = "job-failed"

    def __init__(self, message: str, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


class JobCrashed(JobFailure):
    """The worker running this job died on every allowed attempt."""

    code = "worker-crashed"


class JobTimeout(JobFailure):
    """The job exceeded its compile deadline on every allowed attempt."""

    code = "deadline-exceeded"


@dataclass
class PoolStats:
    """Counters the supervisor keeps (exposed via service ``stats``)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0  # job raised inside the worker (not retried)
    crashes: int = 0  # worker deaths observed
    timeouts: int = 0  # deadline expiries observed
    retries: int = 0  # job re-dispatches that burned an attempt
    requeues: int = 0  # innocent re-dispatches after a pool recycle
    restarts: int = 0  # worker processes (re)spawned after the initial fleet
    recycles: int = 0  # full pool teardown+respawn events

    def as_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "requeues": self.requeues,
            "restarts": self.restarts,
            "recycles": self.recycles,
        }


def _apply_fault(fault: Fault) -> None:
    """Execute one injected fault verdict inside the worker."""
    if not fault:
        return
    if fault[0] == FAULT_KILL:
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault[0] == FAULT_HANG:
        time.sleep(float(fault[1]))


def _worker_main(inbox, results) -> None:
    """Worker loop: take one job from the private inbox, ship the outcome."""
    while True:
        item = inbox.get()
        if item is None:
            return
        job_id, fn, payload, fault = item
        _apply_fault(fault)
        try:
            outcome = (job_id, True, fn(payload))
        except BaseException as exc:  # noqa: BLE001 — shipped to the parent
            outcome = (job_id, False, f"{type(exc).__name__}: {exc}")
        results.put(outcome)


@dataclass
class _Job:
    """Supervisor-side state of one submitted job."""

    job_id: int
    fn: Callable
    payload: Any
    future: Future
    attempts: int = 0  # incremented at each dispatch
    started_at: Optional[float] = None
    deadline: Optional[float] = None

    @property
    def running(self) -> bool:
        return self.started_at is not None


class _Worker:
    """One worker process plus its private job inbox."""

    def __init__(self, ctx, results) -> None:
        self.inbox = ctx.SimpleQueue()
        self.current: Optional[int] = None  # job_id being worked on
        self.proc = ctx.Process(
            target=_worker_main,
            args=(self.inbox, results),
            name="repro-pool-worker",
            daemon=True,
        )
        self.proc.start()


class SupervisedPool:
    """A process pool that survives its workers.

    Args:
        workers: number of worker processes kept alive.
        deadline: per-job wall-clock budget in seconds (None = unbounded).
            A job past its deadline has its worker killed and is retried.
        max_attempts: total tries per job before it fails with
            :class:`JobCrashed` / :class:`JobTimeout` (1 = never retry).
        fault_hook: optional ``(job_seq, attempt) -> Fault`` callable used
            by the chaos harness to inject deterministic worker faults.
        poll: supervisor poll interval (liveness + deadline checks).
    """

    def __init__(
        self,
        workers: int = 1,
        deadline: Optional[float] = None,
        max_attempts: int = 3,
        fault_hook: Optional[Callable[[int, int], Fault]] = None,
        poll: float = DEFAULT_POLL_S,
    ) -> None:
        self.workers = max(1, int(workers))
        self.deadline = deadline
        self.max_attempts = max(1, int(max_attempts))
        self.fault_hook = fault_hook
        self.poll = poll
        self.stats = PoolStats()
        self._ctx = multiprocessing.get_context()
        # reentrant: _recycle holds it across drains that re-take it
        self._lock = threading.RLock()
        self._jobs: Dict[int, _Job] = {}
        self._backlog: Deque[int] = deque()
        self._next_id = 0
        self._closed = False
        self._results = self._ctx.Queue()
        self._fleet: List[_Worker] = [
            _Worker(self._ctx, self._results) for _ in range(self.workers)
        ]
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-pool-supervisor", daemon=True
        )
        self._supervisor.start()

    # -- public API ----------------------------------------------------------

    def submit(self, fn: Callable, payload: Any) -> Future:
        """Dispatch one job; the future resolves to ``fn(payload)``.

        Signature-compatible with ``ProcessPoolExecutor.submit`` for the
        single-argument call shape the sweep engine uses.
        """
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot submit to a shut-down pool")
            job_id = self._next_id
            self._next_id += 1
            job = _Job(job_id=job_id, fn=fn, payload=payload, future=future)
            job.deadline = self.deadline
            self._jobs[job_id] = job
            self._backlog.append(job_id)
            self.stats.submitted += 1
            self._pump()
        return future

    def worker_pids(self) -> List[int]:
        """PIDs of the current worker fleet (for kill -9 style tests)."""
        with self._lock:
            return [w.proc.pid for w in self._fleet if w.proc.pid is not None]

    @property
    def unfinished(self) -> int:
        with self._lock:
            return len(self._jobs)

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Stop the supervisor and terminate the worker fleet (idempotent)."""
        with self._lock:
            already = self._closed
            self._closed = True
            if cancel_futures:
                for job in list(self._jobs.values()):
                    if not job.running and job.future.cancel():
                        self._jobs.pop(job.job_id, None)
        if already:
            return
        if wait:
            deadline = time.monotonic() + 30.0
            while self.unfinished and time.monotonic() < deadline:
                time.sleep(self.poll)
        self._supervisor.join(timeout=10.0)
        with self._lock:
            self._kill_fleet()
            self._discard_channels()

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=not any(exc_info))

    # -- dispatch ------------------------------------------------------------

    def _pump(self) -> None:
        """Assign backlog jobs to idle workers.  Caller holds the lock."""
        for worker in self._fleet:
            if worker.current is not None:
                continue
            while self._backlog:
                job = self._jobs.get(self._backlog.popleft())
                if job is None or job.future.cancelled():
                    continue
                job.attempts += 1
                fault = None
                if self.fault_hook is not None:
                    fault = self.fault_hook(job.job_id, job.attempts)
                worker.current = job.job_id
                job.started_at = time.monotonic()
                worker.inbox.put((job.job_id, job.fn, job.payload, fault))
                break

    def _kill_fleet(self) -> None:
        for worker in self._fleet:
            if worker.proc.is_alive() and worker.proc.pid is not None:
                try:
                    os.kill(worker.proc.pid, signal.SIGKILL)
                except OSError:
                    pass
        for worker in self._fleet:
            worker.proc.join(timeout=5.0)

    def _discard_channels(self) -> None:
        for worker in self._fleet:
            try:
                worker.inbox.close()
            except (OSError, ValueError):
                pass
        try:
            self._results.cancel_join_thread()
            self._results.close()
        except (OSError, ValueError):
            pass

    # -- the supervisor loop -------------------------------------------------

    def _supervise(self) -> None:
        while True:
            self._drain_results(block=True)
            with self._lock:
                if self._closed and not self._jobs:
                    for worker in self._fleet:
                        try:
                            worker.inbox.put(None)
                        except (OSError, ValueError):
                            pass
                    return
            cause = self._check_deadlines() or self._check_liveness()
            if cause is not None:
                self._recycle(cause)

    def _drain_results(self, block: bool) -> None:
        """Apply every available worker message; at most one blocking get."""
        timeout: Optional[float] = self.poll if block else None
        while True:
            try:
                if timeout is not None:
                    message = self._results.get(timeout=timeout)
                else:
                    message = self._results.get_nowait()
            except Exception:  # queue.Empty, or a torn queue mid-recycle
                return
            timeout = None  # only the first get blocks
            self._apply_result(message)

    def _apply_result(self, message) -> None:
        job_id, ok, payload = message
        with self._lock:
            job = self._jobs.pop(job_id, None)
            for worker in self._fleet:
                if worker.current == job_id:
                    worker.current = None
            if job is not None and not job.future.cancelled():
                if ok:
                    self.stats.completed += 1
                    job.future.set_result(payload)
                else:
                    # an exception raised by fn is deterministic — it would
                    # fail identically on a retry, so it is not retried
                    self.stats.failed += 1
                    job.future.set_exception(RuntimeError(payload))
            self._pump()

    def _check_deadlines(self) -> Optional[Tuple[str, int]]:
        """A ("timeout", job_id) when a running job is past its deadline."""
        now = time.monotonic()
        with self._lock:
            for job in self._jobs.values():
                if (
                    job.running
                    and job.deadline is not None
                    and now - job.started_at > job.deadline
                ):
                    return ("timeout", job.job_id)
        return None

    def _check_liveness(self) -> Optional[Tuple[str, Optional[int]]]:
        """A ("crash", job_id-or-None) when a worker process has died."""
        with self._lock:
            for worker in self._fleet:
                if not worker.proc.is_alive():
                    return ("crash", worker.current)
        return None

    def _recycle(self, cause: Tuple[str, Optional[int]]) -> None:
        """Tear down and respawn the whole fleet after a fault.

        SIGKILL can land while a worker holds the shared result queue's
        write lock, which would wedge every other worker's result put — so
        the queues are replaced along with the processes.  Results already
        in the old queue are drained first (the fleet is dead by then, so
        nothing is mid-write) and every unfinished job is re-dispatched;
        only the job that caused the fault burns an attempt.
        """
        kind, victim_id = cause
        # the whole recycle holds the lock so a concurrent submit() can
        # never target a channel that is about to be discarded (the fleet
        # is dead before the drain, so nothing here can block on a worker)
        with self._lock:
            self._kill_fleet()
            self._drain_results(block=False)
            self._discard_channels()
            self.stats.recycles += 1
            if kind == "crash":
                self.stats.crashes += 1
            else:
                self.stats.timeouts += 1

            # drained results may have completed the victim already — only
            # a still-unfinished victim burns an attempt
            victim = self._jobs.get(victim_id) if victim_id is not None else None
            if victim is not None:
                if victim.attempts >= self.max_attempts:
                    self._jobs.pop(victim.job_id, None)
                    if not victim.future.cancelled():
                        exc_type = JobTimeout if kind == "timeout" else JobCrashed
                        what = (
                            f"exceeded its {victim.deadline:.3g}s deadline"
                            if kind == "timeout"
                            else "crashed its worker"
                        )
                        victim.future.set_exception(
                            exc_type(
                                f"job {what} on each of "
                                f"{victim.attempts} attempt(s)",
                                attempts=victim.attempts,
                            )
                        )
                else:
                    self.stats.retries += 1

            self._results = self._ctx.Queue()
            self._fleet = [
                _Worker(self._ctx, self._results) for _ in range(self.workers)
            ]
            self.stats.restarts += self.workers

            # every survivor goes back to the backlog (its previous inbox
            # died with the old fleet); innocents keep their attempt count
            self._backlog.clear()
            for job in sorted(self._jobs.values(), key=lambda j: j.job_id):
                if job.future.cancelled():
                    self._jobs.pop(job.job_id, None)
                    continue
                if job.job_id != victim_id:
                    if job.running:
                        self.stats.requeues += 1
                    job.attempts = max(0, job.attempts - 1)  # no penalty
                job.started_at = None
                self._backlog.append(job.job_id)
            self._pump()
