"""Request coalescing, backpressure and metrics for the compile service.

:class:`CompileBroker` sits between the connection handlers and one
persistent :class:`~repro.sweep.SweepEngine`.  For every compile request
it resolves, in order:

1. **coalesce** — an identical request (same content-addressed job key)
   is already in flight: piggyback on its future instead of compiling the
   same job twice.  This is what makes a thundering herd of identical
   requests cost one compilation.
2. **warm hit** — the engine's memo or the on-disk sweep cache already
   holds the result: serve it with zero recompilation.
3. **compile** — dispatch to the engine's long-lived process pool, but
   only while fewer than ``max_pending`` distinct jobs are in flight;
   beyond that the broker sheds load with :class:`OverloadedError`
   (surfaced to clients as the ``overloaded`` error code) rather than
   queueing unboundedly.

Engine calls that touch the disk cache or replay-validate a schedule run
on the default thread executor so the event loop keeps serving other
connections while they grind.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..compiler.config import CompilerConfig
from ..compiler.result import CompilationResult
from ..ir.circuit import Circuit
from ..sweep.jobs import job_key


class OverloadedError(RuntimeError):
    """The bounded in-flight compile queue is full; the request was shed."""


class LatencyWindow:
    """Percentiles over a sliding window of recent request latencies."""

    def __init__(self, maxlen: int = 2048) -> None:
        self._samples: Deque[float] = deque(maxlen=maxlen)

    def add(self, seconds: float) -> None:
        self._samples.append(seconds)

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, fraction: float) -> Optional[float]:
        """The ``fraction``-quantile (nearest-rank) in seconds, or None."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        # nearest-rank: the ceil(f*n)-th smallest sample (1-based)
        rank = math.ceil(fraction * len(ordered)) - 1
        return ordered[min(len(ordered) - 1, max(0, rank))]

    def snapshot(self) -> Dict[str, Optional[float]]:
        def _ms(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value * 1000.0, 3)

        return {
            "samples": len(self._samples),
            "p50_ms": _ms(self.percentile(0.50)),
            "p95_ms": _ms(self.percentile(0.95)),
        }


class EndpointMetrics:
    """Counters and latency window for one protocol op."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors: Dict[str, int] = {}
        self.latency = LatencyWindow()

    def record(self, wall: float, error_code: Optional[str] = None) -> None:
        self.requests += 1
        self.latency.add(wall)
        if error_code is not None:
            self.errors[error_code] = self.errors.get(error_code, 0) + 1

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "errors": dict(sorted(self.errors.items())),
            **self.latency.snapshot(),
        }


class ServiceMetrics:
    """Everything a ``stats`` response reports about this server process."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.connections = 0
        self.endpoints: Dict[str, EndpointMetrics] = {}
        # compile-specific resolution counters (sources + sheds)
        self.coalesced = 0
        self.memo_hits = 0
        self.disk_hits = 0
        self.compiled = 0
        self.overloaded = 0
        self.validation_failures = 0

    def endpoint(self, op: str) -> EndpointMetrics:
        metrics = self.endpoints.get(op)
        if metrics is None:
            metrics = self.endpoints[op] = EndpointMetrics()
        return metrics

    def record_source(self, source: str) -> None:
        if source == "coalesced":
            self.coalesced += 1
        elif source == "memo":
            self.memo_hits += 1
        elif source == "disk":
            self.disk_hits += 1
        elif source == "compiled":
            self.compiled += 1

    @property
    def cache_hits(self) -> int:
        """Requests served without compiling (memo + disk)."""
        return self.memo_hits + self.disk_hits

    def snapshot(self) -> dict:
        return {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "connections": self.connections,
            "endpoints": {
                op: metrics.snapshot()
                for op, metrics in sorted(self.endpoints.items())
            },
            "compile": {
                "coalesced": self.coalesced,
                "memo_hits": self.memo_hits,
                "disk_hits": self.disk_hits,
                "cache_hits": self.cache_hits,
                "compiled": self.compiled,
                "overloaded": self.overloaded,
                "validation_failures": self.validation_failures,
            },
        }


class CompileBroker:
    """Coalesces compile requests onto one persistent sweep engine.

    Args:
        engine: a :class:`~repro.sweep.SweepEngine` (persistent mode) — or
            any object with its ``cached_result`` / ``submit`` / ``adopt``
            trio, which is what the unit tests exploit.
        max_pending: bound on *distinct* jobs compiling at once; requests
            that would exceed it are shed with :class:`OverloadedError`.
            Coalesced and cache-served requests never count against it.
    """

    def __init__(self, engine, max_pending: int = 32) -> None:
        self.engine = engine
        self.max_pending = max(0, int(max_pending))
        self.metrics = ServiceMetrics()
        self._inflight: Dict[str, asyncio.Future] = {}
        self._compiling = 0

    @property
    def pending(self) -> int:
        """Distinct jobs currently compiling (cache lookups don't count)."""
        return self._compiling

    async def resolve(
        self, circuit: Circuit, config: CompilerConfig
    ) -> Tuple[CompilationResult, str, str]:
        """Resolve one compile request to ``(result, source, key)``.

        Raises :class:`OverloadedError` on backpressure shed and
        :class:`~repro.verify.ValidationError` when the engine validates
        and the schedule (fresh or cached) fails replay.
        """
        loop = asyncio.get_running_loop()
        # keying hashes the whole gate stream — keep it off the event loop
        key = await loop.run_in_executor(None, job_key, circuit, config)

        inflight = self._inflight.get(key)
        if inflight is not None:
            self.metrics.record_source("coalesced")
            # shield: one client disconnecting must not cancel the shared
            # compilation other waiters (and the memo) depend on
            result = await asyncio.shield(inflight)
            return result, "coalesced", key

        # register the shared future before the first await so an identical
        # request arriving during the cache lookup coalesces instead of
        # starting a duplicate resolution of the same key
        shared: asyncio.Future = loop.create_future()
        # a shed or abandoned future must not warn "exception never
        # retrieved" when no coalesced waiter ever awaits it
        shared.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight[key] = shared
        try:
            hit = await loop.run_in_executor(
                None, self.engine.cached_result, circuit, config, key
            )
            if hit is not None:
                result, source = hit
                shared.set_result(result)
                self.metrics.record_source(source)
                return result, source, key

            if self._compiling >= self.max_pending:
                self.metrics.overloaded += 1
                raise OverloadedError(
                    f"{self._compiling} compile job(s) in flight "
                    f"(max_pending={self.max_pending}); retry later"
                )

            self._compiling += 1
            try:
                payload = await asyncio.wrap_future(
                    self.engine.submit(circuit, config), loop=loop
                )
                result = await loop.run_in_executor(
                    None, self.engine.adopt, circuit, config, payload, key
                )
            finally:
                self._compiling -= 1
        except BaseException as exc:
            if not shared.done():
                shared.set_exception(exc)
            raise
        else:
            if not shared.done():
                shared.set_result(result)
            self.metrics.record_source("compiled")
            return result, "compiled", key
        finally:
            self._inflight.pop(key, None)
