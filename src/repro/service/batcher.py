"""Request coalescing, backpressure and metrics for the compile service.

:class:`CompileBroker` sits between the connection handlers and one
persistent :class:`~repro.sweep.SweepEngine`.  For every compile request
it resolves, in order:

1. **coalesce** — an identical request (same content-addressed job key)
   is already in flight: piggyback on its future instead of compiling the
   same job twice.  This is what makes a thundering herd of identical
   requests cost one compilation.
2. **warm hit** — one of the engine's cache tiers (memo, on-disk sweep
   cache, or a remote ``cache-serve`` peer) already holds the result:
   serve it with zero recompilation.
3. **compile** — dispatch to the engine's long-lived process pool, but
   only while fewer than ``max_pending`` distinct jobs are in flight;
   beyond that a request may wait up to ``queue_wait`` seconds for a slot
   (zero by default) before the broker sheds it with
   :class:`OverloadedError` (the ``overloaded`` error code) rather than
   queueing unboundedly.

Each distinct job is resolved by a **broker-owned task**, not by the
request handler that happened to arrive first.  That is the
fault-isolation boundary for client disconnects: a handler that goes away
(its coroutine is cancelled) merely detaches from the shared future, and
when the *last* waiter detaches the broker abandons the job — cancelling
it if it is still queued, but letting an already-running compile finish
so its result warms the memo and disk cache for the inevitable retry.

Engine calls that touch the disk cache or replay-validate a schedule run
on the default thread executor so the event loop keeps serving other
connections while they grind.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..compiler.config import CompilerConfig
from ..compiler.result import CompilationResult
from ..ir.circuit import Circuit
from ..sweep.jobs import job_key


class OverloadedError(RuntimeError):
    """The bounded in-flight compile queue is full; the request was shed."""


class LatencyWindow:
    """Percentiles over a sliding window of recent request latencies."""

    def __init__(self, maxlen: int = 2048) -> None:
        self._samples: Deque[float] = deque(maxlen=maxlen)

    def add(self, seconds: float) -> None:
        self._samples.append(seconds)

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, fraction: float) -> Optional[float]:
        """The ``fraction``-quantile (nearest-rank) in seconds, or None."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        # nearest-rank: the ceil(f*n)-th smallest sample (1-based)
        rank = math.ceil(fraction * len(ordered)) - 1
        return ordered[min(len(ordered) - 1, max(0, rank))]

    def snapshot(self) -> Dict[str, Optional[float]]:
        def _ms(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value * 1000.0, 3)

        return {
            "samples": len(self._samples),
            "p50_ms": _ms(self.percentile(0.50)),
            "p95_ms": _ms(self.percentile(0.95)),
        }


class EndpointMetrics:
    """Counters and latency window for one protocol op."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors: Dict[str, int] = {}
        self.latency = LatencyWindow()

    def record(self, wall: float, error_code: Optional[str] = None) -> None:
        self.requests += 1
        self.latency.add(wall)
        if error_code is not None:
            self.errors[error_code] = self.errors.get(error_code, 0) + 1

    def snapshot(self) -> dict:
        return {
            "requests": self.requests,
            "errors": dict(sorted(self.errors.items())),
            **self.latency.snapshot(),
        }


class ServiceMetrics:
    """Everything a ``stats`` response reports about this server process."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.connections = 0
        self.endpoints: Dict[str, EndpointMetrics] = {}
        # compile-specific resolution counters (sources + sheds)
        self.coalesced = 0
        self.memo_hits = 0
        self.disk_hits = 0
        self.remote_hits = 0
        self.compiled = 0
        self.overloaded = 0
        self.validation_failures = 0
        # fault-tolerance counters
        self.timeouts = 0  # requests answered with the `timeout` code
        self.compile_failures = 0  # requests answered with `compile-failed`
        self.disconnects = 0  # clients that vanished mid-request
        self.abandoned = 0  # jobs whose last waiter disconnected

    def endpoint(self, op: str) -> EndpointMetrics:
        metrics = self.endpoints.get(op)
        if metrics is None:
            metrics = self.endpoints[op] = EndpointMetrics()
        return metrics

    def record_source(self, source: str) -> None:
        if source == "coalesced":
            self.coalesced += 1
        elif source == "memo":
            self.memo_hits += 1
        elif source == "disk":
            self.disk_hits += 1
        elif source == "remote":
            self.remote_hits += 1
        elif source == "compiled":
            self.compiled += 1

    @property
    def cache_hits(self) -> int:
        """Requests served without compiling (memo + disk + remote)."""
        return self.memo_hits + self.disk_hits + self.remote_hits

    def snapshot(self) -> dict:
        return {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "connections": self.connections,
            "endpoints": {
                op: metrics.snapshot()
                for op, metrics in sorted(self.endpoints.items())
            },
            "compile": {
                "coalesced": self.coalesced,
                "memo_hits": self.memo_hits,
                "disk_hits": self.disk_hits,
                "remote_hits": self.remote_hits,
                "cache_hits": self.cache_hits,
                "compiled": self.compiled,
                "overloaded": self.overloaded,
                "validation_failures": self.validation_failures,
                "timeouts": self.timeouts,
                "compile_failures": self.compile_failures,
            },
            "faults": {
                "disconnects": self.disconnects,
                "abandoned_jobs": self.abandoned,
            },
        }


class _InflightJob:
    """One distinct job being resolved by a broker-owned task."""

    __slots__ = ("future", "task", "waiters", "compiling")

    def __init__(self, future: asyncio.Future) -> None:
        self.future = future
        self.task: Optional[asyncio.Task] = None
        self.waiters = 0
        self.compiling = False  # a worker is grinding on it right now


class CompileBroker:
    """Coalesces compile requests onto one persistent sweep engine.

    Args:
        engine: a :class:`~repro.sweep.SweepEngine` (persistent mode) — or
            any object with its ``cached_result`` / ``submit`` / ``adopt``
            trio, which is what the unit tests exploit.
        max_pending: bound on *distinct* jobs compiling at once; requests
            that would exceed it are shed with :class:`OverloadedError`.
            Coalesced and cache-served requests never count against it.
        queue_wait: seconds a request may wait for a compile slot before
            being shed (0 = shed immediately, the classic behaviour).
    """

    def __init__(
        self, engine, max_pending: int = 32, queue_wait: float = 0.0
    ) -> None:
        self.engine = engine
        self.max_pending = max(0, int(max_pending))
        self.queue_wait = max(0.0, float(queue_wait))
        self.metrics = ServiceMetrics()
        self._inflight: Dict[str, _InflightJob] = {}
        self._compiling = 0
        self._slot_waiters: Deque[asyncio.Future] = deque()

    @property
    def pending(self) -> int:
        """Distinct jobs currently compiling (cache lookups don't count)."""
        return self._compiling

    async def resolve(
        self, circuit: Circuit, config: CompilerConfig
    ) -> Tuple[CompilationResult, str, str]:
        """Resolve one compile request to ``(result, source, key)``.

        Raises :class:`OverloadedError` on backpressure shed and
        :class:`~repro.verify.ValidationError` when the engine validates
        and the schedule (fresh or cached) fails replay.  Cancelling this
        coroutine (request deadline, client disconnect) detaches the
        request from the shared job without disturbing other waiters.
        """
        loop = asyncio.get_running_loop()
        # keying hashes the whole gate stream — keep it off the event loop
        key = await loop.run_in_executor(None, job_key, circuit, config)

        job = self._inflight.get(key)
        if job is None:
            coalesced = False
            job = _InflightJob(loop.create_future())
            # a shed or abandoned job must not warn "exception never
            # retrieved" when no waiter is left to await it
            job.future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            self._inflight[key] = job
            job.task = asyncio.ensure_future(
                self._run_job(key, circuit, config, job)
            )
        else:
            coalesced = True
            self.metrics.record_source("coalesced")

        job.waiters += 1
        try:
            # shield: this waiter being cancelled must not cancel the
            # shared future other waiters (and the memo) depend on
            result, source = await asyncio.shield(job.future)
        finally:
            job.waiters -= 1
            if job.waiters == 0 and not job.future.done():
                await self._abandon(key, job)
        if coalesced:
            source = "coalesced"
        return result, source, key

    async def _run_job(
        self, key: str, circuit: Circuit, config: CompilerConfig, job: _InflightJob
    ) -> None:
        """Resolve one distinct job (broker-owned, survives its requesters)."""
        loop = asyncio.get_running_loop()
        try:
            hit = await loop.run_in_executor(
                None, self.engine.cached_result, circuit, config, key
            )
            if hit is not None:
                result, source = hit
            else:
                await self._acquire_slot(loop)
                job.compiling = True
                try:
                    payload = await asyncio.wrap_future(
                        self.engine.submit(circuit, config), loop=loop
                    )
                    result = await loop.run_in_executor(
                        None, self.engine.adopt, circuit, config, payload, key
                    )
                finally:
                    job.compiling = False
                    self._release_slot()
                source = "compiled"
            self.metrics.record_source(source)
            if not job.future.done():
                job.future.set_result((result, source))
        except asyncio.CancelledError:
            if not job.future.done():
                job.future.cancel()
            raise
        except BaseException as exc:  # noqa: BLE001 — shipped to the waiters
            if isinstance(exc, OverloadedError):
                self.metrics.overloaded += 1
            if not job.future.done():
                job.future.set_exception(exc)
        finally:
            if self._inflight.get(key) is job:
                del self._inflight[key]

    async def _abandon(self, key: str, job: _InflightJob) -> None:
        """Last waiter disconnected: stop queued work, keep running work.

        A job still waiting for a compile slot is cancelled outright — it
        would burn a worker nobody is listening for.  A job already
        compiling is left to finish: the result lands in the memo and the
        disk cache, so the client's retry (same content-addressed key)
        becomes a warm hit instead of a second compile.
        """
        self.metrics.abandoned += 1
        if job.compiling or job.task is None or job.task.done():
            return
        job.task.cancel()
        with contextlib.suppress(asyncio.CancelledError, Exception):
            await job.task

    # -- compile-slot accounting ---------------------------------------------

    async def _acquire_slot(self, loop: asyncio.AbstractEventLoop) -> None:
        """Take one of ``max_pending`` compile slots or raise OverloadedError.

        With a ``queue_wait`` budget the request parks on a FIFO waiter
        future that :meth:`_release_slot` resolves as slots free up.
        """
        if self._compiling < self.max_pending:
            self._compiling += 1
            return
        if self.queue_wait <= 0.0:
            raise OverloadedError(
                f"{self._compiling} compile job(s) in flight "
                f"(max_pending={self.max_pending}); retry later"
            )
        deadline = loop.time() + self.queue_wait
        while self._compiling >= self.max_pending:
            remaining = deadline - loop.time()
            if remaining <= 0.0:
                raise OverloadedError(
                    f"no compile slot freed within queue_wait="
                    f"{self.queue_wait:.3g}s "
                    f"(max_pending={self.max_pending}); retry later"
                )
            waiter: asyncio.Future = loop.create_future()
            self._slot_waiters.append(waiter)
            try:
                await asyncio.wait_for(waiter, timeout=remaining)
            except asyncio.TimeoutError:
                raise OverloadedError(
                    f"no compile slot freed within queue_wait="
                    f"{self.queue_wait:.3g}s "
                    f"(max_pending={self.max_pending}); retry later"
                ) from None
            finally:
                with contextlib.suppress(ValueError):
                    self._slot_waiters.remove(waiter)
        self._compiling += 1

    def _release_slot(self) -> None:
        self._compiling -= 1
        while self._slot_waiters:
            waiter = self._slot_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                break
