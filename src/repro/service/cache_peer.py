"""The cache peer behind ``repro cache-serve``.

A :class:`CachePeer` is the **remote tier's server half**: a small
asyncio TCP endpoint speaking the same newline-delimited JSON codec as
the compile service, backed by one :class:`~repro.sweep.CompileCache`
directory.  It never compiles anything — it only moves verified result
payloads by SHA-256 job key, so a fleet of engines can warm each other.

Ops:

``cache-get``
    ``{"op": "cache-get", "key": K}`` answers
    ``{"ok": true, "found": true, "key": K, "checksum": C, "result": {...}}``
    or ``{"ok": true, "found": false}``.  The checksum lets the client
    reject a torn frame or torn stored entry without trusting the peer.
``cache-put``
    ``{"op": "cache-put", "key": K, "checksum": C, "result": {...}}``.
    The peer recomputes the checksum over the payload and rejects a
    mismatch with ``bad-request`` — a torn upload can never land.
``stats`` / ``ping`` / ``shutdown``
    As on the compile service (``shutdown`` honoured unless started
    with ``allow_shutdown=False``).

The peer does **not** replay-validate payloads: validation needs the
circuit, which never crosses this wire.  That defense lives in the
engine (every hit from the untrusted remote tier is replay-validated on
ingest before it is served or promoted) — the peer's checksum merely
guarantees the bytes are the bytes that were stored.

``faults`` is the chaos seam: a
:class:`~repro.faultinject.ScriptedPeerFaults` can make a ``cache-get``
reset the connection mid-frame or serve a deliberately torn entry.
"""

from __future__ import annotations

import asyncio
import contextlib
import copy
import threading
from typing import Any, Dict, Optional, Tuple

from .. import __version__
from ..sweep import CompileCache
from ..sweep.cache import payload_checksum
from . import protocol
from .remote_cache import DEFAULT_CACHE_PORT

#: 64 hex chars — the only key shape the peer will address storage with.
_KEY_LEN = 64


def _valid_key(key: Any) -> bool:
    return (
        isinstance(key, str)
        and len(key) == _KEY_LEN
        and all(c in "0123456789abcdef" for c in key)
    )


class CachePeer:
    """A get/put-by-key cache server over one ``CompileCache`` directory.

    Args:
        host / port: bind address (port 0 picks an ephemeral port).
        cache: the backing store (its ``size_budget``/``quarantine_cap``
            bound the peer's disk use).
        allow_shutdown: honour the ``shutdown`` op.
        faults: optional scripted fault hook (chaos harness only) with an
            ``on_get(key) -> None | "reset" | "corrupt"`` method.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_CACHE_PORT,
        cache: Optional[CompileCache] = None,
        allow_shutdown: bool = True,
        faults=None,
    ) -> None:
        self.host = host
        self.port = port
        self.cache = cache if cache is not None else CompileCache()
        self.allow_shutdown = allow_shutdown
        self.faults = faults
        self.requests = 0
        self.rejected_puts = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping: Optional[asyncio.Event] = None

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("cache peer is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def start(self) -> None:
        if self._server is not None:
            return
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )

    def request_stop(self) -> None:
        if self._stopping is not None:
            self._stopping.set()

    async def serve_until_stopped(self) -> None:
        await self.start()
        try:
            await self._stopping.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._stopping is not None:
            self._stopping.set()

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        protocol.encode_line(
                            protocol.error_response(
                                protocol.E_BAD_REQUEST, "request line too long"
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                self.requests += 1
                response, action = await self._dispatch(line)
                data = protocol.encode_line(response)
                if action == "reset":
                    # chaos: half a frame, then a hard RST mid-response
                    writer.write(data[: max(1, len(data) // 2)])
                    with contextlib.suppress(Exception):
                        await writer.drain()
                    writer.transport.abort()
                    return
                writer.write(data)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # loop teardown cancelled an idle keep-alive read — hang up
            # quietly instead of letting the stream protocol log it
            pass
        finally:
            writer.close()
            # CancelledError included: loop teardown may cancel the close
            # handshake itself
            with contextlib.suppress(Exception, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(
        self, line: bytes
    ) -> Tuple[Dict[str, Any], Optional[str]]:
        """Resolve one request to ``(response, chaos_action)``."""
        loop = asyncio.get_running_loop()
        try:
            message = protocol.decode_line(line)
            op = str(message.get("op", "?"))
            if op == "cache-get":
                return await loop.run_in_executor(
                    None, self._handle_get, message
                )
            if op == "cache-put":
                return (
                    await loop.run_in_executor(None, self._handle_put, message),
                    None,
                )
            if op == "stats":
                return self._handle_stats(), None
            if op == "ping":
                return (
                    {
                        "ok": True,
                        "op": "ping",
                        "version": __version__,
                        "protocol": protocol.PROTOCOL_VERSION,
                    },
                    None,
                )
            if op == "shutdown" and self.allow_shutdown:
                self.request_stop()
                return {"ok": True, "op": "shutdown"}, None
            raise protocol.ProtocolError(
                protocol.E_BAD_REQUEST, f"unknown op {op!r}"
            )
        except protocol.ProtocolError as exc:
            return protocol.error_response(exc.code, str(exc)), None
        except Exception as exc:  # noqa: BLE001 — a request must never kill the peer
            return (
                protocol.error_response(
                    protocol.E_INTERNAL, f"{type(exc).__name__}: {exc}"
                ),
                None,
            )

    # -- op handlers (run on the executor — they touch disk) ----------------

    def _handle_get(
        self, message: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], Optional[str]]:
        key = message.get("key")
        if not _valid_key(key):
            raise protocol.ProtocolError(
                protocol.E_BAD_REQUEST, "'key' must be a 64-char hex job key"
            )
        action = self.faults.on_get(key) if self.faults is not None else None
        payload = self.cache.get(key)
        if payload is None:
            return {"ok": True, "op": "cache-get", "found": False}, action
        checksum = payload_checksum(payload)
        if action == "corrupt":
            # chaos: serve a torn entry — the advertised checksum stays
            # that of the stored bytes, so the client must reject it
            payload = copy.deepcopy(payload)
            payload["_torn"] = True
        return (
            {
                "ok": True,
                "op": "cache-get",
                "found": True,
                "key": key,
                "checksum": checksum,
                "result": payload,
            },
            action,
        )

    def _handle_put(self, message: Dict[str, Any]) -> Dict[str, Any]:
        key = message.get("key")
        if not _valid_key(key):
            raise protocol.ProtocolError(
                protocol.E_BAD_REQUEST, "'key' must be a 64-char hex job key"
            )
        result = message.get("result")
        if not isinstance(result, dict):
            raise protocol.ProtocolError(
                protocol.E_BAD_REQUEST, "'result' must be a JSON object"
            )
        if message.get("checksum") != payload_checksum(result):
            self.rejected_puts += 1
            raise protocol.ProtocolError(
                protocol.E_BAD_REQUEST,
                "checksum does not match the payload (torn upload rejected)",
            )
        self.cache.put(key, result)
        return {"ok": True, "op": "cache-put", "stored": True, "key": key}

    def _handle_stats(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "op": "stats",
            "version": __version__,
            "protocol": protocol.PROTOCOL_VERSION,
            "stats": {
                "dir": str(self.cache.root),
                "requests": self.requests,
                "rejected_puts": self.rejected_puts,
                "entries": len(self.cache),
                **self.cache.stats(),
            },
        }


# -- blocking front-ends -------------------------------------------------------


def run_cache_peer(
    host: str = "127.0.0.1",
    port: int = DEFAULT_CACHE_PORT,
    cache: Optional[CompileCache] = None,
    announce=None,
) -> int:
    """Run a cache peer until SIGINT/SIGTERM (the ``repro cache-serve`` body)."""
    import signal

    async def _main() -> None:
        peer = CachePeer(host=host, port=port, cache=cache)
        await peer.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, peer.request_stop)
        if announce is not None:
            bound_host, bound_port = peer.address
            budget = peer.cache.size_budget
            budget_note = (
                f", budget {budget} bytes" if budget is not None else ""
            )
            announce(
                f"repro cache peer on {bound_host}:{bound_port} "
                f"(store {peer.cache.root}{budget_note})"
            )
        await peer.serve_until_stopped()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


class CachePeerThread:
    """A cache peer running on a dedicated background thread.

    Usage::

        with CachePeerThread(cache=CompileCache(tmp)) as peer:
            remote = RemoteCache(*peer.address)
            ...
    """

    def __init__(self, **peer_kwargs: Any) -> None:
        peer_kwargs.setdefault("port", 0)
        self._kwargs = peer_kwargs
        self._peer: Optional[CachePeer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-cache-peer", daemon=True
        )

    def _run(self) -> None:
        async def _main() -> None:
            try:
                self._peer = CachePeer(**self._kwargs)
                await self._peer.start()
                self._loop = asyncio.get_running_loop()
            except BaseException as exc:
                self._startup_error = exc
                raise
            finally:
                self._ready.set()
            await self._peer.serve_until_stopped()

        try:
            asyncio.run(_main())
        except BaseException as exc:
            if self._startup_error is None and not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    def start(self) -> "CachePeerThread":
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._startup_error is not None:
            raise RuntimeError(
                f"cache peer failed to start: {self._startup_error}"
            ) from self._startup_error
        if self._peer is None or self._loop is None:
            raise RuntimeError("cache peer failed to start (timeout)")
        return self

    @property
    def address(self) -> Tuple[str, int]:
        if self._peer is None:
            raise RuntimeError("cache peer is not started")
        return self._peer.address

    @property
    def peer(self) -> CachePeer:
        if self._peer is None:
            raise RuntimeError("cache peer is not started")
        return self._peer

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._peer.request_stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "CachePeerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
