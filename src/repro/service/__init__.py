"""Compile-as-a-service layer on top of the sweep engine.

The batch CLI treats compilation as a one-shot sweep; this package turns
the same engine into a long-lived multi-client endpoint (``repro serve``):

* :mod:`~repro.service.protocol` — the newline-delimited JSON wire
  format, its stable error codes and the request/response builders;
* :mod:`~repro.service.batcher` — :class:`CompileBroker`: coalesces
  identical in-flight requests by content-addressed job key, serves warm
  hits from the sweep cache with zero recompilation, sheds load beyond a
  bounded in-flight queue, and keeps the per-endpoint metrics;
* :mod:`~repro.service.server` — :class:`CompileService`, the asyncio
  TCP server owning one persistent :class:`~repro.sweep.SweepEngine`
  (worker pool + disk cache), plus :class:`ServiceThread` for running a
  real server in-process (tests, benchmarks, smoke scripts);
* :mod:`~repro.service.client` — :class:`Client`, the synchronous
  request/response client scripts and tests talk through.

Responses carry the same behavioural fingerprint the perf harness gates
on, and the job keys are byte-identical to what ``repro compile`` /
``repro.sweep.job_key`` compute locally — the service is a transport, not
a different compiler.
"""

from .batcher import CompileBroker, OverloadedError, ServiceMetrics
from .client import Client, CompileReply, RetryPolicy, ServiceError
from .protocol import (
    DEFAULT_PORT,
    ERROR_CODES,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    ProtocolError,
)
from .server import DEFAULT_MAX_PENDING, CompileService, ServiceThread, run_server

__all__ = [
    "Client",
    "CompileBroker",
    "CompileReply",
    "CompileService",
    "DEFAULT_MAX_PENDING",
    "DEFAULT_PORT",
    "ERROR_CODES",
    "OverloadedError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RETRYABLE_CODES",
    "RetryPolicy",
    "ServiceError",
    "ServiceMetrics",
    "ServiceThread",
    "run_server",
]
