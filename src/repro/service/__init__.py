"""Compile-as-a-service layer on top of the sweep engine.

The batch CLI treats compilation as a one-shot sweep; this package turns
the same engine into a long-lived multi-client endpoint (``repro serve``):

* :mod:`~repro.service.protocol` — the newline-delimited JSON wire
  format, its stable error codes and the request/response builders;
* :mod:`~repro.service.batcher` — :class:`CompileBroker`: coalesces
  identical in-flight requests by content-addressed job key, serves warm
  hits from the sweep cache with zero recompilation, sheds load beyond a
  bounded in-flight queue, and keeps the per-endpoint metrics;
* :mod:`~repro.service.server` — :class:`CompileService`, the asyncio
  TCP server owning one persistent :class:`~repro.sweep.SweepEngine`
  (worker pool + disk cache), plus :class:`ServiceThread` for running a
  real server in-process (tests, benchmarks, smoke scripts);
* :mod:`~repro.service.client` — :class:`Client`, the synchronous
  request/response client scripts and tests talk through;
* :mod:`~repro.service.cache_peer` — :class:`CachePeer`, the
  ``repro cache-serve`` endpoint: a get/put-by-job-key result store a
  fleet of engines warms itself from;
* :mod:`~repro.service.remote_cache` — :class:`RemoteCache`, the client
  half: the engine's untrusted remote cache tier (checksummed frames,
  retry + circuit breaker, outage degrades to a miss).

Responses carry the same behavioural fingerprint the perf harness gates
on, and the job keys are byte-identical to what ``repro compile`` /
``repro.sweep.job_key`` compute locally — the service is a transport, not
a different compiler.
"""

from .batcher import CompileBroker, OverloadedError, ServiceMetrics
from .cache_peer import CachePeer, CachePeerThread, run_cache_peer
from .client import Client, CompileReply, RetryPolicy, ServiceError
from .protocol import (
    DEFAULT_PORT,
    ERROR_CODES,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    ProtocolError,
)
from .remote_cache import DEFAULT_CACHE_PORT, RemoteCache, parse_peer
from .server import DEFAULT_MAX_PENDING, CompileService, ServiceThread, run_server

__all__ = [
    "CachePeer",
    "CachePeerThread",
    "Client",
    "CompileBroker",
    "CompileReply",
    "CompileService",
    "DEFAULT_CACHE_PORT",
    "DEFAULT_MAX_PENDING",
    "DEFAULT_PORT",
    "ERROR_CODES",
    "OverloadedError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RETRYABLE_CODES",
    "RemoteCache",
    "RetryPolicy",
    "ServiceError",
    "ServiceMetrics",
    "ServiceThread",
    "parse_peer",
    "run_cache_peer",
    "run_server",
]
