"""Synchronous client for the compile service.

:class:`Client` speaks the JSON-lines protocol over one TCP connection,
strict request/response.  It is what scripts, tests and the throughput
benchmark use::

    from repro.service import Client

    with Client("127.0.0.1", 7787) as client:
        reply = client.compile(workload="ising_2d_4x4", routing_paths=4)
        print(reply.source, reply.fingerprint["makespan"])

Failures the server reports (unknown workload, overload shed, replay
validation rejection, ...) raise :class:`ServiceError` carrying the
machine-readable ``code`` from :data:`repro.service.protocol.ERROR_CODES`
and any structured ``details`` (a full validation report dict for
``validation-failed``).
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..compiler.result import CompilationResult
from . import protocol


class ServiceError(RuntimeError):
    """A structured error response from the compile service.

    Attributes:
        code: stable error code (see :data:`repro.service.protocol.ERROR_CODES`).
        details: optional structured payload (e.g. the
            :class:`~repro.verify.ValidationReport` dict for
            ``validation-failed``).
    """

    def __init__(
        self, code: str, message: str, details: Optional[dict] = None
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.details = details


@dataclass
class CompileReply:
    """One successful compile response, unpacked.

    Attributes:
        key: the content-addressed job key (identical to what
            ``repro.sweep.job_key`` computes locally for the same job).
        source: where the server resolved it — ``compiled``, ``coalesced``,
            ``memo``, ``disk`` or ``remote``.
        wall: server-side wall seconds for this request.
        fingerprint: behavioural fingerprint (makespan / op counts / stats).
        summary: headline metrics (execution time, qubits, t states, ...).
        result: the full :class:`~repro.compiler.result.CompilationResult`
            when the request asked for ``full=True``, else None.
        raw: the complete response message.
    """

    key: str
    source: str
    wall: float
    fingerprint: Dict[str, Any]
    summary: Dict[str, Any]
    result: Optional[CompilationResult] = None
    raw: Dict[str, Any] = field(default_factory=dict)

    @property
    def warm(self) -> bool:
        """True when the request cost zero compilations (a cache-tier hit)."""
        return self.source in ("memo", "disk", "remote")


@dataclass
class RetryPolicy:
    """Exponential backoff with full jitter for transient service failures.

    The delay before attempt *k* (0-based retry index) is drawn uniformly
    from ``[0, min(max_delay, base_delay * 2**k)]`` — "full jitter", which
    decorrelates a thundering herd of retrying clients instead of having
    them all hammer the server again on the same beat.

    Retried failures: connection errors (server restarting, connection
    reset mid-frame — the client reconnects first) and the structured
    error codes in ``codes`` (``overloaded`` and ``timeout`` by default).
    Resubmission is **idempotent by construction**: a compile request is
    content-addressed by its job key and results are deterministic and
    replay-validated, so re-sending the same request can only hit the
    cache or recompile to identical bytes — never double-apply anything.
    """

    attempts: int = 4  # total tries (1 initial + attempts-1 retries)
    base_delay: float = 0.05
    max_delay: float = 2.0
    codes: Tuple[str, ...] = protocol.RETRYABLE_CODES

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """The jittered sleep before the ``retry_index``-th retry."""
        ceiling = min(self.max_delay, self.base_delay * (2.0**retry_index))
        return rng.uniform(0.0, ceiling)

    def retries_error(self, code: str) -> bool:
        return code in self.codes


class Client:
    """Blocking JSON-lines client, one request at a time.

    Args:
        host / port: the service address.
        timeout: socket timeout in seconds for connect and each response
            (compiles of large circuits can be slow — size accordingly).
        retry: optional :class:`RetryPolicy`; when set, transient failures
            (connection drops, ``overloaded``, ``timeout``) are retried
            with exponential backoff + full jitter, reconnecting as
            needed.  None (the default) keeps the classic fail-fast
            behaviour.
        sleep / rng: injection points for the backoff clock — tests pass
            a fake sleep and a seeded ``random.Random`` so retry schedules
            are asserted without real waiting.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        timeout: float = 120.0,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        self.reconnects = 0
        self.retried = 0
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._connect()

    # -- transport ----------------------------------------------------------

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._reader = self._sock.makefile("rb")

    def _drop_connection(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _exchange(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One send/receive on the live connection (reconnecting first)."""
        if self._sock is None:
            self._connect()
            self.reconnects += 1
        self._sock.sendall(protocol.encode_line(message))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("compile service closed the connection")
        response = protocol.decode_line(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                error.get("code", protocol.E_INTERNAL),
                error.get("message", "unknown service error"),
                error.get("details"),
            )
        return response

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message, return the raw response dict.

        Raises :class:`ServiceError` on ``ok: false`` responses and
        :class:`ConnectionError` when the server hangs up mid-exchange.
        With a :class:`RetryPolicy`, transient failures are resubmitted
        (safe: requests are content-addressed and deterministic) after a
        jittered backoff; the last failure is re-raised once the attempt
        budget is spent.
        """
        policy = self.retry
        attempts = policy.attempts if policy is not None else 1
        for attempt in range(attempts):
            try:
                return self._exchange(message)
            except ServiceError as exc:
                if (
                    policy is None
                    or attempt + 1 >= attempts
                    or not policy.retries_error(exc.code)
                ):
                    raise
            except (ConnectionError, socket.timeout, OSError):
                # the connection is in an unknown state — rebuild it on
                # the next attempt rather than reading a stale frame
                self._drop_connection()
                if policy is None or attempt + 1 >= attempts:
                    raise
            self.retried += 1
            self._sleep(policy.delay(attempt, self._rng))
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- operations ---------------------------------------------------------

    def compile(
        self,
        workload: Optional[str] = None,
        qasm_source: Optional[str] = None,
        optimize: bool = False,
        full: bool = False,
        request_id: Optional[Any] = None,
        timeout: Optional[float] = None,
        **config: Any,
    ) -> CompileReply:
        """Compile a workload name or QASM source on the service.

        ``timeout`` asks the server to bound this request end-to-end
        (seconds); expiry surfaces as a ``timeout`` :class:`ServiceError`.
        Keyword arguments beyond the named ones are
        :class:`~repro.compiler.config.CompilerConfig` overrides
        (``routing_paths=6``, ``num_factories=2``, ...).
        """
        response = self.request(
            protocol.compile_request(
                workload=workload,
                qasm_source=qasm_source,
                config=config or None,
                optimize=optimize,
                full=full,
                request_id=request_id,
                timeout=timeout,
            )
        )
        result = None
        if full and "result" in response:
            result = CompilationResult.from_dict(response["result"])
        return CompileReply(
            key=response["key"],
            source=response["source"],
            wall=response["wall"],
            fingerprint=response["fingerprint"],
            summary=response["summary"],
            result=result,
            raw=response,
        )

    def stats(self) -> Dict[str, Any]:
        """The server's metrics snapshot (see the ``stats`` op)."""
        return self.request({"op": "stats"})["stats"]

    def ping(self) -> Dict[str, Any]:
        """Liveness probe; returns version info."""
        return self.request({"op": "ping"})

    def shutdown(self) -> None:
        """Ask the server to drain and exit (needs ``allow_shutdown``)."""
        self.request({"op": "shutdown"})
